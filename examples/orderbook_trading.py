"""Algorithmic order book trading (the paper's financial application).

Maintains the finance query suite over a synthetic NASDAQ TotalView-like
feed and runs a toy *static order book imbalance* (SOBI) strategy on top:
SOBI compares volume-weighted price pressure on the bid and ask sides and
leans against the thinner side.  The strategy reads the standing VWAP-style
aggregates after every batch — exactly the embedded-mode usage the paper
describes (continuous queries feeding application logic in-process).

Run:  python examples/orderbook_trading.py [events]
"""

import sys
import time

from repro.algebra.translate import translate_sql
from repro.compiler import compile_queries
from repro.runtime import DeltaEngine
from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
from repro.workloads.orderbook import OrderBookGenerator

#: Bid- and ask-side pressure: notional of orders whose size is at least a
#: quarter of the side's total standing volume (the VWAP query family).
SOBI_QUERIES = {
    "bid_pressure": (
        "SELECT sum(b.price * b.volume) FROM bids b "
        "WHERE b.volume > 0.25 * (SELECT sum(b1.volume) FROM bids b1)"
    ),
    "ask_pressure": (
        "SELECT sum(a.price * a.volume) FROM asks a "
        "WHERE a.volume > 0.25 * (SELECT sum(a1.volume) FROM asks a1)"
    ),
    "axf": FINANCE_QUERIES["axf"],
    "bsp": FINANCE_QUERIES["bsp"],
}


def main(events: int = 20_000, batch: int = 2_000) -> None:
    catalog = finance_catalog()
    queries = [
        translate_sql(sql, catalog, name=name) for name, sql in SOBI_QUERIES.items()
    ]
    program = compile_queries(queries, catalog)
    engine = DeltaEngine(program, mode="compiled")
    generator = OrderBookGenerator(seed=2009)

    print(f"processing {events} order book events in batches of {batch}\n")
    position = 0
    start = time.perf_counter()
    stream = generator.events(events)
    processed = 0
    while processed < events:
        for event in stream:
            engine.process(event)
            processed += 1
            if processed % batch == 0:
                break
        bid = engine.result_scalar("bid_pressure")
        ask = engine.result_scalar("ask_pressure")
        signal = 0 if (bid + ask) == 0 else (bid - ask) / (bid + ask)
        # Lean against the imbalance: heavy bids -> expect upward pressure.
        if signal > 0.05:
            position += 1
            action = "BUY "
        elif signal < -0.05:
            position -= 1
            action = "SELL"
        else:
            action = "hold"
        depth = generator.depth()
        print(
            f"  [{processed:>6}] {action}  signal={signal:+.3f} "
            f"position={position:+d}  book={depth['bids']}x{depth['asks']}"
        )
    elapsed = time.perf_counter() - start

    print(f"\n{processed} events in {elapsed:.2f}s "
          f"({processed / elapsed:,.0f} events/s, 4 standing queries)")

    print("\nper-broker ask/bid imbalance (AXF):")
    for broker, imbalance in sorted(engine.results("axf"))[:5]:
        print(f"  broker {broker}: {imbalance:+}")

    print("\nmarket-maker spread exposure (BSP, top 5 brokers):")
    for broker, spread in sorted(engine.results("bsp"))[:5]:
        print(f"  broker {broker}: {spread:+}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
