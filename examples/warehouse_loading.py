"""Online data warehouse loading (the paper's second application).

Jointly compiles the TPC-H -> SSB data-integration query with SSB Q4.1 so
the warehouse aggregate is maintained *while the OLTP stream loads*, and
contrasts state size with the conventional two-phase approach (materialise
the ``lineorder`` fact table, then aggregate).

Run:  python examples/warehouse_loading.py [scale_factor]
"""

import sys
import time

from repro.compiler import compile_sql
from repro.runtime import DeltaEngine
from repro.runtime.profiler import total_memory_bytes
from repro.workloads.ssb import (
    SSB_Q41_COMBINED,
    load_static_tables,
    lineorder_rows,
    ssb_catalog,
    warehouse_stream,
)
from repro.workloads.tpch import TpchGenerator


def main(sf: float = 0.002) -> None:
    generator = TpchGenerator(sf=sf, seed=1992)

    print(f"TPC-H scale factor {sf}: "
          f"{generator.n_orders} orders, {generator.n_customers} customers\n")

    print("compiling SSB Q4.1 composed with the SSB transformation ...")
    t0 = time.perf_counter()
    program = compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="ssb41")
    print(f"  {len(program.maps)} maps, {program.statements_count()} trigger "
          f"statements in {time.perf_counter() - t0:.2f}s")
    print(f"  static dimensions: {', '.join(sorted(program.static_relations))}\n")

    engine = DeltaEngine(program, mode="compiled")
    static_rows = load_static_tables(engine, generator)
    print(f"loaded {static_rows} dimension rows (one batch per table)\n")

    print("streaming OLTP facts (orders + lineitems, batched dispatch) ...")
    t0 = time.perf_counter()
    count = engine.process_stream(warehouse_stream(generator), batch_size=1024)
    elapsed = time.perf_counter() - t0
    print(f"  {count} fact events in {elapsed:.2f}s "
          f"({count / elapsed:,.0f} events/s)\n")

    print("SSB Q4.1 — profit by (year, customer nation), first 10 groups:")
    rows = engine.results("ssb41")
    print(f"  {'year':<6}{'nation':<16}{'profit':>14}")
    for year, nation, profit in rows[:10]:
        print(f"  {year:<6}{nation:<16}{profit:>14,}")
    print(f"  ... {len(rows)} groups total\n")

    # The contrast the paper draws: the intermediate the conventional
    # pipeline would materialise vs what joint compilation keeps.
    lineorder_count = sum(1 for _ in lineorder_rows(generator))
    maintained = engine.total_entries()
    print("state comparison (joint compilation vs materialise-then-aggregate):")
    print(f"  lineorder rows avoided:   {lineorder_count:,}")
    print(f"  maintained map entries:   {maintained:,}")
    print(f"  live map bytes:           {total_memory_bytes(engine.maps):,}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.002)
