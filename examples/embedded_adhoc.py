"""Embedded mode, the debugger, and ad-hoc access to internal maps.

The paper's system model (Section 2): the runtime can be "directly compiled
into the same address space as application logic" and "exposes a read-only
interface to its internal data structures to support ad-hoc client-side
queries", plus "a debugger and profiler for tracing delta processing".
This example exercises all three.

Run:  python examples/embedded_adhoc.py
"""

from repro.compiler import compile_sql
from repro.runtime import DeltaEngine, insert, delete
from repro.runtime.debugger import Debugger
from repro.runtime.profiler import Profiler, map_memory_bytes
from repro.sql.catalog import Catalog

DDL = """
CREATE STREAM orders (customer int, product int, amount int);
"""

QUERY = "SELECT customer, sum(amount), count(*) FROM orders GROUP BY customer"


def main() -> None:
    catalog = Catalog.from_script(DDL)
    program = compile_sql(QUERY, catalog, name="spend")

    # --- embedded mode: the engine lives inside the application -----------
    profiler = Profiler()
    engine = DeltaEngine(program, mode="interpreted", profiler=profiler)
    application_feed = [
        insert("orders", 1, 100, 250),
        insert("orders", 1, 101, 120),
        insert("orders", 2, 100, 900),
        delete("orders", 1, 100, 250),  # order cancelled
        insert("orders", 3, 102, 40),
    ]
    engine.process_stream(application_feed)

    print("standing result (customer, total, orders):")
    for row in engine.results("spend"):
        print(f"  {row}")

    # --- ad-hoc client-side access to internal maps -----------------------
    print("\nread-only map views (ad-hoc client queries):")
    for name in program.slot_maps["spend"]:
        view = engine.map_view(name)
        print(f"  {name}: {dict(view)}")
    big_spenders = [
        key[0]
        for key, value in engine.map_view(program.slot_maps["spend"][0]).items()
        if value > 100
    ]
    print(f"  ad-hoc: customers with spend > 100 -> {sorted(big_spenders)}")

    # --- the delta-processing debugger ------------------------------------
    print("\nstep-tracing one event through the triggers:")
    debugger = Debugger(program)
    for event in application_feed[:2]:
        debugger.step(event)
    trace = debugger.step(insert("orders", 1, 103, 75))
    print(trace)

    root = program.slot_maps["spend"][0]
    print(f"\nevents that touched {root}:")
    for event, updates in debugger.watch(root):
        print(f"  {event}: {updates}")

    # --- profiling ----------------------------------------------------------
    print("\nprofiler report:")
    print(profiler.report())
    print("\nlive bytes per map:")
    for name, size in sorted(map_memory_bytes(engine.maps).items()):
        print(f"  {name}: {size} bytes")


if __name__ == "__main__":
    main()
