"""Quickstart: the paper's running example, end to end.

Compiles ``SELECT sum(A*D) FROM R, S, T WHERE R.B = S.B AND S.C = T.C`` into
delta-processing triggers (Section 3 / Figure 2 of the paper), shows the
materialised maps and the generated code, then feeds inserts and deletes and
watches the standing result update incrementally.

Run:  python examples/quickstart.py

The same flow, in doctest form (CI runs ``python -m doctest`` on this
file, so the session below is guaranteed accurate):

>>> from repro import Catalog, DeltaEngine, compile_sql
>>> catalog = Catalog.from_script(DDL)
>>> engine = DeltaEngine(compile_sql(QUERY, catalog, name="q"))
>>> engine.insert("R", 2, 10)
>>> engine.insert("S", 10, 100)
>>> engine.result_scalar()       # no complete join row yet
0
>>> engine.insert("T", 100, 7)   # completes the chain: 2 * 7
>>> engine.result_scalar()
14
>>> engine.delete("R", 2, 10)    # deletions are strict negations
>>> engine.result_scalar()
0
>>> engine.events_processed, engine.total_entries()
(4, 3)

Maps are stored per the compiler's storage plan (packed columnar
columns for keyed maps, dicts for scalars — see docs/STORAGE.md):

>>> from repro import analyze_storage
>>> sorted(analyze_storage(engine.program).columnar_maps) == \
sorted(n for n, c in engine.maps.items() if type(c) is not dict)
True
"""

from repro.codegen.pygen import generate_module
from repro.compiler import compile_sql
from repro.runtime import DeltaEngine
from repro.sql.catalog import Catalog

DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
"""

QUERY = "SELECT sum(r.A * t.D) FROM R r, S s, T t WHERE r.B = s.B AND s.C = t.C"


def main() -> None:
    catalog = Catalog.from_script(DDL)

    print("== recursive compilation (the paper's Figure 2) ==\n")
    program = compile_sql(QUERY, catalog, name="q")
    print(program.describe())

    print("== generated Python handlers (stand-in for the paper's C++) ==\n")
    source = generate_module(program)
    # Show the insert handlers only; the module also contains deletes.
    for chunk in source.split("\n\n"):
        if chunk.startswith("def on_insert"):
            print(chunk)
            print()

    print("== incremental execution ==\n")
    engine = DeltaEngine(program, mode="compiled")

    def show(label: str) -> None:
        print(f"{label:<28} q = {engine.result_scalar()}")

    engine.insert("R", 2, 10)
    show("insert R(2, 10)")
    engine.insert("S", 10, 100)
    show("insert S(10, 100)")
    engine.insert("T", 100, 7)
    show("insert T(100, 7)")  # first complete join row: 2 * 7 = 14
    engine.insert("R", 3, 10)
    show("insert R(3, 10)")  # second row joins instantly: + 3*7
    engine.delete("R", 2, 10)
    show("delete R(2, 10)")  # deletions are strict negations
    engine.insert("T", 100, 1)
    show("insert T(100, 1)")

    print("\nmaintained maps:")
    for name, size in sorted(engine.map_sizes().items()):
        print(f"  {name}: {size} entries")


if __name__ == "__main__":
    main()
