"""Shared benchmark harness: the DBMS bakeoff machinery (Figure 4).

Methodology
-----------
Per-update cost depends on live state size, so every measurement is taken at
*steady state*: an engine is prefilled with a prefix of the workload stream,
snapshotted, and the measured call processes a fixed slice of subsequent
events on a fresh copy of the snapshot.  All systems see identical streams
and slices; reported numbers are events/second over the slice.

Running ``python benchmarks/harness.py`` prints the full paper-style tables
(throughput with speedup factors, and state sizes); the ``bench_*`` modules
expose the same measurements through pytest-benchmark.
"""

from __future__ import annotations

import copy
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.baselines import UnsupportedQueryError, make_engine
from repro.runtime.events import StreamEvent, batches
from repro.sql.catalog import Catalog

#: Bakeoff rows, in the order the paper's dashboard lists its systems.
BAKEOFF_SYSTEMS = [
    "dbtoaster",
    "dbtoaster_interp",
    "streamops",
    "ivm",
    "reeval",
]


@dataclass
class SteadyState:
    """A prefilled engine snapshot plus the slice it will measure."""

    kind: str
    engine: object
    slice_events: list[StreamEvent]
    #: slice pre-grouped into batches, keyed by batch size (lazy).
    _batch_cache: dict = field(default_factory=dict, repr=False)

    def fresh_engine(self):
        return copy.deepcopy(self.engine)

    def run_slice(self, engine) -> int:
        for event in self.slice_events:
            engine.process(event)
        return len(self.slice_events)

    def run_slice_batched(self, engine, batch_size: Optional[int]) -> int:
        """The same slice delivered as same-``(relation, sign)`` batches.

        Engines exposing the columnar entry point receive the pre-grouped
        batch's column lists directly (no row materialisation); baselines
        with only a row API get the tuple view.
        """
        columnar = getattr(engine, "process_batch_columns", None)
        if columnar is not None:
            for batch in self.slice_batches(batch_size):
                columnar(batch.relation, batch.sign, batch.columns)
        else:
            for batch in self.slice_batches(batch_size):
                engine.process_batch(batch.relation, batch.sign, batch.rows)
        return len(self.slice_events)

    def slice_batches(self, batch_size: Optional[int]):
        """The slice pre-grouped into batches (cached per batch size), so
        measured runs pay for trigger execution, not for grouping."""
        if batch_size not in self._batch_cache:
            self._batch_cache[batch_size] = list(
                batches(self.slice_events, batch_size)
            )
        return self._batch_cache[batch_size]


def prepare_steady_state(
    kind: str,
    queries: dict[str, str],
    catalog: Catalog,
    stream: Iterable[StreamEvent],
    prefill: int,
    slice_size: int,
    engine_kwargs: Optional[dict] = None,
) -> Optional[SteadyState]:
    """Prefill an engine and capture the measurement slice.

    Returns ``None`` when the system cannot express the queries (the
    paper's point about stream engines and order-book nesting).
    ``engine_kwargs`` pass through to the DBToaster engine kinds (e.g.
    ``{"optimize": False}`` for the IR-optimisation ablation).
    """
    try:
        engine = make_engine(kind, queries, catalog, engine_kwargs=engine_kwargs)
    except UnsupportedQueryError:
        return None
    iterator = iter(stream)
    consumed = 0
    for event in iterator:
        engine.process(event)
        consumed += 1
        if consumed >= prefill:
            break
    slice_events = []
    for event in iterator:
        slice_events.append(event)
        if len(slice_events) >= slice_size:
            break
    return SteadyState(kind=kind, engine=engine, slice_events=slice_events)


@dataclass
class BakeoffRow:
    system: str
    query: str
    events_per_second: Optional[float]
    state_entries: Optional[int]

    @property
    def supported(self) -> bool:
        return self.events_per_second is not None


def measure(state: Optional[SteadyState], rounds: int = 3) -> tuple[Optional[float], Optional[int]]:
    """Best-of-``rounds`` events/second on the steady-state slice."""
    if state is None:
        return None, None
    best = float("inf")
    engine = None
    for _ in range(rounds):
        engine = state.fresh_engine()
        start = time.perf_counter()
        count = state.run_slice(engine)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / max(count, 1))
    entries = engine.total_entries() if hasattr(engine, "total_entries") else None
    return (1.0 / best if best > 0 else float("inf")), entries


def measure_batched(
    state: Optional[SteadyState],
    batch_size: Optional[int],
    rounds: int = 3,
) -> Optional[float]:
    """Best-of-``rounds`` events/second with batched slice delivery.

    ``batch_size=1`` means classic per-event dispatch (``engine.process``),
    the baseline the batching experiment compares against; larger sizes go
    through ``engine.process_batch`` on pre-grouped runs.
    """
    if state is None:
        return None
    best = float("inf")
    for _ in range(rounds):
        engine = state.fresh_engine()
        start = time.perf_counter()
        if batch_size == 1:
            count = state.run_slice(engine)
        else:
            count = state.run_slice_batched(engine, batch_size)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / max(count, 1))
    return 1.0 / best if best > 0 else float("inf")


def calibration_score(rounds: int = 3) -> float:
    """Machine-speed normaliser for cross-run benchmark comparison.

    Ops/second of a fixed synthetic loop with the same shape as the
    trigger hot path (tuple keys, ``dict.get`` + add, zero eviction).
    The CI regression gate compares events/sec *relative* to this score,
    so a committed baseline stays meaningful on faster or slower hosts.
    """
    n_ops = 200_000
    best = float("inf")
    for _ in range(rounds):
        contents: dict = {}
        start = time.perf_counter()
        for i in range(n_ops):
            key = (i % 1024,)
            current = contents.get(key, 0) + (i % 7) - 3
            if current == 0:
                contents.pop(key, None)
            else:
                contents[key] = current
        best = min(best, time.perf_counter() - start)
    return n_ops / best


def bench_metadata(optimize: bool = True, native: bool = False) -> dict:
    """IR-optimisation and native-kernel settings stamped into every
    BENCH_*.json payload, so a perf regression can be bisected to a pass
    configuration or a toolchain change."""
    from repro.codegen.native import probe_toolchain
    from repro.ir import DEFAULT_PASSES

    return {
        "ir_optimize": optimize,
        "ir_passes": list(DEFAULT_PASSES) if optimize else [],
        "toolchain": probe_toolchain().describe(),
        "native": bool(native),
    }


def write_bench_json(
    path: str | Path,
    benchmark: str,
    metrics: dict[str, float],
    metadata: Optional[dict] = None,
) -> None:
    """Persist one benchmark run for the CI regression gate.

    The file carries the raw events/sec ``metrics`` plus the host's
    :func:`calibration_score` and the run's ``metadata`` (IR optimisation
    settings by default); ``benchmarks/check_regression.py`` compares
    normalised (metric / calibration) values against the committed
    ``benchmarks/baseline.json``.
    """
    payload = {
        "benchmark": benchmark,
        "calibration": calibration_score(),
        "metadata": metadata if metadata is not None else bench_metadata(),
        "metrics": {key: value for key, value in sorted(metrics.items())},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path} ({len(metrics)} metrics)")


def run_bakeoff(
    queries: dict[str, str],
    catalog: Catalog,
    make_stream,
    prefill: int,
    slice_size: int,
    systems: Iterable[str] = tuple(BAKEOFF_SYSTEMS),
    rounds: int = 3,
) -> list[BakeoffRow]:
    """One bakeoff table: every system against every query, same stream."""
    rows: list[BakeoffRow] = []
    for query_name, sql in queries.items():
        for kind in systems:
            state = prepare_steady_state(
                kind, {query_name: sql}, catalog, make_stream(), prefill, slice_size
            )
            events_per_second, entries = measure(state, rounds=rounds)
            rows.append(
                BakeoffRow(
                    system=kind,
                    query=query_name,
                    events_per_second=events_per_second,
                    state_entries=entries,
                )
            )
    return rows


def format_bakeoff(rows: list[BakeoffRow], baseline: str = "reeval") -> str:
    """Render the throughput table with speedups over the DBMS baseline."""
    queries = list(dict.fromkeys(r.query for r in rows))
    systems = list(dict.fromkeys(r.system for r in rows))
    by_key = {(r.system, r.query): r for r in rows}

    lines = []
    header = f"{'system':<18}" + "".join(f"{q:>16}" for q in queries)
    lines.append(header)
    lines.append("-" * len(header))
    for system in systems:
        cells = []
        for query in queries:
            row = by_key.get((system, query))
            if row is None or not row.supported:
                cells.append(f"{'unsupported':>16}")
            else:
                cells.append(f"{row.events_per_second:>13,.0f}/s")
        lines.append(f"{system:<18}" + "".join(cells))
    lines.append("")
    lines.append("speedup of dbtoaster over each system:")
    for system in systems:
        if system == "dbtoaster":
            continue
        factors = []
        for query in queries:
            top = by_key.get(("dbtoaster", query))
            other = by_key.get((system, query))
            if top and other and top.supported and other.supported:
                factors.append(
                    f"{query}: {top.events_per_second / other.events_per_second:,.0f}x"
                )
            else:
                factors.append(f"{query}: n/a")
        lines.append(f"  vs {system:<16} " + "   ".join(factors))
    return "\n".join(lines)


def format_state_table(rows: list[BakeoffRow]) -> str:
    queries = list(dict.fromkeys(r.query for r in rows))
    systems = list(dict.fromkeys(r.system for r in rows))
    by_key = {(r.system, r.query): r for r in rows}
    lines = [f"{'system':<18}" + "".join(f"{q:>16}" for q in queries)]
    lines.append("-" * len(lines[0]))
    for system in systems:
        cells = []
        for query in queries:
            row = by_key.get((system, query))
            if row is None or row.state_entries is None:
                cells.append(f"{'-':>16}")
            else:
                cells.append(f"{row.state_entries:>16,}")
        lines.append(f"{system:<18}" + "".join(cells))
    return "\n".join(lines)


def main() -> None:
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    catalog = finance_catalog()
    print("=" * 72)
    print("DBMS bakeoff — financial application (order book stream)")
    print("  steady state after 1500 events; slice of 40 events; best of 3")
    print("=" * 72)
    rows = run_bakeoff(
        FINANCE_QUERIES,
        catalog,
        make_stream=lambda: OrderBookGenerator(seed=2009).events(10_000),
        prefill=1_500,
        slice_size=40,
    )
    print(format_bakeoff(rows))
    print()
    print("live state entries at steady state:")
    print(format_state_table(rows))


if __name__ == "__main__":
    main()
