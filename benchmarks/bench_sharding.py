"""E8 — sharded parallel delta processing: events/second vs shard count.

Motivation: the compiler's partitioning analysis
(:mod:`repro.compiler.partition`) proves, per trigger, that every map
access is keyed on one event column; hash-routing batches by that column
gives each shard exclusive ownership of a key slice of every map it
touches.  That independence pays twice:

* **state partitioning** — a shard's maps hold ~1/N of the entries, so
  trigger loops that scan map state (the no-index ablation makes this
  visible) touch ~1/N of the data *even on one core*;
* **parallel lanes** — with ``parallel=True`` each shard is a forked
  worker process, overlapping trigger execution across cores (the gain
  scales with physical cores, so it shows on multi-core CI but not in a
  single-core container).

Methodology
-----------
Each workload engine is prefilled to steady state (untimed), then a fixed
event slice is routed through ``process_stream`` with the engine's batch
path; timing includes the final ``sync()`` barrier for worker lanes.
``shards=1`` is a plain single ``DeltaEngine`` — the true no-sharding
baseline.  After measuring, the sharded engine's merged maps are verified
**identical** to a single-engine run of the same stream.  Workloads the
analysis cannot partition (psp's scalar running sums, SSB's star join)
run through the serial-fallback lane and are expected near 1x — they pin
the fallback's parity, not a speedup.

Run::

    PYTHONPATH=src python benchmarks/bench_sharding.py [--smoke]
        [--shards 1,2,4] [--json BENCH_sharding.json]
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.harness import write_bench_json  # noqa: E402
from repro.compiler import compile_sql  # noqa: E402
from repro.runtime import DeltaEngine, ShardedEngine, StreamEvent  # noqa: E402

DEFAULT_SHARDS = (1, 2, 4)


@dataclass
class Workload:
    """One measured configuration: a program plus its delivery settings."""

    name: str
    program: object
    events: list
    prefill: int
    mode: str = "compiled"
    use_indexes: bool = True
    parallel: bool = False
    batch_size: int = 1000
    expect_partitionable: bool = True
    #: merged-map reference, computed lazily from a single engine.
    _reference: dict = field(default=None, repr=False)

    def reference_maps(self) -> dict:
        if self._reference is None:
            engine = DeltaEngine(
                self.program, mode=self.mode, use_indexes=self.use_indexes
            )
            engine.process_stream(self.events, batch_size=self.batch_size)
            self._reference = engine.maps
        return self._reference

    def make_engine(self, shards: int):
        if shards == 1:
            return DeltaEngine(
                self.program, mode=self.mode, use_indexes=self.use_indexes
            )
        return ShardedEngine(
            self.program,
            shards=shards,
            mode=self.mode,
            parallel=self.parallel,
            use_indexes=self.use_indexes,
        )


def finance_workloads(smoke: bool) -> list[Workload]:
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    catalog = finance_catalog()

    def program(query: str):
        return compile_sql(FINANCE_QUERIES[query], catalog, name="q")

    def book(prefill: int, slice_size: int, brokers: int = 32) -> list:
        return list(
            OrderBookGenerator(seed=2009, brokers=brokers).events(
                prefill + slice_size
            )
        )

    # Fast-trigger slices are sized so measured intervals stay in the tens
    # of milliseconds even at several hundred k events/s -- the regression
    # gate compares these numbers and millisecond timings are noise.
    if smoke:
        scan_prefill, scan_slice = 6_000, 700
        fast_prefill, fast_slice = 1_500, 6_000
    else:
        scan_prefill, scan_slice = 30_000, 3_000
        fast_prefill, fast_slice = 10_000, 8_000
    return [
        # State partitioning: the no-index axf trigger scans the opposite
        # book per event; shard maps are ~1/N the size (>=2x at 4 shards).
        Workload(
            name="axf/scan",
            program=program("axf"),
            events=book(scan_prefill, scan_slice),
            prefill=scan_prefill,
            use_indexes=False,
        ),
        # Indexed O(1) triggers: routing overhead vs batch amortisation.
        Workload(
            name="bsp/indexed",
            program=program("bsp"),
            events=book(fast_prefill, fast_slice),
            prefill=fast_prefill,
        ),
        # Parallel worker lanes on the interpretation-heavy path: gains
        # scale with physical cores (near 1x on a single-core host).
        Workload(
            name="bsp/interp-proc",
            program=program("bsp"),
            events=book(fast_prefill, fast_slice if smoke else 3_000),
            prefill=fast_prefill,
            mode="interpreted",
            parallel=True,
        ),
        # Serial fallback parity: scalar running sums are unpartitionable.
        Workload(
            name="psp/serial-fallback",
            program=program("psp"),
            events=book(fast_prefill, fast_slice),
            prefill=fast_prefill,
            expect_partitionable=False,
        ),
    ]


def warehouse_workload(smoke: bool) -> Workload:
    from repro.workloads.ssb import SSB_Q41_COMBINED, ssb_catalog
    from repro.workloads.tpch import TpchGenerator

    sf = 0.0004 if smoke else 0.0008
    generator = TpchGenerator(sf=sf, seed=1992)
    events = [
        StreamEvent(relation, 1, row)
        for relation, rows in generator.static_tables().items()
        for row in rows
    ]
    prefill = len(events) + generator.n_orders
    events += [
        StreamEvent(relation, 1, row)
        for relation, row in generator.orders_and_lineitems()
    ]
    slice_floor = 1_200 if smoke else 1_500
    return Workload(
        name="ssb41/serial-fallback",
        program=compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="ssb41"),
        events=events,
        prefill=min(prefill, max(len(events) - slice_floor, 0)),
        expect_partitionable=False,
    )


def measure(workload: Workload, shards: int, rounds: int) -> float:
    """Best-of-``rounds`` events/sec on the slice, with identity check."""
    prefill_events = workload.events[: workload.prefill]
    slice_events = workload.events[workload.prefill :]
    best = float("inf")
    for _ in range(rounds):
        engine = workload.make_engine(shards)
        try:
            engine.process_stream(
                prefill_events, batch_size=workload.batch_size
            )
            if isinstance(engine, ShardedEngine):
                engine.sync()
                assert (
                    engine.spec.partitionable == workload.expect_partitionable
                ), f"{workload.name}: unexpected partitionability"
            start = time.perf_counter()
            engine.process_stream(slice_events, batch_size=workload.batch_size)
            if isinstance(engine, ShardedEngine):
                engine.sync()
            elapsed = time.perf_counter() - start
            best = min(best, elapsed / max(len(slice_events), 1))
            merged = (
                engine.merged_maps()
                if isinstance(engine, ShardedEngine)
                else engine.maps
            )
            assert merged == workload.reference_maps(), (
                f"{workload.name}: shard-merged maps diverge at "
                f"shards={shards}"
            )
        finally:
            if isinstance(engine, ShardedEngine):
                engine.close()
    return 1.0 / best if best > 0 else float("inf")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration (CI)")
    parser.add_argument("--shards", default=None,
                        help="comma-separated shard counts (default 1,2,4)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="best-of rounds per cell (default 2)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write metrics JSON for the CI regression gate")
    args = parser.parse_args(argv)

    shard_counts = (
        tuple(int(s) for s in args.shards.split(","))
        if args.shards
        else DEFAULT_SHARDS
    )
    rounds = args.rounds or 2

    workloads = finance_workloads(args.smoke)
    workloads.append(warehouse_workload(args.smoke))

    header = f"{'workload':<22}" + "".join(
        f"{f'shards={n}':>14}" for n in shard_counts
    )
    header += f"{'speedup':>10}"
    print(header)
    print("-" * len(header))
    metrics: dict[str, float] = {}
    best_speedup, best_name = 0.0, ""
    for workload in workloads:
        row = {n: measure(workload, n, rounds) for n in shard_counts}
        for n, events_per_second in row.items():
            metrics[f"{workload.name}/shards={n}"] = events_per_second
        speedup = (
            row[shard_counts[-1]] / row[shard_counts[0]]
            if row[shard_counts[0]]
            else float("inf")
        )
        if workload.expect_partitionable and speedup > best_speedup:
            best_speedup, best_name = speedup, workload.name
        cells = "".join(f"{row[n]:>12,.0f}/s" for n in shard_counts)
        print(f"{workload.name:<22}{cells}{speedup:>9.2f}x")
    print()
    print(
        "identity check: shard-merged maps == single-engine maps on "
        f"{len(workloads)} workloads x {len(shard_counts)} shard counts"
    )
    print(
        f"best sharding speedup: {best_speedup:.2f}x at "
        f"shards={shard_counts[-1]} ({best_name})"
    )
    if args.json:
        write_bench_json(args.json, "sharding", metrics)
    return 0


if __name__ == "__main__":
    sys.exit(main())
