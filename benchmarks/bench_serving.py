"""Serving cost: delta fan-out throughput and delivery latency.

The view-subscription server (:mod:`repro.runtime.serving`) renders one
result delta per applied batch and fans it out to every subscriber over
the framed protocol, so the deployment questions are:

* **sustained throughput vs fan-out** — events/second through the
  serving ingest path with N live subscribers (each a real socket client
  accumulating deltas), on the finance ``bsp`` workload at batch 100.
  The acceptance gate: >= 1000 events/second sustained with 8
  subscribers;
* **delivery latency** — per-delta wall time from server fan-out
  (the frame's ``ts`` stamp) to client receipt, reported as p50/p99
  across all subscribers.  The regression gate tracks the *inverse* p99
  (deliveries/second), keeping every committed metric higher-is-better.

Every subscriber must finish in exact parity with the engine's offline
``query_results`` — a benchmark run that drops or corrupts a delta
fails outright.

Run::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]
        [--events N] [--json PATH]
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.harness import bench_metadata, write_bench_json  # noqa: E402

QUERY = "bsp"

#: Subscriber fan-outs measured (the gate applies to the largest).
FANOUTS = (1, 4, 8)

#: The acceptance gate: sustained events/second with 8 subscribers.
SUSTAINED_TARGET = 1_000

BATCH_SIZE = 100


def _program():
    from repro.compiler import compile_sql
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

    return compile_sql(FINANCE_QUERIES[QUERY], finance_catalog(), name=QUERY)


def _finance_events(event_count: int, seed: int = 11) -> list:
    from repro.workloads.orderbook import OrderBookGenerator

    return list(OrderBookGenerator(seed=seed).events(event_count))


def _run_subscriber(client, stop, output):
    """One subscriber: accumulate snapshot + deltas until the sentinel.

    ``stop["lsn"]`` is set (before the sentinel batches are published)
    to the last LSN of the measured stream; the first delta past it is
    the sentinel's, so accumulation stops there with the measured stream
    fully applied.
    """
    from repro.runtime.serving import apply_changes, rows_from_snapshot

    rows = rows_from_snapshot(client.subscribe(QUERY))
    latencies: list[float] = []
    while True:
        frame = client.recv()
        if frame.get("type") != "delta":
            continue
        latencies.append(time.time() - frame["ts"])
        apply_changes(rows, frame["changes"])
        if stop["lsn"] is not None and frame["lsn"] > stop["lsn"]:
            break
    output["rows"] = rows
    output["latencies"] = latencies
    output["finished"] = time.time()


def measure_fanout(program, events: list, subscribers: int) -> dict:
    """Serve the stream to N live subscribers; throughput + latency.

    Wall time runs from the first published batch until the *slowest*
    subscriber has applied the whole stream — sustained delivery rate,
    not just ingest rate.
    """
    from repro.runtime import DeltaEngine
    from repro.runtime.serving import ServerThread, SubscriberClient

    engine = DeltaEngine(program)
    stop: dict = {"lsn": None}
    outputs = [dict() for _ in range(subscribers)]
    with ServerThread(engine) as handle:
        clients = [
            SubscriberClient(handle.host, handle.port) for _ in range(subscribers)
        ]
        threads = [
            threading.Thread(
                target=_run_subscriber, args=(client, stop, output), daemon=True
            )
            for client, output in zip(clients, outputs)
        ]
        start = time.time()
        for thread in threads:
            thread.start()
        handle.publish_stream(events, batch_size=BATCH_SIZE)
        stop["lsn"] = handle.server.tap.lsn
        # The sentinel: a broker id the generator never emits, asks first
        # then bids, so the final batch provably changes the bsp view and
        # every subscriber sees one delta past the stop LSN.
        handle.publish("asks", 1, [(0, 10**9, 10**6, 1, 1)])
        handle.publish("bids", 1, [(0, 10**9 + 1, 10**6, 1, 1)])
        for thread in threads:
            thread.join(timeout=120)
            if thread.is_alive():
                raise RuntimeError("subscriber wedged; serving bench failed")
        wall = max(output["finished"] for output in outputs) - start
        for client in clients:
            client.close()
        # Parity oracle: every subscriber converged on the live result.
        expected = Counter(engine.results(QUERY))
        for index, output in enumerate(outputs):
            if output["rows"] != expected:
                raise RuntimeError(
                    f"subscriber {index} diverged from query_results "
                    f"({len(output['rows'])} vs {len(expected)} rows)"
                )
    latencies = sorted(
        value for output in outputs for value in output["latencies"]
    )
    return {
        "subscribers": subscribers,
        "events_per_sec": len(events) / wall,
        "deltas_delivered": len(latencies),
        "p50_ms": latencies[len(latencies) // 2] * 1000,
        "p99_ms": latencies[int(0.99 * (len(latencies) - 1))] * 1000,
    }


def measure_fault_recovery(suffix_lengths) -> list[dict]:
    """Supervisor restart overhead as a function of WAL suffix length.

    For each configuration: a supervised durable sharded engine takes a
    checkpoint, appends ``suffix`` more batches to the WAL, loses one
    forked worker to SIGKILL, and the next send triggers the rebuild
    (snapshot restore + WAL-suffix replay).  The reported seconds are
    the supervisor's own recovery stopwatch — expected linear in the
    suffix length.  Metadata only: informative, not gated.
    """
    import os
    import signal as _signal
    import tempfile

    from repro.compiler import compile_sql
    from repro.runtime.durability import DurableEngine
    from repro.sql.catalog import Catalog

    program = compile_sql(
        "SELECT A, sum(B) FROM R GROUP BY A",
        Catalog.from_script("CREATE STREAM R (A int, B int);"),
        name="recovery",
    )
    results = []
    for suffix in suffix_lengths:
        with tempfile.TemporaryDirectory() as directory:
            engine = DurableEngine(
                program, directory, fsync="none",
                shards=2, parallel=True, supervise=True,
            )
            for i in range(20):
                engine.process_batch("R", 1, [(i % 8, i)])
            engine.snapshot()
            for i in range(suffix):
                engine.process_batch("R", 1, [(i % 8, i)])
            engine.sync()
            lane = engine.engine._lanes[0]
            os.kill(lane._proc.pid, _signal.SIGKILL)
            lane._proc.join(timeout=10)
            engine.process_batch("R", 1, [(0, 1)])  # triggers the rebuild
            engine.sync()
            (recovery,) = engine.engine.supervisor.recoveries
            results.append(
                {
                    "suffix_batches": suffix,
                    "replayed": recovery["replayed"],
                    "recovery_s": recovery["seconds"],
                }
            )
            engine.close()
    return results


def print_recovery_table(rows: list[dict]) -> None:
    header = f"{'WAL suffix':>11}{'replayed':>10}{'recovery':>11}"
    print("supervisor fault recovery — durable rebuild after worker SIGKILL")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['suffix_batches']:>11,}{row['replayed']:>10,}"
            f"{row['recovery_s'] * 1000:>9.1f}ms"
        )
    print()


def print_table(rows: list[dict], event_count: int) -> None:
    header = (
        f"{'subs':>5}{'events/s':>12}{'deltas':>9}"
        f"{'p50 deliver':>13}{'p99 deliver':>13}"
    )
    print(
        f"serving fan-out — finance {QUERY}, {event_count} events, "
        f"batch {BATCH_SIZE}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['subscribers']:>5}{row['events_per_sec']:>12,.0f}"
            f"{row['deltas_delivered']:>9,}"
            f"{row['p50_ms']:>11.2f}ms{row['p99_ms']:>11.2f}ms"
        )
    print()


def check_target(rows: list[dict]) -> bool:
    widest = max(rows, key=lambda row: row["subscribers"])
    rate = widest["events_per_sec"]
    if rate < SUSTAINED_TARGET:
        print(
            f"!! serving target MISSED: {rate:,.0f} events/s with "
            f"{widest['subscribers']} subscribers (target "
            f"{SUSTAINED_TARGET:,})"
        )
        return False
    print(
        f"serving target met: {rate:,.0f} events/s sustained with "
        f"{widest['subscribers']} subscribers "
        f"(p99 delivery {widest['p99_ms']:.2f}ms, target "
        f"{SUSTAINED_TARGET:,} events/s)"
    )
    print()
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration (CI)")
    parser.add_argument("--events", type=int, default=None,
                        help="order-book events to serve (default "
                        "6000 smoke / 30000 full)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write metrics JSON (uploaded as a CI artifact)")
    args = parser.parse_args(argv)

    event_count = args.events or (6_000 if args.smoke else 30_000)
    events = _finance_events(event_count)
    program = _program()

    rows = [measure_fanout(program, events, fanout) for fanout in FANOUTS]
    print_table(rows, event_count)
    ok = check_target(rows)

    import os as _os

    recovery_rows: list[dict] = []
    if hasattr(_os, "fork"):
        suffixes = (50, 200) if args.smoke else (100, 500, 2000)
        recovery_rows = measure_fault_recovery(suffixes)
        print_recovery_table(recovery_rows)
    else:
        print("fault recovery skipped: platform lacks os.fork\n")

    if args.json:
        metrics: dict[str, float] = {}
        for row in rows:
            prefix = f"serving/{QUERY}/subs={row['subscribers']}"
            metrics[f"{prefix}/events_per_sec"] = row["events_per_sec"]
            # The regression gate treats every metric as higher-is-better,
            # so latency is committed inverted (deliveries/second at p99);
            # the raw milliseconds live in metadata for humans.
            metrics[f"{prefix}/p99_inv_per_sec"] = 1000.0 / row["p99_ms"]
        write_bench_json(
            args.json, "serving", metrics,
            metadata={
                **bench_metadata(),
                "events": event_count,
                "batch_size": BATCH_SIZE,
                "query": QUERY,
                "fanouts": list(FANOUTS),
                "sustained_target": SUSTAINED_TARGET,
                "p99_ms": {
                    str(row["subscribers"]): row["p99_ms"] for row in rows
                },
                "p50_ms": {
                    str(row["subscribers"]): row["p50_ms"] for row in rows
                },
                # Informative, not gated: rebuild cost is linear in the
                # replayed WAL suffix, so a gate would just measure I/O.
                "fault_recovery": recovery_rows,
            },
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
