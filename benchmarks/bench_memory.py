"""E5 — memory usage: per-entry map footprint, columnar vs dict storage.

Two layers of claims, both from the paper's "main-memory" premise:

* **storage layout** (the PR-5 experiment): maintained maps hold dense
  numeric aggregate state, which Python's ``dict[tuple, number]`` layout
  stores worst (a hash-table slot, a boxed key tuple and a boxed value
  per entry).  The compiler's storage plan
  (:mod:`repro.compiler.storage`) moves fixed-arity, typed-value maps
  into packed :class:`~repro.runtime.storage.ColumnarMap` columns; this
  benchmark measures the live bytes per maintained entry with columnar
  storage on vs off (``DeltaEngine(columnar=...)``) and **fails** unless
  at least two numeric-aggregate workloads show a >= 2x reduction.  Maps
  are verified equal across the two runs first — the layout must never
  change contents;
* **state contrast** (the paper's Figure 4 reading): DBToaster's
  aggregate maps stay bounded by distinct keys while an operator network
  materialises join state and re-evaluation holds base tables — asserted
  as entry-count facts against the bakeoff baselines.

Run::

    PYTHONPATH=src python benchmarks/bench_memory.py [--smoke]
        [--events N] [--json PATH]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.harness import bench_metadata, write_bench_json  # noqa: E402

#: Numeric-aggregate workloads whose maintained state is dominated by
#: keyed occurrence/aggregate maps — where packed columns pay off.  The
#: acceptance target (>= 2x) must hold on at least two of them.
TARGET_QUERIES = ("vwap", "mst", "axf")

#: All measured finance queries (bsp/psp are scalar/tiny-keyed: they
#: document where the plan keeps dicts and the ratio stays ~1x).
MEASURED_QUERIES = ("vwap", "mst", "axf", "bsp", "psp")

MEMORY_RATIO_TARGET = 2.0


def measure_storage(query: str, events: list) -> dict:
    """Drive one query twice (columnar on/off) and account its maps.

    Returns the report row: live entries, total/per-entry bytes for both
    layouts, the dict/columnar ratio, and the storage plan's labels.
    """
    from repro.compiler import analyze_storage, compile_sql
    from repro.runtime import DeltaEngine
    from repro.runtime.profiler import map_memory_bytes
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

    totals = {}
    engines = {}
    for columnar in (True, False):
        program = compile_sql(
            FINANCE_QUERIES[query], finance_catalog(), name=query
        )
        engine = DeltaEngine(program, columnar=columnar)
        engine.process_stream(events)
        totals[columnar] = sum(map_memory_bytes(engine.maps).values())
        engines[columnar] = engine
    columnar_engine, dict_engine = engines[True], engines[False]
    assert columnar_engine.maps == dict_engine.maps, (
        f"{query}: columnar storage changed map contents"
    )
    entries = max(columnar_engine.total_entries(), 1)
    plan = analyze_storage(columnar_engine.program)
    return {
        "query": query,
        "entries": entries,
        "dict_bytes": totals[False],
        "columnar_bytes": totals[True],
        "dict_bytes_per_entry": totals[False] / entries,
        "columnar_bytes_per_entry": totals[True] / entries,
        "ratio": totals[False] / max(totals[True], 1),
        "plan": {
            name: storage.label for name, storage in plan.maps.items()
        },
    }


def storage_table(event_count: int, seed: int = 5) -> dict[str, dict]:
    """The storage-layout comparison rows for every measured query."""
    from repro.workloads.orderbook import OrderBookGenerator

    events = list(OrderBookGenerator(seed=seed).events(event_count))
    return {query: measure_storage(query, events) for query in MEASURED_QUERIES}


def print_storage_table(rows: dict[str, dict]) -> None:
    header = (
        f"{'query':<8}{'entries':>10}{'dict B/e':>12}"
        f"{'columnar B/e':>14}{'ratio':>8}"
    )
    print("per-entry map memory — columnar vs dict storage")
    print(header)
    print("-" * len(header))
    for query, row in rows.items():
        print(
            f"{query:<8}{row['entries']:>10,}"
            f"{row['dict_bytes_per_entry']:>12,.1f}"
            f"{row['columnar_bytes_per_entry']:>14,.1f}"
            f"{row['ratio']:>7.2f}x"
        )
    print()


def check_target(rows: dict[str, dict]) -> bool:
    """The acceptance gate: >= 2x on at least two target workloads."""
    passing = [
        query
        for query in TARGET_QUERIES
        if rows[query]["ratio"] >= MEMORY_RATIO_TARGET
    ]
    ok = len(passing) >= 2
    if ok:
        print(
            f"memory target met: {', '.join(passing)} show >= "
            f"{MEMORY_RATIO_TARGET}x lower per-entry bytes with columnar "
            "storage"
        )
    else:
        print(
            f"!! memory target MISSED: only {passing or 'none'} of "
            f"{TARGET_QUERIES} reach {MEMORY_RATIO_TARGET}x"
        )
    print()
    return ok


def native_storage_table(event_count: int, seed: int = 5) -> dict[str, dict]:
    """Per-entry bytes with the C kernel attached (``mode="native"``).

    The kernel keeps its own packed arena on the C heap, so this section
    checks the accounting story: ``map_memory_bytes`` must report the
    kernel-side allocations (via ``storage_bytes()``), and the maps must
    stay bit-identical to the pure-Python engine's.  Skipped with an
    explicit line — never silently — when the host has no C toolchain.
    """
    from repro.codegen.native import probe_toolchain
    from repro.compiler import compile_sql
    from repro.runtime import DeltaEngine
    from repro.runtime.profiler import map_memory_bytes
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    probe = probe_toolchain()
    if not probe.available:
        print("native kernel memory: SKIPPED — no C toolchain "
              f"({probe.describe()})\n")
        return {}
    events = list(OrderBookGenerator(seed=seed).events(event_count))
    rows: dict[str, dict] = {}
    print(f"per-entry map memory — native kernel ({probe.describe()})")
    header = f"{'query':<8}{'entries':>10}{'native B/e':>13}"
    print(header)
    print("-" * len(header))
    for query in TARGET_QUERIES:
        program = compile_sql(
            FINANCE_QUERIES[query], finance_catalog(), name=query
        )
        native = DeltaEngine(program, mode="native")
        assert native.native_active, (
            f"{query}: native lane fell back despite an available toolchain"
        )
        native.process_stream(events)
        oracle = DeltaEngine(program)
        oracle.process_stream(events)
        assert native.maps == oracle.maps, (
            f"{query}: native kernel changed map contents"
        )
        total = sum(map_memory_bytes(native.maps).values())
        entries = max(native.total_entries(), 1)
        rows[query] = {
            "entries": entries,
            "native_bytes": total,
            "native_bytes_per_entry": total / entries,
        }
        print(f"{query:<8}{entries:>10,}{total / entries:>13,.1f}")
    print()
    return rows


def state_contrast(event_count: int) -> dict[str, int]:
    """The paper's state-size contrast vs the bakeoff baselines."""
    from repro.baselines import make_engine
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    def drive(kind: str, query: str):
        engine = make_engine(
            kind, {query: FINANCE_QUERIES[query]}, finance_catalog()
        )
        for event in OrderBookGenerator(seed=77).events(event_count):
            engine.process(event)
        return engine

    facts = {
        "dbtoaster/psp/entries": drive("dbtoaster", "psp").total_entries(),
        "streamops/psp/entries": drive("streamops", "psp").total_entries(),
        "reeval_lazy/psp/entries": drive("reeval_lazy", "psp").total_entries(),
        "dbtoaster/bsp/entries": drive("dbtoaster", "bsp").total_entries(),
    }
    print("state contrast — maintained entries (the Figure 4 reading)")
    for key, value in facts.items():
        print(f"  {key}: {value:,}")
    # The structural claims: constant DBToaster state on psp, join state
    # materialised by the operator network, base tables held by re-eval.
    assert facts["dbtoaster/psp/entries"] <= 10
    assert facts["streamops/psp/entries"] > 20 * facts["dbtoaster/psp/entries"]
    assert facts["reeval_lazy/psp/entries"] > facts["dbtoaster/psp/entries"]
    assert facts["dbtoaster/bsp/entries"] < 100
    print("  (structural claims hold)\n")
    return facts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration (CI)")
    parser.add_argument("--events", type=int, default=None,
                        help="order-book events to drive (default "
                        "3000 smoke / 20000 full)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write metrics JSON (uploaded as a CI artifact)")
    args = parser.parse_args(argv)

    event_count = args.events or (3_000 if args.smoke else 20_000)
    # The state-contrast claims need a settled order book: keep the E5
    # event count fixed (it is cheap) whatever the storage run drives.
    contrast_count = 2_000

    rows = storage_table(event_count)
    print_storage_table(rows)
    ok = check_target(rows)
    native_rows = native_storage_table(event_count)
    facts = state_contrast(contrast_count)

    if args.json:
        metrics: dict[str, float] = dict(facts)
        for query, row in rows.items():
            metrics[f"storage/{query}/ratio"] = row["ratio"]
            metrics[f"storage/{query}/dict_bytes_per_entry"] = row[
                "dict_bytes_per_entry"
            ]
            metrics[f"storage/{query}/columnar_bytes_per_entry"] = row[
                "columnar_bytes_per_entry"
            ]
            metrics[f"storage/{query}/entries"] = row["entries"]
        for query, row in native_rows.items():
            metrics[f"storage/{query}/native_bytes_per_entry"] = row[
                "native_bytes_per_entry"
            ]
        write_bench_json(
            args.json, "memory", metrics,
            metadata={
                **bench_metadata(native=bool(native_rows)),
                "events": event_count,
                "ratio_target": MEMORY_RATIO_TARGET,
                "target_queries": list(TARGET_QUERIES),
                "plans": {q: rows[q]["plan"] for q in rows},
            },
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
