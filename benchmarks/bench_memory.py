"""E5 — memory usage (the Figure 4 memory readout).

Two statements from the paper:

* "the memory consumption of our main-memory techniques is sufficiently
  low to support applications such as data warehouse loading" — DBToaster's
  aggregate maps stay small and bounded by distinct keys, while stream
  engines materialise join state and re-evaluation holds the base tables;
* joint compilation of integration + aggregation "may avoid the
  materialization of large intermediate results" — measured directly as
  maintained entries vs the ``lineorder`` rows the two-phase loader stores.

These are asserted as structural facts and benchmarked as state-snapshot
accounting (cheap); the printed numbers feed EXPERIMENTS.md.
"""

import pytest

from repro.baselines import make_engine
from repro.runtime.profiler import total_memory_bytes
from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
from repro.workloads.orderbook import OrderBookGenerator

EVENTS = 2_000


def _drive(kind: str, query: str):
    catalog = finance_catalog()
    engine = make_engine(kind, {query: FINANCE_QUERIES[query]}, catalog)
    for event in OrderBookGenerator(seed=77).events(EVENTS):
        engine.process(event)
    return engine


class TestStateContrast:
    def test_psp_is_constant_state_for_dbtoaster(self):
        """PriceSpread over the bid x ask cross product: DBToaster keeps a
        handful of scalar aggregates; the operator network materialises the
        books inside the join."""
        compiled = _drive("dbtoaster", "psp")
        network = _drive("streamops", "psp")
        assert compiled.total_entries() <= 10
        assert network.total_entries() > 20 * compiled.total_entries()

    def test_grouped_queries_bounded_by_distinct_keys(self):
        compiled = _drive("dbtoaster", "bsp")
        # bsp state is keyed by broker (10 brokers): a few entries per map.
        assert compiled.total_entries() < 100

    def test_reeval_holds_base_tables(self):
        reeval = _drive("reeval_lazy", "psp")
        compiled = _drive("dbtoaster", "psp")
        assert reeval.total_entries() > compiled.total_entries()


def test_warehouse_avoids_lineorder(capsys):
    """Joint compilation vs the two-phase loader's intermediate."""
    from repro.compiler import compile_sql
    from repro.runtime import DeltaEngine
    from repro.workloads.ssb import (
        SSB_Q41_COMBINED,
        lineorder_rows,
        load_static_tables,
        ssb_catalog,
        warehouse_stream,
    )
    from repro.workloads.tpch import TpchGenerator

    generator = TpchGenerator(sf=0.001, seed=1992)
    program = compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="ssb41")
    engine = DeltaEngine(program)
    load_static_tables(engine, generator)
    engine.process_stream(warehouse_stream(generator))

    lineorder = sum(1 for _ in lineorder_rows(generator))
    maintained = engine.total_entries()
    print(
        f"\nlineorder rows avoided: {lineorder:,}; "
        f"maintained entries: {maintained:,}; "
        f"live bytes: {total_memory_bytes(engine.maps):,}"
    )
    # The flat fact table is wide (7 columns x rows); the maintained state
    # must not blow up beyond the same order.
    assert maintained < 6 * lineorder


@pytest.mark.parametrize("query", ["psp", "bsp", "axf"])
def bench_memory_accounting(benchmark, query):
    """Cost of a full state-size snapshot on a live engine."""
    engine = _drive("dbtoaster", query)
    result = benchmark(total_memory_bytes, engine.maps)
    benchmark.extra_info["live_bytes"] = result
    benchmark.extra_info["entries"] = engine.total_entries()
