"""Durability cost: WAL overhead per fsync policy, recovery vs suffix length.

The durable engine logs every batch before applying it
(:mod:`repro.runtime.durability`), so the questions this benchmark
answers are the ones a deployment would ask:

* **logging overhead** — events/second with the WAL on (per fsync
  policy: ``always`` / ``batch`` / ``none``) vs the same engine with
  durability off, on the finance workloads at batch 100.  The frame
  codec writes the batch's struct-of-arrays columns as packed arrays, so
  the marginal cost should be dominated by the fsync discipline, not by
  serialisation.  The acceptance gate: ``fsync=batch`` (the default
  policy) costs <= 30% throughput on the finance workloads;
* **recovery time vs suffix length** — recovery replays the WAL suffix
  past the snapshot watermark through the normal batch path, so restart
  latency is linear in the un-checkpointed suffix.  The table drives one
  log, snapshots at several points, and times recovery against each
  watermark — the number ``--snapshot-every`` trades against.

Run::

    PYTHONPATH=src python benchmarks/bench_durability.py [--smoke]
        [--events N] [--json PATH]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.harness import bench_metadata, write_bench_json  # noqa: E402

#: Finance queries the overhead gate runs over (the same numeric
#: workloads the other benches measure).
OVERHEAD_QUERIES = ("vwap", "bsp")

#: The acceptance gate: fsync=batch may cost at most this fraction of
#: the durability-off throughput at batch 100.
BATCH_OVERHEAD_LIMIT = 0.30

BATCH_SIZE = 100

FSYNC_POLICIES = ("always", "batch", "none")


def _finance_program(query: str):
    from repro.compiler import compile_sql
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

    return compile_sql(FINANCE_QUERIES[query], finance_catalog(), name=query)


def _finance_events(event_count: int, seed: int = 11) -> list:
    from repro.workloads.orderbook import OrderBookGenerator

    return list(OrderBookGenerator(seed=seed).events(event_count))


def measure_overhead(query: str, events: list, rounds: int = 3) -> dict:
    """Throughput of one query, durability off vs each fsync policy.

    Every configuration processes the identical stream at batch 100;
    reported numbers are the best of ``rounds``.  Configurations are
    *interleaved* within each round (off, always, batch, none, off, ...)
    so machine-load drift lands on all of them equally rather than
    skewing whichever config happened to run during a slow phase —
    best-of then converges on each config's clean throughput.  Durable
    runs re-create their directory each round, so no run replays a
    predecessor's log.
    """
    from repro.runtime import DeltaEngine
    from repro.runtime.durability import DurableEngine

    program = _finance_program(query)
    row: dict[str, float] = {key: 0.0 for key in ("off",) + FSYNC_POLICIES}

    for _ in range(rounds):
        engine = DeltaEngine(program)
        start = time.perf_counter()
        engine.process_stream(events, batch_size=BATCH_SIZE)
        elapsed = time.perf_counter() - start
        row["off"] = max(row["off"], len(events) / elapsed)

        for policy in FSYNC_POLICIES:
            directory = tempfile.mkdtemp(prefix=f"bench-wal-{query}-")
            try:
                engine = DurableEngine(program, directory, fsync=policy)
                start = time.perf_counter()
                engine.process_stream(events, batch_size=BATCH_SIZE)
                engine.sync()
                elapsed = time.perf_counter() - start
                engine.close()
            finally:
                shutil.rmtree(directory, ignore_errors=True)
            row[policy] = max(row[policy], len(events) / elapsed)
    return row


def print_overhead_table(rows: dict[str, dict]) -> None:
    header = (
        f"{'query':<8}{'off ev/s':>12}"
        + "".join(f"{policy + ' ev/s':>14}" for policy in FSYNC_POLICIES)
        + f"{'batch ovh':>11}"
    )
    print(f"WAL overhead — finance workloads, batch {BATCH_SIZE}")
    print(header)
    print("-" * len(header))
    for query, row in rows.items():
        overhead = 1.0 - row["batch"] / row["off"]
        print(
            f"{query:<8}{row['off']:>12,.0f}"
            + "".join(f"{row[policy]:>14,.0f}" for policy in FSYNC_POLICIES)
            + f"{overhead:>10.1%}"
        )
    print()


def check_overhead_target(rows: dict[str, dict]) -> bool:
    """The gate: fsync=batch keeps >= 70% of durability-off throughput."""
    failing = [
        query
        for query, row in rows.items()
        if 1.0 - row["batch"] / row["off"] > BATCH_OVERHEAD_LIMIT
    ]
    if failing:
        print(
            f"!! durability target MISSED: fsync=batch overhead exceeds "
            f"{BATCH_OVERHEAD_LIMIT:.0%} on {', '.join(failing)}"
        )
    else:
        print(
            f"durability target met: fsync=batch overhead <= "
            f"{BATCH_OVERHEAD_LIMIT:.0%} on {', '.join(rows)} "
            f"(batch {BATCH_SIZE})"
        )
    print()
    return not failing


def measure_recovery(query: str, events: list, points: int = 4) -> list[dict]:
    """Recovery time against WAL-suffix length, one shared log.

    The whole stream is logged once; snapshots are taken at ``points``
    evenly spaced watermarks by replay-and-checkpoint, then recovery from
    each snapshot times the suffix replay that remains.
    """
    from repro.runtime.durability import (
        DurableEngine,
        SnapshotStore,
        WriteAheadLog,
        recover_engine,
    )

    program = _finance_program(query)
    rows = []
    directory = tempfile.mkdtemp(prefix=f"bench-recover-{query}-")
    try:
        with DurableEngine(program, directory, fsync="none") as engine:
            engine.process_stream(events, batch_size=BATCH_SIZE)
            total_lsn = engine.lsn
        store = SnapshotStore(directory, keep=points + 1)
        for index in range(points):
            watermark = total_lsn * index // points
            # Checkpoint at this watermark: replay the prefix into a fresh
            # engine and save its state, so recovery below replays only
            # the remaining suffix.
            from repro.runtime import DeltaEngine

            prefix = DeltaEngine(program)
            for lsn, relation, sign, columns in WriteAheadLog.replay(directory):
                if lsn > watermark:
                    break
                prefix.process_batch_columns(relation, sign, columns)
            store.save(
                watermark,
                {
                    "maps": {
                        name: dict(contents)
                        for name, contents in prefix.maps.items()
                    },
                    "events_processed": prefix.events_processed,
                    "events_skipped": prefix.events_skipped,
                    "stream_started": prefix._stream_started,
                },
            )
            start = time.perf_counter()
            recovered, lsn = recover_engine(program, directory)
            elapsed = time.perf_counter() - start
            assert lsn == total_lsn
            rows.append(
                {
                    "watermark": watermark,
                    "suffix_frames": total_lsn - watermark,
                    "recovery_s": elapsed,
                }
            )
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return rows


def print_recovery_table(query: str, rows: list[dict]) -> None:
    header = f"{'snapshot LSN':>13}{'suffix frames':>15}{'recovery':>11}"
    print(f"recovery time vs WAL suffix — {query}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['watermark']:>13,}{row['suffix_frames']:>15,}"
            f"{row['recovery_s'] * 1000:>9,.1f}ms"
        )
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration (CI)")
    parser.add_argument("--events", type=int, default=None,
                        help="order-book events to drive (default "
                        "4000 smoke / 40000 full)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write metrics JSON (uploaded as a CI artifact)")
    args = parser.parse_args(argv)

    event_count = args.events or (8_000 if args.smoke else 40_000)
    events = _finance_events(event_count)

    overhead = {
        query: measure_overhead(query, events, rounds=4 if args.smoke else 5)
        for query in OVERHEAD_QUERIES
    }
    print_overhead_table(overhead)
    ok = check_overhead_target(overhead)

    recovery = measure_recovery("vwap", events)
    print_recovery_table("vwap", recovery)

    if args.json:
        metrics: dict[str, float] = {}
        for query, row in overhead.items():
            for key, value in row.items():
                metrics[f"wal/{query}/{key}"] = value
            metrics[f"wal/{query}/batch_overhead"] = 1.0 - row["batch"] / row["off"]
        for row in recovery:
            metrics[f"recovery/suffix_{row['suffix_frames']}/seconds"] = row[
                "recovery_s"
            ]
        write_bench_json(
            args.json, "durability", metrics,
            metadata={
                **bench_metadata(),
                "events": event_count,
                "batch_size": BATCH_SIZE,
                "batch_overhead_limit": BATCH_OVERHEAD_LIMIT,
                "overhead_queries": list(OVERHEAD_QUERIES),
            },
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
