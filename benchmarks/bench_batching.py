"""E7 — batched delta processing: events/second vs batch size.

Motivation: compiling triggers removes per-event *interpretation* overhead
(the paper's claim), but a Python runtime still pays per-event *dispatch*
overhead — trigger lookup, static-table checks, profiler hooks, one function
call per event.  Batched execution (DBSP/OpenIVM-style Z-set deltas) pays
those costs once per batch and runs the generated ``*_batch`` trigger over
the whole row list.

Methodology
-----------
Engines are prefilled to steady state exactly as in the bakeoff harness.
The measured slice is then arranged for *bulk delivery*: events are stably
regrouped by ``(relation, sign)`` — the shape of an archived feed replay or
a warehouse load file — so every batch size processes the **identical**
event sequence and only the dispatch granularity differs.  Regrouping is
sound here because the maintained maps are a function of the current
database multiset (the engine-vs-oracle invariant) and all workload values
are integers.  Batch size 1 is classic per-event dispatch
(``engine.process``); larger sizes deliver pre-grouped runs through
``engine.process_batch``.

The trailing *IR optimisation impact* section measures the loop-heavy
finance triggers (vwap, mst) with the IR pass pipeline on vs off
(``--no-opt`` runs the whole benchmark with it off); loop fusion,
invariant hoisting and dead-binding pruning are exactly the rewrites
those body-dominated triggers needed (batching alone left them at ~1x).

The *storage ablation* table re-measures the finance slices with
columnar map storage off (``DeltaEngine(columnar=False)``): its
``storage-off/...`` metrics give the CI regression gate a dict-storage
throughput floor that the columnar default's documented memory/CPU
trade-off cannot mask (see docs/STORAGE.md).

The *second-order batch-delta impact* section measures the self-reading
triggers (vwap, mst) with the delta-of-delta batch sink on vs off: with
it off they replay the per-event body per row (the pre-second-order batch
path); with it on the first-order statements accumulate per row and the
order-2 targets are restated once per batch.

The *native kernel impact* section re-measures the same loop-heavy
triggers with the compiled C column kernel (``mode="native"``) against
the pure-Python columnar default; it is skipped with an explicit line
when the host has no C toolchain (see docs/NATIVE.md).  The *accumulation coverage*
report (also embedded in the ``--json`` payload's metadata) shows, per
trigger, which batch sink every compiled statement got.

Run::

    PYTHONPATH=src python benchmarks/bench_batching.py [--smoke] [--no-opt]
        [--sizes 1,10,100,1000] [--mode compiled|interpreted|both]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.harness import (  # noqa: E402
    bench_metadata,
    measure_batched,
    prepare_steady_state,
    write_bench_json,
)
from repro.runtime.events import StreamEvent  # noqa: E402

DEFAULT_SIZES = (1, 10, 100, 1000)

#: The body-dominated triggers the IR optimiser targets (vwap's fused +
#: hoisted full scan, mst's pruned correlated-EXISTS inner loop).
LOOP_HEAVY_QUERIES = ("vwap", "mst")

#: Acceptance floor for the IR-optimisation speedup on loop-heavy
#: triggers; below it the run logs the blocking reason.
IR_SPEEDUP_TARGET = 1.3

#: Acceptance floor for the second-order batch sink on self-reading
#: triggers at batch=100 (vs the per-row fallback batch path).
SECOND_ORDER_TARGET = 1.5

#: Acceptance floor for the native C column kernel on the keyed probe
#: path (vs the pure-Python ColumnarMap) at batch=100.
NATIVE_TARGET = 2.0


def bulk_delivery_order(events: list[StreamEvent]) -> list[StreamEvent]:
    """Stable-regroup a slice by ``(relation, sign)``: per-trigger order is
    preserved, so the final database multiset (hence the maps) is unchanged."""
    runs: dict[tuple[str, int], list[StreamEvent]] = {}
    for event in events:
        runs.setdefault((event.relation, event.sign), []).append(event)
    return [event for run in runs.values() for event in run]


def finance_states(
    kind: str, prefill: int, slice_size: int, queries=None, engine_kwargs=None
):
    """Steady states per finance query, slices arranged for bulk delivery."""
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.orderbook import OrderBookGenerator

    states = {}
    for name in queries or sorted(FINANCE_QUERIES):
        state = prepare_steady_state(
            kind,
            {name: FINANCE_QUERIES[name]},
            finance_catalog(),
            OrderBookGenerator(seed=2009).events(prefill + slice_size + 10),
            prefill=prefill,
            slice_size=slice_size,
            engine_kwargs=engine_kwargs,
        )
        state.slice_events = bulk_delivery_order(state.slice_events)
        states[name] = state
    return states


def warehouse_state(kind: str, sf: float, slice_size: int, engine_kwargs=None):
    """Steady state on the SSB Q4.1 warehouse-loading fact stream."""
    from repro.workloads.ssb import SSB_Q41_COMBINED, ssb_catalog
    from repro.workloads.tpch import TpchGenerator

    def full_stream():
        generator = TpchGenerator(sf=sf, seed=1992)
        for relation, rows in generator.static_tables().items():
            for row in rows:
                yield StreamEvent(relation, 1, row)
        for relation, row in generator.orders_and_lineitems():
            yield StreamEvent(relation, 1, row)

    generator = TpchGenerator(sf=sf, seed=1992)
    dimension_count = sum(len(r) for r in generator.static_tables().values())
    prefill = dimension_count + max(generator.n_orders, 10)
    state = prepare_steady_state(
        kind,
        {"ssb41": SSB_Q41_COMBINED},
        ssb_catalog(),
        full_stream(),
        prefill=prefill,
        slice_size=slice_size,
        engine_kwargs=engine_kwargs,
    )
    state.slice_events = bulk_delivery_order(state.slice_events)
    return state


def run_table(
    title: str,
    states: dict,
    sizes: tuple[int, ...],
    rounds: int,
) -> dict[str, dict[int, float]]:
    """Measure and print one workload table; returns events/sec per cell."""
    results: dict[str, dict[int, float]] = {}
    header = f"{'query':<10}" + "".join(f"{f'batch={s}':>14}" for s in sizes)
    header += f"{'speedup':>10}"
    print(title)
    print(header)
    print("-" * len(header))
    for name, state in states.items():
        row = {
            size: measure_batched(state, size, rounds=rounds) for size in sizes
        }
        results[name] = row
        speedup = row[sizes[-1]] / row[sizes[0]] if row[sizes[0]] else float("inf")
        cells = "".join(f"{row[s]:>12,.0f}/s" for s in sizes)
        print(f"{name:<10}{cells}{speedup:>9.2f}x")
    print()
    return results


def check_identical(states: dict) -> None:
    """Batched maps must be bit-identical to per-event maps on every slice."""
    for name, state in states.items():
        per_event = state.fresh_engine()
        state.run_slice(per_event)
        for size in (1, 13, 1000, None):
            batched = state.fresh_engine()
            state.run_slice_batched(batched, size)
            assert batched.maps == per_event.maps, (
                f"{name}: batched maps diverge at batch_size={size}"
            )
    print(f"identity check: batched == per-event maps on {len(states)} slices")


def ir_opt_impact(
    prefill: int,
    slice_size: int,
    batch_size: int,
    rounds: int,
    metrics: dict[str, float],
) -> None:
    """Loop-heavy triggers, IR optimisation pipeline on vs off."""
    print("IR optimisation impact — loop-heavy triggers "
          f"(batch={batch_size}, best of {rounds})")
    header = f"{'query':<10}{'no-opt':>14}{'opt':>14}{'speedup':>10}"
    print(header)
    print("-" * len(header))
    for name in LOOP_HEAVY_QUERIES:
        plain = finance_states(
            "dbtoaster", prefill, slice_size, queries=[name],
            engine_kwargs={"optimize": False},
        )[name]
        optimised = finance_states(
            "dbtoaster", prefill, slice_size, queries=[name],
        )[name]
        plain_eps = measure_batched(plain, batch_size, rounds=rounds)
        opt_eps = measure_batched(optimised, batch_size, rounds=rounds)
        metrics[f"ir-opt/{name}/off"] = plain_eps
        metrics[f"ir-opt/{name}/on"] = opt_eps
        speedup = opt_eps / plain_eps if plain_eps else float("inf")
        print(f"{name:<10}{plain_eps:>12,.0f}/s{opt_eps:>12,.0f}/s"
              f"{speedup:>9.2f}x")
        if speedup < IR_SPEEDUP_TARGET:
            print(f"  !! {name}: {speedup:.2f}x is below the "
                  f"{IR_SPEEDUP_TARGET}x target — blocking reason: "
                  "trigger cost is dominated by work the loop passes "
                  "cannot remove (per-entry inner-loop accumulation that "
                  "depends on the loop variables), so hoisting/fusion "
                  "have nothing loop-invariant left to lift")
    print()


def second_order_impact(
    prefill: int,
    slice_size: int,
    batch_size: int,
    rounds: int,
    metrics: dict[str, float],
) -> None:
    """Self-reading triggers: per-row fallback vs second-order absorption."""
    print("second-order batch-delta impact — self-reading triggers "
          f"(batch={batch_size}, best of {rounds})")
    header = f"{'query':<10}{'per-row':>14}{'second-order':>16}{'speedup':>10}"
    print(header)
    print("-" * len(header))
    for name in LOOP_HEAVY_QUERIES:
        fallback = finance_states(
            "dbtoaster", prefill, slice_size, queries=[name],
            engine_kwargs={"second_order": False},
        )[name]
        absorbed = finance_states(
            "dbtoaster", prefill, slice_size, queries=[name],
        )[name]
        fallback_eps = measure_batched(fallback, batch_size, rounds=rounds)
        absorbed_eps = measure_batched(absorbed, batch_size, rounds=rounds)
        metrics[f"second-order/{name}/off"] = fallback_eps
        metrics[f"second-order/{name}/on"] = absorbed_eps
        speedup = absorbed_eps / fallback_eps if fallback_eps else float("inf")
        print(f"{name:<10}{fallback_eps:>12,.0f}/s{absorbed_eps:>14,.0f}/s"
              f"{speedup:>9.2f}x")
        if speedup < SECOND_ORDER_TARGET:
            print(f"  !! {name}: {speedup:.2f}x is below the "
                  f"{SECOND_ORDER_TARGET}x target — blocking reason: the "
                  "trigger's order-2 restatement costs as much as the "
                  "per-row loop it replaced (restate scan not amortised "
                  "across the batch)")
    print()


def native_impact(
    prefill: int,
    slice_size: int,
    batch_size: int,
    rounds: int,
    metrics: dict[str, float],
) -> None:
    """Loop-heavy triggers: pure-Python columnar maps vs the C kernel.

    Skipped (with an explicit line, never silently) when the host has no
    C toolchain — the native lane would silently fall back to exactly the
    pure-Python engine and the comparison would measure noise.
    """
    from repro.codegen.native import probe_toolchain

    probe = probe_toolchain()
    if not probe.available:
        print("native kernel impact: SKIPPED — no C toolchain "
              f"({probe.describe()})\n")
        return
    print(f"native kernel impact — loop-heavy triggers "
          f"(batch={batch_size}, best of {rounds}, {probe.describe()})")
    header = f"{'query':<10}{'python':>14}{'native':>14}{'speedup':>10}"
    print(header)
    print("-" * len(header))
    for name in LOOP_HEAVY_QUERIES:
        python = finance_states(
            "dbtoaster", prefill, slice_size, queries=[name],
        )[name]
        native = finance_states(
            "dbtoaster", prefill, slice_size, queries=[name],
            engine_kwargs={"mode": "native"},
        )[name]
        assert getattr(native.engine, "native_active", False), (
            f"{name}: native lane fell back despite an available toolchain"
        )
        python_eps = measure_batched(python, batch_size, rounds=rounds)
        native_eps = measure_batched(native, batch_size, rounds=rounds)
        metrics[f"native/{name}/off"] = python_eps
        metrics[f"native/{name}/on"] = native_eps
        speedup = native_eps / python_eps if python_eps else float("inf")
        print(f"{name:<10}{python_eps:>12,.0f}/s{native_eps:>12,.0f}/s"
              f"{speedup:>9.2f}x")
        if speedup < NATIVE_TARGET:
            print(f"  !! {name}: {speedup:.2f}x is below the "
                  f"{NATIVE_TARGET}x target — blocking reason: the "
                  "trigger's hot path is not kernel-resident (probes on "
                  "non-native maps or Python-side binding work dominate), "
                  "so moving the columnar probes to C cannot repay the "
                  "FFI crossing cost")
        # The kernel must be an *implementation* swap: identical maps.
        check = native.fresh_engine()
        native.run_slice_batched(check, batch_size)
        oracle = python.fresh_engine()
        python.run_slice(oracle)
        assert check.maps == oracle.maps, (
            f"{name}: native maps diverge from pure-Python maps"
        )
    print()


def accumulation_coverage(
    queries=None, optimize: bool = True
) -> dict[str, dict[str, dict[str, int]]]:
    """Per query: each trigger's chosen batch sinks (statement counts).

    ``optimize`` must match the run's engine configuration so the JSON
    metadata describes the lowering that was actually measured.
    """
    from repro.compiler import compile_sql
    from repro.tools.trace import batch_sink_coverage
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
    from repro.workloads.ssb import SSB_Q41_COMBINED, ssb_catalog

    coverage: dict[str, dict[str, dict[str, int]]] = {}
    for name in queries or sorted(FINANCE_QUERIES):
        program = compile_sql(FINANCE_QUERIES[name], finance_catalog(), name=name)
        coverage[name] = batch_sink_coverage(program, optimize=optimize)
    coverage["ssb41"] = batch_sink_coverage(
        compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="ssb41"),
        optimize=optimize,
    )
    return coverage


def print_coverage(coverage: dict[str, dict[str, dict[str, int]]]) -> None:
    print("accumulation coverage — batch sink per trigger statement")
    for query, triggers in coverage.items():
        for trigger, counts in triggers.items():
            cells = ", ".join(
                f"{count} {sink}" for sink, count in sorted(counts.items())
            )
            print(f"  {query:<8}{trigger:<28}{cells or '(no statements)'}")
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small, fast configuration (CI)")
    parser.add_argument("--sizes", default=None,
                        help="comma-separated batch sizes (default 1,10,100,1000)")
    parser.add_argument("--mode", choices=["compiled", "interpreted", "both"],
                        default="compiled")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--no-opt", action="store_true",
                        help="run every engine with the IR optimisation "
                        "pipeline disabled (ablation / bisection)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write metrics JSON for the CI regression gate")
    args = parser.parse_args(argv)

    if args.sizes:
        sizes = tuple(int(s) for s in args.sizes.split(","))
    else:
        sizes = (1, 100) if args.smoke else DEFAULT_SIZES
    if args.smoke:
        # Slices stay large enough that every measured interval is tens of
        # milliseconds: the CI regression gate compares these numbers, and
        # millisecond-scale timings are noise.
        prefill, slice_size, sf, rounds = 300, 2_000, 0.0004, 2
        finance_queries = ["psp", "bsp"]
    else:
        prefill, slice_size, sf, rounds = 1_000, 3_000, 0.0008, args.rounds
        finance_queries = None

    kinds = {
        "compiled": ["dbtoaster"],
        "interpreted": ["dbtoaster_interp"],
        "both": ["dbtoaster", "dbtoaster_interp"],
    }[args.mode]

    metrics: dict[str, float] = {}

    def record(kind: str, table: dict[str, dict[int, float]]) -> None:
        for query, row in table.items():
            for size, events_per_second in row.items():
                metrics[f"{kind}/{query}/batch={size}"] = events_per_second

    engine_kwargs = {"optimize": False} if args.no_opt else None
    opt_label = " [--no-opt]" if args.no_opt else ""
    for kind in kinds:
        states = finance_states(
            kind, prefill, slice_size, finance_queries, engine_kwargs
        )
        record(kind, run_table(
            f"finance workload — {kind}{opt_label} ({slice_size}-event slice, "
            f"best of {rounds})",
            states, sizes, rounds,
        ))
        check_identical(states)
        print()

        warehouse = {
            "ssb41": warehouse_state(kind, sf, min(slice_size, 1_000), engine_kwargs)
        }
        record(kind, run_table(
            f"warehouse loading — {kind}{opt_label} (SSB Q4.1, sf={sf})",
            warehouse, sizes, rounds,
        ))
        check_identical(warehouse)
        print()
    # Storage ablation: the same finance slices with columnar map storage
    # off (plain dicts).  Recorded under its own metric prefix so the CI
    # regression gate keeps a *dict-storage* throughput floor — a future
    # accidental slowdown cannot hide behind the deliberate, documented
    # columnar memory/CPU trade-off (see docs/STORAGE.md).
    nocol_queries = finance_queries or ["psp", "bsp"]
    nocol_kwargs = dict(engine_kwargs or {})
    nocol_kwargs["columnar"] = False
    nocol = finance_states(
        "dbtoaster", prefill, slice_size, nocol_queries, nocol_kwargs
    )
    record("storage-off", run_table(
        f"storage ablation — dict maps (--no-columnar){opt_label}",
        nocol, sizes, rounds,
    ))

    impact_slice = slice_size if args.smoke else min(slice_size, 1_500)
    if not args.no_opt:
        ir_opt_impact(
            prefill, impact_slice, batch_size=100, rounds=rounds,
            metrics=metrics,
        )
        second_order_impact(
            prefill, impact_slice, batch_size=100, rounds=rounds,
            metrics=metrics,
        )
        native_impact(
            prefill, impact_slice, batch_size=100, rounds=rounds,
            metrics=metrics,
        )
    # Coverage is a compile-time fact: report every finance query even when
    # the smoke run only measures a subset.
    coverage = accumulation_coverage(optimize=not args.no_opt)
    print_coverage(coverage)
    if args.json:
        from repro.codegen.native import probe_toolchain

        native_measured = (
            not args.no_opt and probe_toolchain().available
        )
        write_bench_json(
            args.json, "batching", metrics,
            metadata={
                **bench_metadata(
                    optimize=not args.no_opt, native=native_measured
                ),
                "coverage": coverage,
            },
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
