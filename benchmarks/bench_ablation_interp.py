"""E8 — ablation: compiled triggers vs interpreted triggers.

The introduction's claim: compiled C++ "eliminates overheads in
interpreting query plans stored in dynamic data structures".  Here both
engines run the *identical* compiled program (same maps, same statements);
the only difference is executing generated straight-line code vs walking
the statement expressions with the evaluator per event.
"""

import copy
from functools import lru_cache

import pytest

from repro.compiler import compile_sql
from repro.runtime import DeltaEngine
from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
from repro.workloads.orderbook import OrderBookGenerator

PREFILL = 800
SLICE = 40


@lru_cache(maxsize=None)
def prepared(query: str, mode: str):
    catalog = finance_catalog()
    program = compile_sql(FINANCE_QUERIES[query], catalog, name=query)
    engine = DeltaEngine(program, mode=mode)
    events = list(OrderBookGenerator(seed=23).events(PREFILL + SLICE))
    for event in events[:PREFILL]:
        engine.process(event)
    return engine, events[PREFILL:]


@pytest.mark.parametrize("mode", ["compiled", "interpreted"])
@pytest.mark.parametrize("query", ["bsp", "psp", "axf"])
def bench_executor_mode(benchmark, query, mode):
    engine, slice_events = prepared(query, mode)

    def setup():
        return (copy.deepcopy(engine),), {}

    def run(fresh):
        for event in slice_events:
            fresh.process(event)

    benchmark.pedantic(run, setup=setup, rounds=3)
    benchmark.extra_info["events_per_op"] = SLICE


def test_modes_compute_identical_results():
    catalog = finance_catalog()
    program = compile_sql(FINANCE_QUERIES["bsp"], catalog, name="bsp")
    compiled = DeltaEngine(program, mode="compiled")
    interpreted = DeltaEngine(program, mode="interpreted")
    for event in OrderBookGenerator(seed=29).events(700):
        compiled.process(event)
        interpreted.process(event)
    assert compiled.results("bsp") == interpreted.results("bsp")


@pytest.mark.parametrize("use_indexes", [True, False], ids=["indexed", "scan"])
def bench_secondary_indexes(benchmark, use_indexes):
    """Bonus ablation: secondary index maintenance vs filtered scans.

    Access-pattern indexes are real DBToaster machinery (M3 'patterns');
    AXF loops over per-broker ask state, so indexes pay off directly.
    """
    catalog = finance_catalog()
    program = compile_sql(FINANCE_QUERIES["axf"], catalog, name="axf")
    events = list(OrderBookGenerator(seed=23).events(PREFILL + SLICE))
    engine = DeltaEngine(program, mode="compiled", use_indexes=use_indexes)
    for event in events[:PREFILL]:
        engine.process(event)
    slice_events = events[PREFILL:]

    def setup():
        return (copy.deepcopy(engine),), {}

    def run(fresh):
        for event in slice_events:
            fresh.process(event)

    benchmark.pedantic(run, setup=setup, rounds=3)
    benchmark.extra_info["events_per_op"] = SLICE
