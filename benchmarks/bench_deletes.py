"""E9 — arbitrary tuple lifetimes: deletion-heavy streams (Section 2).

The paper's data model point: order books "do not grow unboundedly in
practice, but cannot be expressed by windows given arbitrary input deltas".
This bench sweeps the cancellation ratio of the order-book feed and checks
(a) deletions cost the same as insertions (strict delta symmetry) and
(b) state stays bounded by the live book, not by events processed.
"""

import copy
from functools import lru_cache

import pytest

from repro.compiler import compile_sql
from repro.runtime import DeltaEngine
from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
from repro.workloads.orderbook import OrderBookGenerator

PREFILL = 1_000
SLICE = 60

#: (new order, cancel, modify) weights per regime.
MIXES = {
    "insert_heavy": (0.80, 0.15, 0.05),
    "balanced": (0.45, 0.35, 0.20),
    "cancel_heavy": (0.25, 0.55, 0.20),
}


@lru_cache(maxsize=None)
def prepared(mix: str):
    new_w, cancel_w, modify_w = MIXES[mix]
    catalog = finance_catalog()
    program = compile_sql(FINANCE_QUERIES["bsp"], catalog, name="bsp")
    engine = DeltaEngine(program)
    generator = OrderBookGenerator(
        seed=41, new_order_weight=new_w, cancel_weight=cancel_w,
        modify_weight=modify_w,
    )
    events = list(generator.events(PREFILL + SLICE))
    for event in events[:PREFILL]:
        engine.process(event)
    return engine, events[PREFILL:]


@pytest.mark.parametrize("mix", sorted(MIXES))
def bench_delete_ratio(benchmark, mix):
    engine, slice_events = prepared(mix)

    def setup():
        return (copy.deepcopy(engine),), {}

    def run(fresh):
        for event in slice_events:
            fresh.process(event)

    benchmark.pedantic(run, setup=setup, rounds=3)
    benchmark.extra_info["events_per_op"] = SLICE


def test_state_bounded_by_live_book_not_event_count():
    catalog = finance_catalog()
    program = compile_sql(FINANCE_QUERIES["bsp"], catalog, name="bsp")
    engine = DeltaEngine(program)
    generator = OrderBookGenerator(
        seed=43, new_order_weight=0.25, cancel_weight=0.55, modify_weight=0.20
    )
    for event in generator.events(6_000):
        engine.process(event)
    depth = generator.depth()
    live_orders = depth["bids"] + depth["asks"]
    # Maps are keyed by broker (10) and aggregate values; entries must be
    # tiny relative to the 6000 processed events.
    assert engine.total_entries() < max(200, live_orders)


def test_full_drain_returns_to_empty_state():
    """Inserting then deleting *everything* leaves zero entries (exact
    inverses, zero eviction, index cleanup)."""
    catalog = finance_catalog()
    program = compile_sql(FINANCE_QUERIES["axf"], catalog, name="axf")
    engine = DeltaEngine(program)
    rows = [(t, t, t % 7, 10_000 + (t % 40), 1 + t % 9) for t in range(200)]
    for row in rows:
        engine.insert("bids", *row)
        engine.insert("asks", *row)
    assert engine.total_entries() > 0
    for row in rows:
        engine.delete("bids", *row)
        engine.delete("asks", *row)
    assert engine.total_entries() == 0
    assert engine.results("axf") == []
