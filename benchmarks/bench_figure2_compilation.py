"""E1/E2 — Figure 2: recursive compilation of the paper's example query.

Regenerates the paper's compilation trace (maps + triggers) and the
generated handler listings, asserts the map inventory matches Figure 2
exactly, and benchmarks the compilation pipeline itself (part of the
"compile time" readout of Figure 4).
"""

import pytest

from repro.codegen.cppgen import generate_cpp
from repro.codegen.pygen import generate_module
from repro.compiler import compile_sql
from repro.sql.catalog import Catalog

DDL = """
CREATE STREAM R (A int, B int);
CREATE STREAM S (B int, C int);
CREATE STREAM T (C int, D int);
"""
PAPER_SQL = "SELECT sum(r.A * t.D) FROM R r, S s, T t WHERE r.B = s.B AND s.C = t.C"

#: Figure 2's map inventory, in canonical variables:
#: q, qD[b], qA[b], qD[c], qA[c], q1[b,c].
FIGURE2_MAPS = {
    "AggSum([], R(__i0,__i1) * S(__i1,__i2) * T(__i2,__i3) * __i0 * __i3)",
    "AggSum([__k0], S(__k0,__i0) * T(__i0,__i1) * __i1)",
    "AggSum([__k0], R(__i0,__k0) * __i0)",
    "AggSum([__k0], T(__k0,__i0) * __i0)",
    "AggSum([__k0], R(__i0,__i1) * S(__i1,__k0) * __i0)",
    "AggSum([__k0,__k1], S(__k0,__k1))",
}


@pytest.fixture(scope="module")
def catalog():
    return Catalog.from_script(DDL)


def test_figure2_trace_reproduced(catalog):
    """The compiled program is exactly the paper's Figure 2."""
    program = compile_sql(PAPER_SQL, catalog)
    assert {repr(m.defn) for m in program.maps.values()} == FIGURE2_MAPS
    # Event handlers: one insert + one delete per relation.
    assert len(program.triggers) == 6
    # The famous property: insert-into-S maintains q with *no join at all*.
    root = program.slot_maps["q"][0]
    s_trigger = program.trigger_for("S", 1)
    root_update = next(s for s in s_trigger.statements if s.target == root)
    assert len(root_update.reads()) == 2 and not root_update.loop_vars
    print("\n" + program.describe())


def test_handler_listings_emitted(catalog):
    """Section 3's code listing exists in both back ends."""
    program = compile_sql(PAPER_SQL, catalog)
    python_source = generate_module(program)
    cpp_source = generate_cpp(program)
    for name in ("on_insert_r", "on_insert_s", "on_insert_t"):
        assert f"def {name}(" in python_source
        assert f"void {name}(" in cpp_source
    print(f"\ngenerated Python: {len(python_source)} bytes, "
          f"C++: {len(cpp_source)} bytes")


def bench_compile_paper_query(benchmark, catalog):
    """Recursive compilation time for the Figure 2 query."""
    program = benchmark(compile_sql, PAPER_SQL, catalog)
    assert len(program.maps) == 6


def bench_codegen_paper_query(benchmark, catalog):
    """Python code generation time for the compiled program."""
    program = compile_sql(PAPER_SQL, catalog)
    source = benchmark(generate_module, program)
    assert "def on_insert_r" in source


def bench_compile_finance_suite(benchmark):
    """Compilation of the whole finance query suite (5 queries)."""
    from repro.algebra.translate import translate_sql
    from repro.compiler import compile_queries
    from repro.workloads.finance import FINANCE_QUERIES, finance_catalog

    catalog = finance_catalog()

    def compile_all():
        queries = [
            translate_sql(sql, catalog, name=name)
            for name, sql in FINANCE_QUERIES.items()
        ]
        return compile_queries(queries, catalog)

    program = benchmark(compile_all)
    assert len(program.queries) == 5


def bench_compile_ssb_warehouse(benchmark):
    """Compilation of the 11-way SSB Q4.1 composed query."""
    from repro.workloads.ssb import SSB_Q41_COMBINED, ssb_catalog

    catalog = ssb_catalog()
    program = benchmark(compile_sql, SSB_Q41_COMBINED, catalog, "ssb41")
    assert len(program.maps) < 40
