"""E7 — ablation: recursive materialisation vs first-order deltas.

The introduction's claim: "we generate asymptotically simpler code at each
recurrence, since computing increments allows us to avoid certain database
scans or joins."  Test: chain joins of widening width, measured at two
database sizes.  Full recursion keeps per-event cost O(1)-ish (keyed map
lookups); first-order IVM re-joins base state, so its per-event cost grows
with both join width and database size.
"""

from functools import lru_cache
import random

import pytest

from repro.compiler import CompileOptions, compile_sql
from repro.runtime import DeltaEngine, StreamEvent
from repro.sql.catalog import Catalog


def chain_schema(width: int) -> tuple[Catalog, str, list[str]]:
    """R0(a0,a1) join R1(a1,a2) join ... with sum(first*last)."""
    ddl = []
    names = []
    for i in range(width):
        ddl.append(f"CREATE STREAM R{i} (K{i} int, K{i+1} int);")
        names.append(f"R{i}")
    froms = ", ".join(f"R{i} t{i}" for i in range(width))
    joins = " AND ".join(f"t{i}.K{i+1} = t{i+1}.K{i+1}" for i in range(width - 1))
    sql = f"SELECT sum(t0.K0 * t{width-1}.K{width}) FROM {froms}"
    if joins:
        sql += f" WHERE {joins}"
    return Catalog.from_script("\n".join(ddl)), sql, names


def chain_stream(names: list[str], events: int, seed: int, domain: int):
    rng = random.Random(seed)
    live = {name: [] for name in names}
    out = []
    for _ in range(events):
        name = rng.choice(names)
        if live[name] and rng.random() < 0.3:
            tup = live[name].pop(rng.randrange(len(live[name])))
            out.append(StreamEvent(name, -1, tup))
        else:
            tup = (rng.randint(0, domain), rng.randint(0, domain))
            live[name].append(tup)
            out.append(StreamEvent(name, 1, tup))
    return out


@lru_cache(maxsize=None)
def prepared(width: int, recursive: bool, prefill: int):
    catalog, sql, names = chain_schema(width)
    options = CompileOptions(derived_maps=recursive)
    program = compile_sql(sql, catalog, options=options)
    engine = DeltaEngine(program, mode="compiled")
    stream = chain_stream(names, prefill + 200, seed=31, domain=30)
    for event in stream[:prefill]:
        engine.process(event)
    return engine, stream[prefill : prefill + 100]


@pytest.mark.parametrize("recursive", [True, False], ids=["recursive", "first_order"])
@pytest.mark.parametrize("width", [2, 3, 4])
def bench_chain_depth(benchmark, width, recursive):
    """Per-event cost by join width and compilation depth."""
    import copy

    engine, slice_events = prepared(width, recursive, prefill=1_500)

    def setup():
        return (copy.deepcopy(engine),), {}

    def run(fresh):
        for event in slice_events:
            fresh.process(event)

    benchmark.pedantic(run, setup=setup, rounds=3)
    benchmark.extra_info["events_per_op"] = len(slice_events)


def test_recursive_state_is_aggregate_maps():
    """Recursion trades extra (small) maps for join-free triggers."""
    catalog, sql, names = chain_schema(3)
    full = compile_sql(sql, catalog)
    first = compile_sql(sql, catalog, options=CompileOptions(derived_maps=False))
    full_roles = {m.role for m in full.maps.values()}
    assert "derived" in full_roles
    # First-order keeps only roots + base occurrences.
    assert {m.role for m in first.maps.values()} <= {"root", "occurrence"}
    # And its triggers re-join several maps where recursion needs one probe.
    root = first.slot_maps["q"][0]
    first_reads = max(
        len(s.reads())
        for t in first.triggers.values()
        for s in t.statements
        if s.target == root
    )
    full_root = full.slot_maps["q"][0]
    full_reads = max(
        len(s.reads())
        for t in full.triggers.values()
        for s in t.statements
        if s.target == full_root
    )
    assert full_reads < first_reads
