"""E3 — the DBMS bakeoff on the financial application (Figure 4).

Every system processes the same synthetic order-book stream; measurements
are steady-state slices (see ``harness.py``).  The pytest-benchmark table
is the bakeoff: rows are ``query x system``, and per-operation time is the
cost of a 40-event slice, so relative factors read off directly.

The paper's claims under test:
* DBToaster is 1-3 orders of magnitude faster than re-evaluation;
* it significantly outperforms stream engines where they can compete;
* on nested order-book queries (vwap, mst) it "stands alone" — the stream
  engine rows are skipped as unsupported.
"""

from functools import lru_cache

import pytest

from benchmarks.harness import prepare_steady_state
from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
from repro.workloads.orderbook import OrderBookGenerator

PREFILL = 1_200
SLICE = 40
SYSTEMS = ["dbtoaster", "dbtoaster_interp", "streamops", "ivm", "reeval"]


@lru_cache(maxsize=None)
def steady_state(kind: str, query_name: str):
    return prepare_steady_state(
        kind,
        {query_name: FINANCE_QUERIES[query_name]},
        finance_catalog(),
        OrderBookGenerator(seed=2009).events(PREFILL + SLICE + 10),
        prefill=PREFILL,
        slice_size=SLICE,
    )


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("query", sorted(FINANCE_QUERIES))
def bench_finance_bakeoff(benchmark, query, system):
    state = steady_state(system, query)
    if state is None:
        pytest.skip(f"{system} cannot express {query} (no nested aggregates)")

    def setup():
        return (state.fresh_engine(),), {}

    def run_slice(engine):
        state.run_slice(engine)

    benchmark.pedantic(run_slice, setup=setup, rounds=3)
    benchmark.extra_info["events_per_op"] = SLICE
    benchmark.extra_info["steady_state_events"] = PREFILL
