"""E4 — the DBMS bakeoff on data warehouse loading (Section 4 / Figure 4).

The workload: dimensions are bulk-loaded, then the OLTP fact stream
(orders + lineitems) flows while SSB Q4.1 (composed with the TPC-H -> SSB
transformation) is maintained.  Systems measured on the same fact slice:

* ``dbtoaster`` — joint compilation (never materialises ``lineorder``);
* ``dbtoaster_interp`` — same maps, interpreted triggers;
* ``ivm`` — first-order deltas over base-relation state;
* ``reeval`` — re-runs the 11-way join per update (conventional loader
  that refreshes the report while loading);
* ``streamops`` — the operator network *can* express the flat join but
  materialises every intermediate (measured at reduced scale).
"""

from functools import lru_cache

import pytest

from benchmarks.harness import prepare_steady_state
from repro.workloads.ssb import SSB_Q41_COMBINED, ssb_catalog
from repro.workloads.tpch import TpchGenerator
from repro.runtime.events import StreamEvent

SF = 0.0008
SLICE = 25


def _full_stream():
    """Dimensions (as inserts) followed by the fact stream.

    Baselines without static-table handling simply treat dimension loads
    as ordinary events; the measured slice contains only fact events.
    """
    generator = TpchGenerator(sf=SF, seed=1992)
    for relation, rows in generator.static_tables().items():
        for row in rows:
            yield StreamEvent(relation, 1, row)
    for relation, row in generator.orders_and_lineitems():
        yield StreamEvent(relation, 1, row)


@lru_cache(maxsize=None)
def _dimension_count() -> int:
    generator = TpchGenerator(sf=SF, seed=1992)
    return sum(len(rows) for rows in generator.static_tables().values())


@lru_cache(maxsize=None)
def steady_state(kind: str):
    generator = TpchGenerator(sf=SF, seed=1992)
    fact_events = generator.n_orders * 4  # approx; prefill most of the stream
    prefill = _dimension_count() + int(fact_events * 0.6)
    return prepare_steady_state(
        kind,
        {"ssb41": SSB_Q41_COMBINED},
        ssb_catalog(),
        _full_stream(),
        prefill=prefill,
        slice_size=SLICE,
    )


SYSTEMS = ["dbtoaster", "dbtoaster_interp", "ivm", "streamops", "reeval"]


@pytest.mark.parametrize("system", SYSTEMS)
def bench_warehouse_bakeoff(benchmark, system):
    state = steady_state(system)
    if state is None:
        pytest.skip(f"{system} cannot express the combined query")

    def setup():
        return (state.fresh_engine(),), {}

    def run_slice(engine):
        state.run_slice(engine)

    benchmark.pedantic(run_slice, setup=setup, rounds=3)
    benchmark.extra_info["events_per_op"] = SLICE


def test_joint_compilation_correctness_at_bench_scale():
    """The measured engine computes the right answer (cross-checked against
    the lazy re-evaluation baseline on the same stream)."""
    from repro.baselines import make_engine

    catalog = ssb_catalog()
    compiled = make_engine("dbtoaster", {"ssb41": SSB_Q41_COMBINED}, catalog)
    reference = make_engine("reeval_lazy", {"ssb41": SSB_Q41_COMBINED}, catalog)
    for event in _full_stream():
        compiled.process(event)
        reference.process(event)
    assert sorted(compiled.results("ssb41")) == sorted(reference.results("ssb41"))
