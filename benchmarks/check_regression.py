"""CI benchmark-regression gate.

Compares the ``BENCH_*.json`` files written by ``bench_batching.py
--json`` / ``bench_sharding.py --json`` / ``bench_serving.py --json``
against the committed ``benchmarks/baseline.json``.  Raw events/sec is meaningless across
hosts, so every metric is first normalised by its run's
:func:`benchmarks.harness.calibration_score` (a fixed synthetic loop
measuring the host's single-thread dict throughput); the gate fails when
any normalised metric drops more than ``--tolerance`` (default 30%)
below its normalised baseline value.

Baselines are refreshed by re-running the benchmarks with ``--json`` and
copying the payloads into ``baseline.json``::

    PYTHONPATH=src python benchmarks/bench_batching.py --smoke --json BENCH_batching.json
    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke --json BENCH_sharding.json
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --json BENCH_serving.json
    PYTHONPATH=src python benchmarks/check_regression.py --update-baseline \
        BENCH_batching.json BENCH_sharding.json BENCH_serving.json

Usage (the CI job)::

    python benchmarks/check_regression.py \
        BENCH_batching.json BENCH_sharding.json BENCH_serving.json

All committed metrics are higher-is-better; latency-shaped measurements
are committed inverted (e.g. the serving bench's ``p99_inv_per_sec``)
with the raw values in the payload's metadata.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"


def load_results(paths: list[str]) -> dict[str, dict]:
    """Read BENCH_*.json payloads, keyed by their ``benchmark`` name."""
    results: dict[str, dict] = {}
    for path in paths:
        payload = json.loads(Path(path).read_text())
        results[payload["benchmark"]] = payload
    return results


def compare(
    baseline: dict[str, dict],
    results: dict[str, dict],
    tolerance: float,
) -> list[str]:
    """All regression/coverage failures, as human-readable lines."""
    failures: list[str] = []
    for benchmark, base in sorted(baseline.items()):
        current = results.get(benchmark)
        if current is None:
            failures.append(f"{benchmark}: no BENCH_*.json produced")
            continue
        base_cal = base["calibration"]
        cur_cal = current["calibration"]
        print(
            f"[{benchmark}] calibration: baseline {base_cal:,.0f} ops/s, "
            f"current {cur_cal:,.0f} ops/s"
        )
        for name, base_value in sorted(base["metrics"].items()):
            cur_value = current["metrics"].get(name)
            if cur_value is None:
                failures.append(f"{benchmark}/{name}: metric disappeared")
                continue
            base_norm = base_value / base_cal
            cur_norm = cur_value / cur_cal
            ratio = cur_norm / base_norm if base_norm else float("inf")
            status = "ok"
            if ratio < 1.0 - tolerance:
                status = "REGRESSION"
                failures.append(
                    f"{benchmark}/{name}: {cur_value:,.0f}/s is "
                    f"{(1.0 - ratio) * 100:.0f}% below baseline "
                    f"(normalised {cur_norm:.3f} vs {base_norm:.3f})"
                )
            print(
                f"  {name:<44} {cur_value:>12,.0f}/s "
                f"({ratio:>5.2f}x of baseline) {status}"
            )
    return failures


def update_baseline(results: dict[str, dict]) -> None:
    BASELINE_PATH.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )
    print(f"updated {BASELINE_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="+", help="BENCH_*.json files")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed normalised-throughput drop (0.30 = 30%%)")
    parser.add_argument("--baseline", default=str(BASELINE_PATH))
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the committed baseline instead of "
                        "checking against it")
    args = parser.parse_args(argv)

    results = load_results(args.results)
    if args.update_baseline:
        update_baseline(results)
        return 0

    baseline = json.loads(Path(args.baseline).read_text())
    failures = compare(baseline, results, args.tolerance)
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
