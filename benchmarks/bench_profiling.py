"""E6 — Figure 4's detailed profiling readouts.

"Detailed profiling of DBToaster's compiled code breaking down its
overheads for each map, the binary size, and finally the compile time
including both the C++ generation and the subsequent compilation to a
native binary" — reproduced as: per-map update counts, generated source
sizes (Python executable + C++ artifact), and the staged compile-time
breakdown (parse/translate, recursive compile, codegen, exec-to-bytecode).
"""

import pytest

from repro.runtime import DeltaEngine
from repro.runtime.profiler import Profiler, profile_compilation
from repro.compiler import compile_sql
from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
from repro.workloads.orderbook import OrderBookGenerator


def test_per_map_overheads(capsys):
    """Per-map update counts over a finance stream (the map cost panel)."""
    catalog = finance_catalog()
    profiler = Profiler()
    program = compile_sql(FINANCE_QUERIES["bsp"], catalog, name="bsp")
    engine = DeltaEngine(program, mode="interpreted", profiler=profiler)
    for event in OrderBookGenerator(seed=5).events(1_500):
        engine.process(event)
    assert profiler.events == 1_500
    assert profiler.map_updates
    print("\n" + profiler.report())


@pytest.mark.parametrize("query", sorted(FINANCE_QUERIES))
def test_compile_report(query, capsys):
    """Compile-time breakdown + code sizes for each finance query."""
    report = profile_compilation(
        FINANCE_QUERIES[query], finance_catalog(), name=query
    )
    assert report.total_seconds < 5
    assert report.python_source_bytes > 0
    print(f"\n== {query} ==\n{report.report()}")


@pytest.mark.parametrize("query", sorted(FINANCE_QUERIES))
def bench_compile_time(benchmark, query):
    """End-to-end compile latency per finance query (Figure 4 panel)."""
    catalog = finance_catalog()
    benchmark(profile_compilation, FINANCE_QUERIES[query], catalog, query)


def bench_trigger_dispatch_overhead(benchmark):
    """Pure dispatch cost: one keyed no-loop trigger on a warm engine."""
    catalog = finance_catalog()
    program = compile_sql(FINANCE_QUERIES["bsp"], catalog, name="bsp")
    engine = DeltaEngine(program)
    for event in OrderBookGenerator(seed=5).events(500):
        engine.process(event)

    def one_update():
        engine.insert("bids", 999_999, 1, 3, 9_999, 10)
        engine.delete("bids", 999_999, 1, 3, 9_999, 10)

    benchmark(one_update)
