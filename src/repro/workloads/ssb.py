"""The warehouse-loading scenario: TPC-H -> SSB transform + SSB Q4.1.

The paper emulates data warehouse loading by converting a TPC-H dataset
into the Star Schema Benchmark's star schema (the "data integration" step)
and evaluating SSB query 4.1 on the result.  The key point is *joint
compilation*: composing the integration query (building ``lineorder`` from
``lineitem``/``orders``) with the aggregation (Q4.1) lets the compiler
maintain the final aggregate directly and never materialise the wide
``lineorder`` intermediate.

``SSB_Q41_COMBINED`` is that composed query over the TPC-H base tables:
SSB's denormalised ``c_nation``/``c_region``/``s_region`` columns become
joins through ``nation``/``region``, ``lo_revenue`` becomes
``l_extendedprice * (100 - l_discount)`` (percent arithmetic kept integral),
``lo_supplycost`` comes from ``partsupp``, and the ``d_year`` grouping joins
the date dimension.  Facts (``orders``, ``lineitem``) stream; dimensions
are static tables loaded up front.
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.events import StreamEvent
from repro.sql.catalog import Catalog
from repro.workloads.tpch import TPCH_DDL, TpchGenerator

#: SSB Q4.1, composed with the TPC-H -> SSB transformation.
#: Original Q4.1:
#:   SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit
#:   FROM date, customer, supplier, part, lineorder
#:   WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
#:     AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
#:     AND c_region = 'AMERICA' AND s_region = 'AMERICA'
#:     AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')
#:   GROUP BY d_year, c_nation
SSB_Q41_COMBINED = """
SELECT d.d_year, n1.n_name, sum(l.l_extendedprice * (100 - l.l_discount) - 100 * ps.ps_supplycost)
FROM lineitem l, orders o, customer c, supplier s, part p, partsupp ps,
     ddate d, nation n1, region r1, nation n2, region r2
WHERE l.l_orderkey = o.o_orderkey
  AND o.o_custkey = c.c_custkey
  AND l.l_suppkey = s.s_suppkey
  AND l.l_partkey = p.p_partkey
  AND ps.ps_partkey = l.l_partkey AND ps.ps_suppkey = l.l_suppkey
  AND o.o_orderdate = d.d_datekey
  AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r1.r_regionkey
  AND s.s_nationkey = n2.n_nationkey AND n2.n_regionkey = r2.r_regionkey
  AND r1.r_name = 'AMERICA' AND r2.r_name = 'AMERICA'
  AND (p.p_mfgr = 'MFGR#1' OR p.p_mfgr = 'MFGR#2')
GROUP BY d.d_year, n1.n_name
"""

#: The materialise-then-aggregate alternative the paper contrasts with:
#: first build the flat lineorder rows (the integration query), then run
#: Q4.1 over them.  ``lineorder`` is what joint compilation avoids storing.
LINEORDER_DDL = """
CREATE STREAM lineorder (
    lo_orderkey INT, lo_custkey INT, lo_partkey INT, lo_suppkey INT,
    lo_orderdate INT, lo_revenue INT, lo_supplycost INT
);
CREATE TABLE dim_customer (dc_custkey INT, dc_nation VARCHAR(25), dc_region VARCHAR(12));
CREATE TABLE dim_supplier (ds_suppkey INT, ds_region VARCHAR(12));
CREATE TABLE dim_part (dp_partkey INT, dp_mfgr VARCHAR(10));
CREATE TABLE dim_date (dd_datekey INT, dd_year INT);
"""

SSB_Q41_OVER_LINEORDER = """
SELECT dd.dd_year, dc.dc_nation, sum(lo.lo_revenue - 100 * lo.lo_supplycost)
FROM lineorder lo, dim_customer dc, dim_supplier ds, dim_part dp, dim_date dd
WHERE lo.lo_custkey = dc.dc_custkey AND lo.lo_suppkey = ds.ds_suppkey
  AND lo.lo_partkey = dp.dp_partkey AND lo.lo_orderdate = dd.dd_datekey
  AND dc.dc_region = 'AMERICA' AND ds.ds_region = 'AMERICA'
  AND (dp.dp_mfgr = 'MFGR#1' OR dp.dp_mfgr = 'MFGR#2')
GROUP BY dd.dd_year, dc.dc_nation
"""


#: The rest of the SSB flight, composed over TPC-H the same way.  Q1.1
#: measures revenue uplift from a discount/quantity band; Q2.1 groups
#: revenue by year and part category for one supplier region; Q3.1 groups
#: revenue by customer/supplier nation within a region and date range.
SSB_Q11_COMBINED = """
SELECT sum(l.l_extendedprice * l.l_discount)
FROM lineitem l, orders o, ddate d
WHERE l.l_orderkey = o.o_orderkey AND o.o_orderdate = d.d_datekey
  AND d.d_year = 1993
  AND l.l_discount BETWEEN 1 AND 3 AND l.l_quantity < 25
"""

SSB_Q21_COMBINED = """
SELECT d.d_year, p.p_category, sum(l.l_extendedprice * (100 - l.l_discount))
FROM lineitem l, orders o, part p, supplier s, ddate d, nation n, region r
WHERE l.l_orderkey = o.o_orderkey
  AND l.l_partkey = p.p_partkey
  AND l.l_suppkey = s.s_suppkey
  AND o.o_orderdate = d.d_datekey
  AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
  AND r.r_name = 'AMERICA' AND p.p_mfgr = 'MFGR#1'
GROUP BY d.d_year, p.p_category
"""

SSB_Q31_COMBINED = """
SELECT n1.n_name, n2.n_name, d.d_year, sum(l.l_extendedprice * (100 - l.l_discount))
FROM lineitem l, orders o, customer c, supplier s, ddate d,
     nation n1, region r1, nation n2, region r2
WHERE l.l_orderkey = o.o_orderkey
  AND o.o_custkey = c.c_custkey
  AND l.l_suppkey = s.s_suppkey
  AND o.o_orderdate = d.d_datekey
  AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r1.r_regionkey
  AND s.s_nationkey = n2.n_nationkey AND n2.n_regionkey = r2.r_regionkey
  AND r1.r_name = 'ASIA' AND r2.r_name = 'ASIA'
  AND d.d_year >= 1992 AND d.d_year <= 1997
GROUP BY n1.n_name, n2.n_name, d.d_year
"""

#: The full SSB flight used by tests and the warehouse example.
SSB_FLIGHT = {
    "q11": SSB_Q11_COMBINED,
    "q21": SSB_Q21_COMBINED,
    "q31": SSB_Q31_COMBINED,
    "q41": SSB_Q41_COMBINED,
}


def ssb_catalog() -> Catalog:
    """TPC-H base schema (facts as streams, dimensions static)."""
    return Catalog.from_script(TPCH_DDL)


def lineorder_catalog() -> Catalog:
    """The star schema used by the materialise-then-aggregate baseline."""
    return Catalog.from_script(LINEORDER_DDL)


def warehouse_stream(generator: TpchGenerator) -> Iterator[StreamEvent]:
    """The OLTP fact feed: orders and lineitems as insert events."""
    for relation, row in generator.orders_and_lineitems():
        yield StreamEvent(relation, 1, row)


def load_static_tables(engine, generator: TpchGenerator) -> int:
    """Bulk-load every dimension table into an engine; returns row count.

    Engines with a batched ``load`` (the delta engine) take each dimension
    as one batch; baselines without it fall back to per-row inserts.
    """
    count = 0
    for relation, rows in generator.static_tables().items():
        if hasattr(engine, "load"):
            count += engine.load(relation, rows)
        else:
            for row in rows:
                engine.insert(relation, *row)
                count += 1
    return count


def star_schema_rows(generator: TpchGenerator):
    """Materialised SSB dimensions for the two-phase baseline."""
    nations = {key: (name, region) for key, name, region in generator.nation()}
    regions = dict(generator.region())
    dim_customer = [
        (custkey, nations[nationkey][0], regions[nations[nationkey][1]])
        for custkey, nationkey, _segment, _bal in generator.customer()
    ]
    dim_supplier = [
        (suppkey, regions[nations[nationkey][1]])
        for suppkey, nationkey, _bal in generator.supplier()
    ]
    dim_part = [(partkey, mfgr) for partkey, mfgr, *_ in generator.part()]
    dim_date = [(datekey, year) for datekey, year, _month in generator.ddate()]
    return {
        "dim_customer": dim_customer,
        "dim_supplier": dim_supplier,
        "dim_part": dim_part,
        "dim_date": dim_date,
    }


def lineorder_rows(generator: TpchGenerator):
    """The flat lineorder fact rows (what joint compilation never stores).

    Supply cost is resolved through partsupp like the combined query; for
    determinism the *first* generated partsupp row per (part, supplier)
    wins (duplicates are possible in the generator, as in TPC-H).
    """
    supplycost: dict[tuple[int, int], int] = {}
    for partkey, suppkey, cost in generator.partsupp():
        supplycost.setdefault((partkey, suppkey), cost)

    orders: dict[int, tuple] = {}
    for relation, row in generator.orders_and_lineitems():
        if relation == "orders":
            orders[row[0]] = row
            continue
        (
            orderkey,
            partkey,
            suppkey,
            _linenumber,
            _quantity,
            extended,
            discount,
            _tax,
            _shipdate,
        ) = row
        order = orders[orderkey]
        cost = supplycost.get((partkey, suppkey))
        if cost is None:
            continue  # lineitem without a partsupp pairing joins to nothing
        yield (
            orderkey,
            order[1],
            partkey,
            suppkey,
            order[2],
            extended * (100 - discount),
            cost,
        )
