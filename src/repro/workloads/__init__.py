"""Workloads: the paper's two demonstration applications.

* :mod:`repro.workloads.orderbook` / :mod:`repro.workloads.finance` — a
  synthetic NASDAQ TotalView-like limit order book feed and the algorithmic
  trading query suite (VWAP, AXF, BSP, PSP, MST);
* :mod:`repro.workloads.tpch` / :mod:`repro.workloads.ssb` — a pure-Python
  scaled TPC-H generator and the Star Schema Benchmark warehouse-loading
  scenario (the TPC-H -> SSB transformation composed with SSB Q4.1).
"""

from repro.workloads.orderbook import OrderBookGenerator, ORDER_BOOK_DDL
from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
from repro.workloads.tpch import TpchGenerator, TPCH_DDL
from repro.workloads.ssb import SSB_Q41_COMBINED, ssb_catalog, warehouse_stream

__all__ = [
    "OrderBookGenerator",
    "ORDER_BOOK_DDL",
    "FINANCE_QUERIES",
    "finance_catalog",
    "TpchGenerator",
    "TPCH_DDL",
    "SSB_Q41_COMBINED",
    "ssb_catalog",
    "warehouse_stream",
]
