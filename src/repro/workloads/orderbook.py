"""Synthetic limit order book stream (NASDAQ TotalView stand-in).

The paper demos on TotalView order book data, which is proprietary; this
generator produces the same *shape* of traffic against the same schema:

* two relations ``bids``/``asks`` receiving high-volume insert/delete
  deltas (new orders, cancellations, modifications = delete+insert);
* prices follow a random walk of the mid price with an exponential-ish
  offset into the book, volumes are small integers;
* traffic is cancellation-heavy (most real order-book messages modify or
  remove standing orders), so the book does **not** grow unboundedly —
  while still being inexpressible as a sliding window, the property the
  paper's data model stresses.

Prices and volumes are integers (price in ticks), keeping all maintained
aggregates exact across engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.runtime.events import StreamEvent
from repro.sql.catalog import Catalog

ORDER_BOOK_DDL = """
CREATE STREAM bids (t INT, id INT, broker_id INT, price INT, volume INT);
CREATE STREAM asks (t INT, id INT, broker_id INT, price INT, volume INT);
"""


def order_book_catalog() -> Catalog:
    return Catalog.from_script(ORDER_BOOK_DDL)


@dataclass
class _Order:
    order_id: int
    broker_id: int
    price: int
    volume: int
    time: int

    def row(self) -> tuple:
        return (self.time, self.order_id, self.broker_id, self.price, self.volume)


class OrderBookGenerator:
    """Deterministic order book event stream.

    ``events(n)`` yields exactly ``n`` StreamEvents.  The action mix is
    configurable; defaults approximate real book traffic: ~45% new orders,
    ~35% cancels, ~20% modifications (a modify emits a delete+insert pair,
    counting as two events).
    """

    def __init__(
        self,
        seed: int = 2009,
        brokers: int = 10,
        start_price: int = 10_000,
        tick: int = 1,
        max_volume: int = 100,
        new_order_weight: float = 0.45,
        cancel_weight: float = 0.35,
        modify_weight: float = 0.20,
    ) -> None:
        self.rng = random.Random(seed)
        self.brokers = brokers
        self.mid_price = start_price
        self.tick = tick
        self.max_volume = max_volume
        self.weights = (new_order_weight, cancel_weight, modify_weight)
        self.time = 0
        self.next_id = 1
        self.live: dict[str, list[_Order]] = {"bids": [], "asks": []}

    # -- internals ---------------------------------------------------------

    def _price_for(self, side: str) -> int:
        # Exponential-ish offset into the book from the mid price.
        offset = self.tick * min(int(self.rng.expovariate(0.3)) + 1, 40)
        return self.mid_price - offset if side == "bids" else self.mid_price + offset

    def _new_order(self, side: str) -> StreamEvent:
        self.time += 1
        order = _Order(
            order_id=self.next_id,
            broker_id=self.rng.randrange(self.brokers),
            price=self._price_for(side),
            volume=self.rng.randint(1, self.max_volume),
            time=self.time,
        )
        self.next_id += 1
        self.live[side].append(order)
        return StreamEvent(side, 1, order.row())

    def _cancel(self, side: str) -> StreamEvent:
        book = self.live[side]
        order = book.pop(self.rng.randrange(len(book)))
        return StreamEvent(side, -1, order.row())

    def _modify(self, side: str) -> tuple[StreamEvent, StreamEvent]:
        book = self.live[side]
        index = self.rng.randrange(len(book))
        order = book[index]
        removal = StreamEvent(side, -1, order.row())
        # Price improvement or size change; keep id, refresh timestamp.
        self.time += 1
        order.time = self.time
        if self.rng.random() < 0.5:
            order.price += self.rng.choice((-self.tick, self.tick))
        else:
            order.volume = self.rng.randint(1, self.max_volume)
        book[index] = order
        return removal, StreamEvent(side, 1, order.row())

    # -- public API ---------------------------------------------------------

    def events(self, n: int) -> Iterator[StreamEvent]:
        """Yield exactly ``n`` events (modifies count as two)."""
        produced = 0
        pending: list[StreamEvent] = []
        new_w, cancel_w, modify_w = self.weights
        while produced < n:
            if pending:
                yield pending.pop(0)
                produced += 1
                continue
            # Random walk of the mid price.
            if self.rng.random() < 0.05:
                self.mid_price += self.rng.choice((-self.tick, self.tick))
            side = self.rng.choice(("bids", "asks"))
            roll = self.rng.random()
            if roll < new_w or not self.live[side]:
                yield self._new_order(side)
                produced += 1
            elif roll < new_w + cancel_w:
                yield self._cancel(side)
                produced += 1
            else:
                removal, reinsert = self._modify(side)
                pending.append(reinsert)
                yield removal
                produced += 1

    def depth(self) -> dict[str, int]:
        """Current number of standing orders per side."""
        return {side: len(book) for side, book in self.live.items()}
