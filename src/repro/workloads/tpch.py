"""A pure-Python, scaled-down TPC-H data generator.

Generates the eight TPC-H relations with full referential integrity and
simplified value distributions, deterministically from a seed.  The scale
factor works like dbgen's: ``sf=1`` would be 150k customers / 6M lineitems;
benchmarks here use ``sf`` in the 0.001-0.01 range.

Dates are integer date keys (``yyyymmdd``); a date dimension suitable for
SSB-style star joins is generated alongside (:func:`date_dimension`).
In the warehouse-loading scenario the fact flow (``orders`` + ``lineitem``)
arrives as a stream while everything else is static, so the DDL declares
them accordingly.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.sql.catalog import Catalog

TPCH_DDL = """
CREATE TABLE region (r_regionkey INT, r_name VARCHAR(12));
CREATE TABLE nation (n_nationkey INT, n_name VARCHAR(25), n_regionkey INT);
CREATE TABLE supplier (s_suppkey INT, s_nationkey INT, s_acctbal FLOAT);
CREATE TABLE customer (c_custkey INT, c_nationkey INT, c_mktsegment VARCHAR(10), c_acctbal FLOAT);
CREATE TABLE part (p_partkey INT, p_mfgr VARCHAR(10), p_brand VARCHAR(10), p_category VARCHAR(10), p_retailprice INT);
CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, ps_supplycost INT);
CREATE TABLE ddate (d_datekey INT, d_year INT, d_month INT);
CREATE STREAM orders (o_orderkey INT, o_custkey INT, o_orderdate INT, o_totalprice INT);
CREATE STREAM lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT, l_linenumber INT, l_quantity INT, l_extendedprice INT, l_discount INT, l_tax INT, l_shipdate INT);
"""

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    # (name, regionkey) — the 25 TPC-H nations.
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
MFGRS = [f"MFGR#{i}" for i in range(1, 6)]
YEARS = list(range(1992, 1999))


def tpch_catalog() -> Catalog:
    return Catalog.from_script(TPCH_DDL)


def date_dimension() -> list[tuple]:
    """The date dimension covering the TPC-H order date range (months)."""
    rows = []
    for year in YEARS:
        for month in range(1, 13):
            for day in (1, 8, 15, 22):
                rows.append((year * 10000 + month * 100 + day, year, month))
    return rows


class TpchGenerator:
    """Deterministic TPC-H tables at a given scale factor."""

    def __init__(self, sf: float = 0.002, seed: int = 1992) -> None:
        self.sf = sf
        self.seed = seed
        self.n_customers = max(3, int(150_000 * sf))
        self.n_suppliers = max(2, int(10_000 * sf))
        self.n_parts = max(4, int(200_000 * sf))
        self.n_orders = max(5, int(1_500_000 * sf))
        self.dates = date_dimension()
        # partsupp pairs are unique and every lineitem references one, so
        # the partsupp join is exactly 1:1 per lineitem in every engine.
        rng = self._rng("partsupp_pairs")
        self._part_suppliers: dict[int, list[int]] = {}
        for part in range(1, self.n_parts + 1):
            k = min(2, self.n_suppliers)
            self._part_suppliers[part] = rng.sample(
                range(1, self.n_suppliers + 1), k
            )

    def _rng(self, table: str) -> random.Random:
        """Each table draws from its own stream, so generation is
        deterministic regardless of which tables are requested or in what
        order (the engines consume them differently)."""
        return random.Random(f"{self.seed}:{table}")

    # -- dimension tables ---------------------------------------------------

    def region(self) -> list[tuple]:
        return [(i, name) for i, name in enumerate(REGIONS)]

    def nation(self) -> list[tuple]:
        return [(i, name, region) for i, (name, region) in enumerate(NATIONS)]

    def supplier(self) -> list[tuple]:
        rng = self._rng("supplier")
        return [
            (
                i + 1,
                rng.randrange(len(NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
            for i in range(self.n_suppliers)
        ]

    def customer(self) -> list[tuple]:
        rng = self._rng("customer")
        return [
            (
                i + 1,
                rng.randrange(len(NATIONS)),
                rng.choice(SEGMENTS),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
            for i in range(self.n_customers)
        ]

    def part(self) -> list[tuple]:
        rng = self._rng("part")
        rows = []
        for i in range(self.n_parts):
            mfgr = rng.choice(MFGRS)
            brand = f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}"
            category = f"{mfgr}#{rng.randint(1, 5)}"
            rows.append((i + 1, mfgr, brand, category, 900 + (i % 200)))
        return rows

    def partsupp(self) -> list[tuple]:
        rng = self._rng("partsupp")
        rows = []
        for part in range(1, self.n_parts + 1):
            for supplier in self._part_suppliers[part]:
                rows.append((part, supplier, rng.randint(100, 1000)))
        return rows

    def ddate(self) -> list[tuple]:
        return list(self.dates)

    # -- fact stream ----------------------------------------------------------

    def orders_and_lineitems(self) -> Iterator[tuple[str, tuple]]:
        """Yield ``("orders", row)`` then its ``("lineitem", row)`` children,
        in arrival order — the warehouse loading stream."""
        rng = self._rng("facts")
        for order_index in range(self.n_orders):
            orderkey = order_index + 1
            custkey = rng.randint(1, self.n_customers)
            datekey = rng.choice(self.dates)[0]
            lines = rng.randint(1, 7)
            total = 0
            line_rows = []
            for line_number in range(1, lines + 1):
                partkey = rng.randint(1, self.n_parts)
                suppkey = rng.choice(self._part_suppliers[partkey])
                quantity = rng.randint(1, 50)
                extended = quantity * (900 + (partkey % 200))
                discount = rng.randint(0, 10)  # percent
                tax = rng.randint(0, 8)
                line_rows.append(
                    (
                        orderkey,
                        partkey,
                        suppkey,
                        line_number,
                        quantity,
                        extended,
                        discount,
                        tax,
                        datekey,
                    )
                )
                total += extended
            yield ("orders", (orderkey, custkey, datekey, total))
            for row in line_rows:
                yield ("lineitem", row)

    def static_tables(self) -> dict[str, list[tuple]]:
        """All non-stream tables, keyed by relation name."""
        return {
            "region": self.region(),
            "nation": self.nation(),
            "supplier": self.supplier(),
            "customer": self.customer(),
            "part": self.part(),
            "partsupp": self.partsupp(),
            "ddate": self.ddate(),
        }
