"""The algorithmic trading query suite (the paper's Section 4 finance app).

Queries follow the DBToaster finance benchmark family:

* **vwap** — volume-weighted average price contribution of large bids: a
  nested aggregate compares each bid's volume against a fraction of total
  bid volume (the paper's VWAP/SOBI building block; stream engines cannot
  express it, see :class:`repro.baselines.streamops.UnsupportedQueryError`);
* **axf** (AXFinder) — per-broker imbalance between asks and bids within a
  price band;
* **bsp** (BrokerSpread) — per-broker exposure spread between its standing
  asks and bids (the market-maker detection query: market makers quote both
  sides);
* **psp** (PriceSpread) — aggregate bid/ask notional spread over the cross
  product of the books (maps keep this O(1) per event; any engine that
  joins explicitly pays O(n) or worse);
* **mst** (MissedTrades) — volume of bids that cross the book (a correlated
  EXISTS against the ask side);
* **bbo** (BestBidOffer) — per-broker best bid and worst offer (non-linear
  MIN/MAX aggregates, maintained through the Finalize auxiliary caches
  with re-derivation on extremum deletes);
* **act** (ActiveBrokers) — how many distinct brokers currently quote each
  price level on the bid side (COUNT(DISTINCT ...), a 0<->nonzero
  multiplicity-crossing aggregate).
"""

from __future__ import annotations

from repro.sql.catalog import Catalog
from repro.workloads.orderbook import ORDER_BOOK_DDL

FINANCE_QUERIES: dict[str, str] = {
    "vwap": (
        "SELECT sum(b.price * b.volume) FROM bids b "
        "WHERE b.volume > 0.25 * (SELECT sum(b1.volume) FROM bids b1)"
    ),
    "axf": (
        "SELECT b.broker_id, sum(a.volume) - sum(b.volume) "
        "FROM bids b, asks a "
        "WHERE b.broker_id = a.broker_id "
        "AND a.price - b.price < 1000 AND b.price - a.price < 1000 "
        "GROUP BY b.broker_id"
    ),
    "bsp": (
        "SELECT b.broker_id, sum(a.price * a.volume) - sum(b.price * b.volume) "
        "FROM bids b, asks a WHERE b.broker_id = a.broker_id "
        "GROUP BY b.broker_id"
    ),
    "psp": (
        "SELECT sum(a.price - b.price) FROM bids b, asks a"
    ),
    "mst": (
        "SELECT sum(b.volume) FROM bids b WHERE EXISTS "
        "(SELECT a.id FROM asks a WHERE a.price <= b.price)"
    ),
    "bbo": (
        "SELECT b.broker_id, max(b.price), min(a.price) "
        "FROM bids b, asks a WHERE b.broker_id = a.broker_id "
        "GROUP BY b.broker_id"
    ),
    "act": (
        "SELECT b.price, count(DISTINCT b.broker_id) FROM bids b "
        "GROUP BY b.price"
    ),
}

#: The non-linear members (MIN/MAX and DISTINCT aggregates): maintained
#: through Finalize auxiliary caches rather than closed-form ring deltas.
NONLINEAR_FINANCE = ("bbo", "act")

#: Queries expressible by the stream-operator baseline (no nesting).
STREAMABLE_FINANCE = ("axf", "bsp", "psp")


def finance_catalog() -> Catalog:
    """The bids/asks catalog shared by all finance queries."""
    return Catalog.from_script(ORDER_BOOK_DDL)
