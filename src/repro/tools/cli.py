"""Standalone mode: a command-line query processor.

The paper's runtime "may be used as a standalone query processor accepting
input over a network interface or archived stream".  The CLI covers the
archived-stream path:

* ``compile``  — show the compilation trace / IR / generated code;
* ``run``      — maintain queries over a CSV event stream, print results;
* ``serve``    — the network interface: a reactive view-subscription
  server (:mod:`repro.runtime.serving`) — clients subscribe to the
  standing query and receive incremental result deltas as events arrive;
* ``recover``  — rebuild engine state from a durable directory and print
  the recovered results;
* ``bench``    — quick throughput measurement on a built-in workload.

Usage examples::

    python -m repro.tools.cli compile --ddl schema.sql --query "SELECT ..."
    python -m repro.tools.cli compile --schema "CREATE ..." \
        --query "SELECT ..." --dump-ir
    python -m repro.tools.cli run --ddl schema.sql --query "SELECT ..." \
        --stream events.csv --every 1000
    python -m repro.tools.cli run --ddl schema.sql --query "SELECT ..." \
        --stream events.csv --durable state/ --fsync batch \
        --snapshot-every 100000
    python -m repro.tools.cli serve --ddl schema.sql --query "SELECT ..." \
        --port 8765 --backpressure coalesce
    python -m repro.tools.cli serve --ddl schema.sql --query "SELECT ..." \
        --stream events.csv --oneshot
    python -m repro.tools.cli recover --ddl schema.sql --query "SELECT ..." \
        --durable state/
    python -m repro.tools.cli bench --workload finance --events 20000
    python -m repro.tools.cli bench --workload finance --query bsp \
        --events 50000 --shards 4

``--durable DIR`` (run) makes processing crash-durable: every batch is
appended to an LSN-stamped write-ahead log in DIR before it is applied
(:mod:`repro.runtime.durability`), with optional periodic snapshots
(``--snapshot-every N``) bounding the suffix a restart replays.  Running
again with the same DIR *resumes*: the engine recovers the logged state
first, then continues with the new stream.  ``recover`` performs just the
recovery half — useful after a crash to inspect where the state landed.

``--shards N`` (run/bench) processes the stream on a
:class:`~repro.runtime.engine.ShardedEngine`: batches are hash-routed by
the compiler's partition columns to N parallel lanes, with a serial
fallback when the program is not partitionable.  ``--dump-ir`` prints the
typed imperative IR all back ends share (see :mod:`repro.ir`), including
the per-statement *batch sink* report (direct / buffered / accumulator /
second-order) showing how each trigger absorbs batches and the per-map
storage plan (``columnar[int|float|object]`` / ``dict``, see
:mod:`repro.compiler.storage`); ``--no-opt`` disables the optimisation
pipeline (compile, run and bench); ``--no-columnar`` (run/bench) keeps
every maintained map in plain dict storage — the memory-vs-CPU storage
ablation (`benchmarks/bench_memory.py` measures it).
"""

from __future__ import annotations

import argparse
import itertools
import sys
import time
from pathlib import Path

from repro.codegen.cppgen import generate_cpp
from repro.codegen.pygen import generate_module
from repro.compiler import analyze_partitioning, analyze_storage, compile_sql
from repro.runtime import DeltaEngine, ShardedEngine
from repro.runtime.sources import csv_source
from repro.sql.catalog import Catalog
from repro.tools.trace import compilation_table, ir_summary, recursion_summary


def _resolve_mode(args) -> str:
    """Map ``--mode`` plus ``--native`` onto the engine's executor mode."""
    mode = getattr(args, "mode", "compiled")
    if getattr(args, "native", False):
        if mode == "interpreted":
            raise SystemExit(
                "--native compiles triggers; it cannot combine with "
                "--mode interpreted"
            )
        if getattr(args, "no_columnar", False):
            raise SystemExit(
                "--native probes columnar storage; it cannot combine "
                "with --no-columnar"
            )
        return "native"
    return mode


def _native_banner(engine) -> None:
    """One status line saying whether the C kernel actually loaded."""
    note = getattr(engine, "native_note", None)
    if note is None:
        return
    state = "active" if getattr(engine, "native_active", False) else "fallback"
    print(f"-- native kernel {state}: {note} --")


def _make_engine(program, args):
    """A DeltaEngine, or a ShardedEngine when ``--shards N`` (N > 1) asks
    for hash-partitioned parallel lanes (worker processes where ``fork``
    is available; non-partitionable programs fall back to serial).  With
    ``--durable DIR`` the engine is wrapped in a
    :class:`~repro.runtime.durability.DurableEngine` (recovering whatever
    state DIR already holds).  ``--native`` selects the C column-kernel
    executor lane (gracefully falling back to pure Python when no
    toolchain exists)."""
    shards = getattr(args, "shards", 1) or 1
    optimize = not getattr(args, "no_opt", False)
    columnar = not getattr(args, "no_columnar", False)
    durable = getattr(args, "durable", None)
    mode = _resolve_mode(args)
    supervise_kwargs = {}
    if shards > 1 and getattr(args, "supervise", False):
        supervise_kwargs = {
            "supervise": True,
            "max_worker_restarts": getattr(args, "max_worker_restarts", 3),
            "restart_window": getattr(args, "restart_window", 60.0),
        }
    if durable:
        from repro.runtime.durability import DurableEngine

        return DurableEngine(
            program, durable, shards=shards, parallel=shards > 1,
            fsync=getattr(args, "fsync", "batch"),
            snapshot_every=getattr(args, "snapshot_every", None),
            mode=mode, optimize=optimize, columnar=columnar,
            **supervise_kwargs,
        )
    if shards > 1:
        return ShardedEngine(
            program, shards=shards, mode=mode, parallel=True,
            optimize=optimize, columnar=columnar, **supervise_kwargs,
        )
    return DeltaEngine(
        program, mode=mode, optimize=optimize, columnar=columnar
    )


def _load_catalog(args) -> Catalog:
    if args.ddl:
        return Catalog.from_script(Path(args.ddl).read_text())
    if args.schema:
        return Catalog.from_script(args.schema)
    raise SystemExit("either --ddl FILE or --schema 'CREATE ...' is required")


def cmd_compile(args) -> int:
    from repro.runtime.durability import program_fingerprint

    catalog = _load_catalog(args)
    program = compile_sql(args.query, catalog, name="q")
    optimize = not args.no_opt
    print(program.describe())
    # The durable-directory stamp: recovery only accepts a WAL written by
    # a program with this fingerprint.
    print(f"durability fingerprint: {program_fingerprint(program)}\n")
    print(analyze_partitioning(program).describe())
    print(analyze_storage(program).describe())
    from repro.codegen.native import describe_native

    print(describe_native(program))
    print()
    print(ir_summary(program, optimize=optimize))
    print()
    print("== Figure 2 trace ==\n")
    print(compilation_table(program))
    print("\nmaps per recursion level:", recursion_summary(program))
    if args.dump_ir:
        from repro.ir import lower_program, program_str

        print("\n== trigger IR ==\n")
        print(program_str(lower_program(program, optimize=optimize)))
    if args.emit == "python":
        print("\n" + generate_module(program, optimize=optimize))
    elif args.emit == "cpp":
        print("\n" + generate_cpp(program, optimize=optimize))
    return 0


def cmd_run(args) -> int:
    from repro.runtime.durability import DurableEngine

    catalog = _load_catalog(args)
    program = compile_sql(args.query, catalog, name="q")
    engine = _make_engine(program, args)
    _native_banner(engine)
    if isinstance(engine, DurableEngine) and engine.lsn:
        print(f"-- resumed durable state at LSN {engine.lsn} "
              f"({engine.events_processed} events) --")
    count = 0
    start = time.perf_counter()
    # Events flow through the batched stream path (chunked at --every so
    # intermediate results can print); per-event dispatch would forfeit
    # batching and, with --shards, pay one worker round-trip per event.
    source = csv_source(args.stream, catalog)
    chunk_size = args.every or None
    while True:
        chunk = list(itertools.islice(source, chunk_size)) if chunk_size else None
        consumed = engine.process_stream(chunk if chunk is not None else source)
        count += consumed
        if isinstance(engine, (ShardedEngine, DurableEngine)):
            engine.sync()
        if chunk_size and consumed:
            print(f"-- after {count} events --")
            for row in engine.results("q"):
                print("  ", row)
        if not chunk_size or consumed < chunk_size:
            break
    elapsed = time.perf_counter() - start
    print(f"== final result ({count} events, "
          f"{count / elapsed if elapsed else 0:,.0f} events/s) ==")
    for row in engine.results("q"):
        print("  ", row)
    if isinstance(engine, DurableEngine):
        engine.snapshot()
        print(f"-- durable state at LSN {engine.lsn} in {engine.directory} --")
        engine.close()
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.runtime.durability import DurableEngine
    from repro.runtime.serving import ViewServer

    catalog = _load_catalog(args)
    program = compile_sql(args.query, catalog, name="q")
    engine = _make_engine(program, args)
    _native_banner(engine)
    if isinstance(engine, DurableEngine) and engine.lsn:
        print(f"-- resumed durable state at LSN {engine.lsn} "
              f"({engine.events_processed} events) --")

    async def _serve() -> None:
        server = ViewServer(
            engine, host=args.host, port=args.port,
            backpressure=args.backpressure, queue_frames=args.queue_frames,
            history_frames=args.history_frames,
            idle_timeout=args.idle_timeout,
        )
        await server.start()
        print(f"-- serving view 'q' on {server.host}:{server.port} "
              f"(backpressure={args.backpressure}) --", flush=True)
        try:
            if args.stream:
                consumed = await server.publish_stream(
                    csv_source(args.stream, catalog)
                )
                print(f"-- streamed {consumed} events from {args.stream}, "
                      f"now at LSN {server.tap.lsn} --", flush=True)
            if not args.oneshot:
                await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\n-- server stopped --")
    print("== final result ==")
    for row in engine.results("q"):
        print("  ", row)
    if isinstance(engine, DurableEngine):
        engine.snapshot()
        print(f"-- durable state at LSN {engine.lsn} in {engine.directory} --")
        engine.close()
    elif isinstance(engine, ShardedEngine):
        engine.close()
    return 0


def cmd_recover(args) -> int:
    from repro.runtime.durability import recover_engine

    catalog = _load_catalog(args)
    program = compile_sql(args.query, catalog, name="q")
    shards = getattr(args, "shards", 1) or 1
    engine, lsn = recover_engine(program, args.durable, shards=shards)
    print(f"== recovered {args.durable} at LSN {lsn} "
          f"({engine.events_processed} events) ==")
    for row in engine.results("q"):
        print("  ", row)
    if shards > 1:
        engine.close()
    return 0


def _batch_kwargs(args) -> dict:
    """Pass --batch-size through only when given (engine default otherwise)."""
    if args.batch_size is None:
        return {}
    return {"batch_size": args.batch_size}


def cmd_bench(args) -> int:
    if args.workload == "finance":
        from repro.workloads.finance import FINANCE_QUERIES, finance_catalog
        from repro.workloads.orderbook import OrderBookGenerator

        catalog = finance_catalog()
        sql = FINANCE_QUERIES[args.query or "bsp"]
        program = compile_sql(sql, catalog, name="q")
        engine = _make_engine(program, args)
        _native_banner(engine)
        start = time.perf_counter()
        count = engine.process_stream(
            OrderBookGenerator(seed=1).events(args.events), **_batch_kwargs(args)
        )
        if isinstance(engine, ShardedEngine):
            engine.sync()
        elapsed = time.perf_counter() - start
    elif args.workload == "warehouse":
        from repro.workloads.ssb import (
            SSB_Q41_COMBINED,
            load_static_tables,
            ssb_catalog,
            warehouse_stream,
        )
        from repro.workloads.tpch import TpchGenerator

        generator = TpchGenerator(sf=args.events / 7_500_000)
        program = compile_sql(SSB_Q41_COMBINED, ssb_catalog(), name="q")
        engine = _make_engine(program, args)
        _native_banner(engine)
        load_static_tables(engine, generator)
        start = time.perf_counter()
        count = engine.process_stream(
            warehouse_stream(generator), **_batch_kwargs(args)
        )
        if isinstance(engine, ShardedEngine):
            engine.sync()
        elapsed = time.perf_counter() - start
    else:
        raise SystemExit(f"unknown workload {args.workload!r}")
    shards = getattr(args, "shards", 1) or 1
    sharding = f", shards={shards}" if shards > 1 else ""
    print(f"{args.workload}: {count} events in {elapsed:.2f}s "
          f"({count / elapsed:,.0f} events/s, mode={_resolve_mode(args)}"
          f"{sharding})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DBToaster-repro standalone query processor"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--ddl", help="file of CREATE TABLE/STREAM statements")
        p.add_argument("--schema", help="inline DDL string")
        p.add_argument("--query", required=True, help="the standing SQL query")

    def _supervisor_args(p):
        p.add_argument("--supervise", action="store_true",
                       help="with --shards N > 1, respawn and rebuild dead "
                       "worker processes instead of failing the stream")
        p.add_argument("--max-worker-restarts", type=int, default=3,
                       metavar="N",
                       help="supervisor restart budget per window "
                       "(default: 3)")
        p.add_argument("--restart-window", type=float, default=60.0,
                       metavar="SECONDS",
                       help="sliding window the restart budget covers "
                       "(default: 60)")

    p_compile = sub.add_parser("compile", help="show compilation artifacts")
    common(p_compile)
    p_compile.add_argument(
        "--emit", choices=["none", "python", "cpp"], default="none",
        help="also print generated code",
    )
    p_compile.add_argument(
        "--dump-ir", action="store_true",
        help="print the typed imperative trigger IR",
    )
    p_compile.add_argument(
        "--no-opt", action="store_true",
        help="disable the IR optimisation pipeline",
    )
    p_compile.set_defaults(func=cmd_compile)

    p_run = sub.add_parser("run", help="process an archived CSV stream")
    common(p_run)
    p_run.add_argument("--stream", required=True, help="CSV event file")
    p_run.add_argument("--every", type=int, default=0,
                       help="print results every N events")
    p_run.add_argument("--mode", choices=["compiled", "interpreted"],
                       default="compiled")
    p_run.add_argument("--shards", type=int, default=1,
                       help="hash-partitioned parallel shard lanes "
                       "(1 = single engine)")
    p_run.add_argument("--no-opt", action="store_true",
                       help="disable the IR optimisation pipeline")
    p_run.add_argument("--native", dest="native", action="store_true",
                       help="run triggers on the compiled C column kernel "
                            "(falls back to pure Python without a toolchain)")
    p_run.add_argument("--no-native", dest="native", action="store_false",
                       help="stay on the pure-Python lanes (default)")
    p_run.set_defaults(native=False)
    p_run.add_argument("--no-columnar", action="store_true",
                       help="keep every maintained map in plain dict "
                       "storage (the storage ablation)")
    p_run.add_argument("--durable", metavar="DIR",
                       help="crash-durable processing: write-ahead log + "
                       "snapshots in DIR (resumes existing state)")
    p_run.add_argument("--fsync", choices=["always", "batch", "none"],
                       default="batch",
                       help="WAL fsync policy with --durable "
                       "(default: batch)")
    p_run.add_argument("--snapshot-every", type=int, default=None,
                       metavar="N",
                       help="with --durable, checkpoint every N events "
                       "(bounds the WAL suffix a restart replays)")
    _supervisor_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_serve = sub.add_parser(
        "serve", help="reactive view-subscription server (push deltas)"
    )
    common(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="listen address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port (0 = pick a free port)")
    p_serve.add_argument("--backpressure",
                         choices=["block", "drop", "coalesce"],
                         default="block",
                         help="slow-subscriber policy (default: block)")
    p_serve.add_argument("--queue-frames", type=int, default=256,
                         help="per-subscriber send-queue bound in frames")
    p_serve.add_argument("--stream", help="CSV event file to stream through "
                         "the server before (or instead of) live traffic")
    p_serve.add_argument("--oneshot", action="store_true",
                         help="exit after streaming --stream instead of "
                         "serving forever")
    p_serve.add_argument("--mode", choices=["compiled", "interpreted"],
                         default="compiled")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="hash-partitioned parallel shard lanes "
                         "(1 = single engine)")
    p_serve.add_argument("--no-opt", action="store_true",
                         help="disable the IR optimisation pipeline")
    p_serve.add_argument("--native", dest="native", action="store_true",
                         help="run triggers on the compiled C column kernel")
    p_serve.add_argument("--no-native", dest="native", action="store_false",
                         help="stay on the pure-Python lanes (default)")
    p_serve.set_defaults(native=False)
    p_serve.add_argument("--no-columnar", action="store_true",
                         help="keep every maintained map in plain dict "
                         "storage")
    p_serve.add_argument("--durable", metavar="DIR",
                         help="serve over a crash-durable engine: WAL + "
                         "snapshots in DIR; delivered LSNs are the WAL's")
    p_serve.add_argument("--fsync", choices=["always", "batch", "none"],
                         default="batch",
                         help="WAL fsync policy with --durable")
    p_serve.add_argument("--snapshot-every", type=int, default=None,
                         metavar="N",
                         help="with --durable, checkpoint every N events")
    p_serve.add_argument("--history-frames", type=int, default=1024,
                         metavar="N",
                         help="per-view delta history retained for "
                         "resume-from-LSN reconnects (0 disables the "
                         "in-memory ring; default: 1024)")
    p_serve.add_argument("--idle-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="evict subscribers that neither read nor "
                         "ping within this window (default: off)")
    _supervisor_args(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_recover = sub.add_parser(
        "recover", help="rebuild engine state from a durable directory"
    )
    common(p_recover)
    p_recover.add_argument("--durable", metavar="DIR", required=True,
                           help="the directory --durable wrote")
    p_recover.add_argument("--shards", type=int, default=1,
                           help="recover into N hash-partitioned shard "
                           "lanes (1 = single engine)")
    p_recover.set_defaults(func=cmd_recover)

    p_bench = sub.add_parser("bench", help="built-in workload throughput")
    p_bench.add_argument("--workload", choices=["finance", "warehouse"],
                         default="finance")
    p_bench.add_argument("--query", help="finance query name (vwap/axf/...)")
    p_bench.add_argument("--events", type=int, default=20_000)
    p_bench.add_argument("--mode", choices=["compiled", "interpreted"],
                         default="compiled")
    p_bench.add_argument("--batch-size", type=int, default=None,
                         help="cap rows per dispatched batch "
                         "(default: the engine's bounded default)")
    p_bench.add_argument("--shards", type=int, default=1,
                         help="hash-partitioned parallel shard lanes "
                         "(1 = single engine)")
    p_bench.add_argument("--no-opt", action="store_true",
                         help="disable the IR optimisation pipeline")
    p_bench.add_argument("--native", dest="native", action="store_true",
                         help="run triggers on the compiled C column kernel")
    p_bench.add_argument("--no-native", dest="native", action="store_false",
                         help="stay on the pure-Python lanes (default)")
    p_bench.set_defaults(native=False)
    p_bench.add_argument("--no-columnar", action="store_true",
                         help="keep every maintained map in plain dict "
                         "storage (the storage ablation)")
    _supervisor_args(p_bench)
    p_bench.set_defaults(func=cmd_bench)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
