"""The compilation trace, rendered in the format of the paper's Figure 2.

Figure 2 tabulates the recursive compilation: for each recursion level and
event, the query being compiled, the procedural code for its delta, the
maps the code uses, and the definitions of those maps.  This module derives
the same table from a compiled program.
"""

from __future__ import annotations

from repro.compiler.program import CompiledProgram


def _sign_symbol(sign: int) -> str:
    return "+" if sign == 1 else "-"


def _short(text: str, width: int) -> str:
    return text if len(text) <= width else text[: width - 1] + "…"


def compilation_rows(program: CompiledProgram) -> list[dict]:
    """One row per (maintained map, event, statement), Figure 2's columns."""
    rows: list[dict] = []
    for (relation, sign), trigger in sorted(
        program.triggers.items(), key=lambda item: (item[0][0], -item[0][1])
    ):
        for statement in trigger.statements:
            target = program.maps[statement.target]
            used = sorted(statement.reads())
            rows.append(
                {
                    "level": target.level + 1,  # Figure 2 levels start at 1
                    "event": f"{_sign_symbol(sign)}{relation}",
                    "query": repr(target.defn),
                    "code": repr(statement),
                    "maps_used": used,
                    "map_definitions": {
                        name: repr(program.maps[name].defn) for name in used
                    },
                }
            )
    rows.sort(key=lambda r: (r["level"], r["event"]))
    return rows


def compilation_table(program: CompiledProgram, width: int = 46) -> str:
    """Render the Figure 2 table as text."""
    rows = compilation_rows(program)
    lines = [
        f"{'lvl':<4}{'event':<11}{'query Q to compile':<{width + 2}}"
        f"{'code for delta-Q':<{width + 2}}maps used (definition)"
    ]
    lines.append("-" * (len(lines[0]) + 24))
    for row in rows:
        used = ", ".join(
            f"{name} := {_short(defn, width)}"
            for name, defn in row["map_definitions"].items()
        ) or "(no maps)"
        lines.append(
            f"{row['level']:<4}{row['event']:<11}"
            f"{_short(row['query'], width):<{width + 2}}"
            f"{_short(row['code'], width):<{width + 2}}"
            f"{used}"
        )
    return "\n".join(lines)


def recursion_summary(program: CompiledProgram) -> dict[int, int]:
    """Maps per recursion level (how deep the compilation went)."""
    summary: dict[int, int] = {}
    for map_def in program.maps.values():
        summary[map_def.level] = summary.get(map_def.level, 0) + 1
    return dict(sorted(summary.items()))


def ir_summary(program: CompiledProgram, optimize: bool = True) -> str:
    """One-line trace of the imperative lowering every back end shares."""
    from repro.ir import ir_stats, lower_program

    ir = lower_program(program, optimize=optimize)
    stats = ir_stats(ir)
    passes = ", ".join(ir.passes) if ir.passes else "disabled"
    sinks: dict[str, int] = {}
    for report in ir.batch_sinks.values():
        for _statement, sink in report:
            sinks[sink] = sinks.get(sink, 0) + 1
    sink_text = ", ".join(f"{n} {s}" for s, n in sorted(sinks.items()))
    return (
        f"IR: {stats['blocks']} statement blocks, {stats['loops']} map loops, "
        f"{stats['hoisted_temps']} hoisted temps across {stats['triggers']} "
        f"triggers (passes: {passes}; batch sinks: {sink_text or 'none'})"
    )


def batch_sink_coverage(
    program: CompiledProgram,
    optimize: bool = True,
    second_order: bool = True,
) -> dict[str, dict[str, int]]:
    """Per-trigger counts of each chosen batch sink.

    The accumulation-coverage report: which triggers absorb batches through
    first-order accumulation (``accumulator``/``direct``), which restate
    order-2 targets (``second-order``), and which fall back to replaying
    the per-event body (``per-row``/``buffered``).
    """
    from repro.ir import lower_program

    ir = lower_program(program, optimize=optimize, second_order=second_order)
    coverage: dict[str, dict[str, int]] = {}
    for key, report in sorted(ir.batch_sinks.items()):
        counts: dict[str, int] = {}
        for _statement, sink in report:
            counts[sink] = counts.get(sink, 0) + 1
        coverage[program.triggers[key].name] = counts
    return coverage
