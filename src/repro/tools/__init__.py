"""Demonstration tooling: the compilation-trace visualiser and the CLI.

These reproduce the demo-facing pieces of the paper: the step-by-step
compilation visualisation (Figure 3, rendered as Figure 2's table) and the
standalone query processor fed by archived streams.
"""

from repro.tools.trace import compilation_table

__all__ = ["compilation_table"]
