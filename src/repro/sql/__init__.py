"""SQL front end: lexer, parser, catalog and binder.

The dialect covers what the paper's compiler accepts: select-project-join
queries over streams/tables with the standard aggregates (``sum``, ``count``,
``avg``, ``min``, ``max``), ``GROUP BY``, arithmetic, boolean predicates,
scalar subqueries, ``EXISTS``/``IN`` subqueries and nested aggregates.  DDL
(``CREATE TABLE`` / ``CREATE STREAM``) populates the catalog that queries
are bound against.
"""

from repro.sql.catalog import Catalog, Column, Relation, SqlType
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_query, parse_script, parse_statement
from repro.sql.binder import bind_query, BoundQuery

__all__ = [
    "Catalog",
    "Column",
    "Relation",
    "SqlType",
    "tokenize",
    "parse_query",
    "parse_script",
    "parse_statement",
    "bind_query",
    "BoundQuery",
]
