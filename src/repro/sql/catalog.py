"""Schema catalog: relations, columns and SQL-to-storage type mapping."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from repro.errors import CatalogError
from repro.sql.ast import CreateRelation


class SqlType(Enum):
    """Storage types.

    ``DATE`` values are stored as integer date keys (``yyyymmdd``), the SSB
    convention, so every type is either numeric or string at runtime.
    """

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        return self in (SqlType.INT, SqlType.FLOAT)


_TYPE_MAP = {
    "INT": SqlType.INT,
    "INTEGER": SqlType.INT,
    "BIGINT": SqlType.INT,
    "DATE": SqlType.INT,
    "FLOAT": SqlType.FLOAT,
    "DOUBLE": SqlType.FLOAT,
    "DECIMAL": SqlType.FLOAT,
    "VARCHAR": SqlType.STRING,
    "CHAR": SqlType.STRING,
    "TEXT": SqlType.STRING,
    "STRING": SqlType.STRING,
}


def sql_type_from_name(type_name: str) -> SqlType:
    try:
        return _TYPE_MAP[type_name.upper()]
    except KeyError:
        raise CatalogError(f"unknown SQL type {type_name!r}") from None


@dataclass(frozen=True)
class Column:
    name: str
    type: SqlType


@dataclass(frozen=True)
class Relation:
    """A base relation: a named schema that is either a stream or a table.

    Both kinds receive insert/delete events at runtime; the distinction is
    informational (tables are bulk-loaded once, streams update continuously).
    """

    name: str
    columns: tuple[Column, ...]
    is_stream: bool = True

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            lowered = col.name.lower()
            if lowered in seen:
                raise CatalogError(
                    f"duplicate column {col.name!r} in relation {self.name!r}"
                )
            seen.add(lowered)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        raise CatalogError(f"relation {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name.lower() == lowered for c in self.columns)


class Catalog:
    """A case-insensitive registry of relations."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.define(relation)

    def define(self, relation: Relation) -> Relation:
        key = relation.name.lower()
        if key in self._relations:
            raise CatalogError(f"relation {relation.name!r} already defined")
        self._relations[key] = relation
        return relation

    def define_from_ddl(self, statement: CreateRelation) -> Relation:
        columns = tuple(
            Column(c.name, sql_type_from_name(c.type_name)) for c in statement.columns
        )
        return self.define(
            Relation(name=statement.name, columns=columns, is_stream=statement.is_stream)
        )

    @classmethod
    def from_script(cls, ddl: str) -> "Catalog":
        """Build a catalog from a script of CREATE statements."""
        from repro.sql.parser import parse_script

        catalog = cls()
        for statement in parse_script(ddl):
            if not isinstance(statement, CreateRelation):
                raise CatalogError("catalog scripts may only contain CREATE statements")
            catalog.define_from_ddl(statement)
        return catalog

    def get(self, name: str) -> Relation:
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)
