"""Hand-written SQL lexer.

Handles identifiers (optionally double-quoted), integer/float literals,
single-quoted string literals (with ``''`` escaping), operators, punctuation,
line comments (``--``) and block comments (``/* ... */``).
"""

from __future__ import annotations

from repro.errors import LexerError
from repro.sql.tokens import KEYWORDS, OPERATORS, Token, TokenType

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``, appending an EOF token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(text)

    def column() -> int:
        return pos - line_start + 1

    while pos < n:
        ch = text[pos]

        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue

        # Comments.
        if text.startswith("--", pos):
            end = text.find("\n", pos)
            pos = n if end == -1 else end
            continue
        if text.startswith("/*", pos):
            end = text.find("*/", pos + 2)
            if end == -1:
                raise LexerError("unterminated block comment", line, column())
            for i in range(pos, end):
                if text[i] == "\n":
                    line += 1
                    line_start = i + 1
            pos = end + 2
            continue

        start_col = column()

        # Numbers (integer or float; a leading dot like ".5" is supported).
        if ch in _DIGITS or (ch == "." and pos + 1 < n and text[pos + 1] in _DIGITS):
            start = pos
            seen_dot = False
            seen_exp = False
            while pos < n:
                c = text[pos]
                if c in _DIGITS:
                    pos += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    pos += 1
                elif c in "eE" and not seen_exp and pos + 1 < n and (
                    text[pos + 1] in _DIGITS
                    or (text[pos + 1] in "+-" and pos + 2 < n and text[pos + 2] in _DIGITS)
                ):
                    seen_exp = True
                    pos += 1
                    if text[pos] in "+-":
                        pos += 1
                else:
                    break
            literal = text[start:pos]
            if seen_dot or seen_exp:
                tokens.append(Token(TokenType.FLOAT, float(literal), line, start_col))
            else:
                tokens.append(Token(TokenType.INTEGER, int(literal), line, start_col))
            continue

        # String literals.
        if ch == "'":
            pos += 1
            chunks: list[str] = []
            while True:
                if pos >= n:
                    raise LexerError("unterminated string literal", line, start_col)
                c = text[pos]
                if c == "'":
                    if pos + 1 < n and text[pos + 1] == "'":
                        chunks.append("'")
                        pos += 2
                        continue
                    pos += 1
                    break
                if c == "\n":
                    raise LexerError("newline in string literal", line, start_col)
                chunks.append(c)
                pos += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), line, start_col))
            continue

        # Quoted identifiers.
        if ch == '"':
            end = text.find('"', pos + 1)
            if end == -1:
                raise LexerError("unterminated quoted identifier", line, start_col)
            tokens.append(
                Token(TokenType.IDENTIFIER, text[pos + 1 : end], line, start_col)
            )
            pos = end + 1
            continue

        # Identifiers and keywords.
        if ch in _IDENT_START:
            start = pos
            while pos < n and text[pos] in _IDENT_CONT:
                pos += 1
            word = text[start:pos]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, line, start_col))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, line, start_col))
            continue

        # Operators and punctuation.
        for op in OPERATORS:
            if text.startswith(op, pos):
                tokens.append(Token(TokenType.OPERATOR, op, line, start_col))
                pos += len(op)
                break
        else:
            if ch == ",":
                tokens.append(Token(TokenType.COMMA, ",", line, start_col))
            elif ch == ".":
                tokens.append(Token(TokenType.DOT, ".", line, start_col))
            elif ch == "(":
                tokens.append(Token(TokenType.LPAREN, "(", line, start_col))
            elif ch == ")":
                tokens.append(Token(TokenType.RPAREN, ")", line, start_col))
            elif ch == ";":
                tokens.append(Token(TokenType.SEMICOLON, ";", line, start_col))
            else:
                raise LexerError(f"unexpected character {ch!r}", line, start_col)
            pos += 1

    tokens.append(Token(TokenType.EOF, None, line, column()))
    return tokens
