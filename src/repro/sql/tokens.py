"""Token definitions for the SQL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    KEYWORD = auto()
    IDENTIFIER = auto()
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()
    OPERATOR = auto()  # + - * / = <> != < <= > >=
    COMMA = auto()
    DOT = auto()
    LPAREN = auto()
    RPAREN = auto()
    SEMICOLON = auto()
    EOF = auto()


#: Reserved words (matched case-insensitively; stored upper-case).
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "AS",
        "AND",
        "OR",
        "NOT",
        "EXISTS",
        "IN",
        "SUM",
        "COUNT",
        "AVG",
        "MIN",
        "MAX",
        "CREATE",
        "TABLE",
        "STREAM",
        "INT",
        "INTEGER",
        "BIGINT",
        "FLOAT",
        "DOUBLE",
        "DECIMAL",
        "VARCHAR",
        "CHAR",
        "TEXT",
        "STRING",
        "DATE",
        "JOIN",
        "INNER",
        "ON",
        "DISTINCT",
        "NULL",
        "TRUE",
        "FALSE",
        "BETWEEN",
        "LIST",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
    }
)

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    value: object
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in words

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
