"""Recursive-descent parser for the supported SQL dialect."""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast import (
    AggregateCall,
    Arith,
    BetweenExpr,
    BoolOp,
    ColumnDef,
    ColumnRef,
    Comparison,
    CreateRelation,
    ExistsExpr,
    InExpr,
    Literal,
    Not,
    ScalarSubquery,
    SelectItem,
    SelectQuery,
    SqlExpr,
    Star,
    Statement,
    TableRef,
    UnaryMinus,
)
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

_AGG_FUNCS = ("SUM", "COUNT", "AVG", "MIN", "MAX")
#: The user-facing supported-aggregate list quoted by every unsupported-
#: aggregate error (satisfying "name the aggregate, list the set").
_SUPPORTED_AGGS = "SUM, COUNT, AVG, MIN, MAX and COUNT(DISTINCT ...)"
_TYPE_KEYWORDS = (
    "INT",
    "INTEGER",
    "BIGINT",
    "FLOAT",
    "DOUBLE",
    "DECIMAL",
    "VARCHAR",
    "CHAR",
    "TEXT",
    "STRING",
    "DATE",
)


def parse_query(text: str) -> SelectQuery:
    """Parse a single SELECT query."""
    statement = parse_statement(text)
    if not isinstance(statement, SelectQuery):
        raise ParseError("expected a SELECT query")
    return statement


def parse_statement(text: str) -> Statement:
    """Parse a single statement (SELECT or CREATE)."""
    statements = parse_script(text)
    if len(statements) != 1:
        raise ParseError(f"expected exactly one statement, found {len(statements)}")
    return statements[0]


def parse_script(text: str) -> list[Statement]:
    """Parse a ``;``-separated sequence of statements."""
    parser = _Parser(tokenize(text))
    return parser.script()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        tok = self._current
        return ParseError(f"{message}, found {tok.value!r}", tok.line, tok.column)

    def _expect(self, token_type: TokenType, what: str) -> Token:
        if self._current.type is not token_type:
            raise self._error(f"expected {what}")
        return self._advance()

    def _expect_keyword(self, *words: str) -> Token:
        if not self._current.is_keyword(*words):
            raise self._error(f"expected {' or '.join(words)}")
        return self._advance()

    def _accept_keyword(self, *words: str) -> bool:
        if self._current.is_keyword(*words):
            self._advance()
            return True
        return False

    def _identifier(self, what: str = "identifier") -> str:
        token = self._expect(TokenType.IDENTIFIER, what)
        return token.value  # type: ignore[return-value]

    # -- grammar ------------------------------------------------------------

    def script(self) -> list[Statement]:
        statements: list[Statement] = []
        while self._current.type is not TokenType.EOF:
            if self._current.type is TokenType.SEMICOLON:
                self._advance()
                continue
            statements.append(self.statement())
        return statements

    def statement(self) -> Statement:
        if self._current.is_keyword("CREATE"):
            return self.create_relation()
        if self._current.is_keyword("SELECT"):
            return self.select_query()
        raise self._error("expected SELECT or CREATE")

    def create_relation(self) -> CreateRelation:
        self._expect_keyword("CREATE")
        kind = self._expect_keyword("TABLE", "STREAM")
        name = self._identifier("relation name")
        self._expect(TokenType.LPAREN, "'('")
        columns = [self.column_def()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            columns.append(self.column_def())
        self._expect(TokenType.RPAREN, "')'")
        return CreateRelation(
            name=name, columns=tuple(columns), is_stream=(kind.value == "STREAM")
        )

    def column_def(self) -> ColumnDef:
        name = self._identifier("column name")
        if not self._current.is_keyword(*_TYPE_KEYWORDS):
            raise self._error("expected a column type")
        type_name = self._advance().value
        # Optional precision/length arguments, e.g. VARCHAR(25), DECIMAL(12,2).
        if self._current.type is TokenType.LPAREN:
            self._advance()
            self._expect(TokenType.INTEGER, "type length")
            if self._current.type is TokenType.COMMA:
                self._advance()
                self._expect(TokenType.INTEGER, "type scale")
            self._expect(TokenType.RPAREN, "')'")
        return ColumnDef(name=name, type_name=str(type_name))

    def select_query(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = [self.select_item()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            items.append(self.select_item())

        self._expect_keyword("FROM")
        tables = [self.table_ref()]
        join_predicates: list[SqlExpr] = []
        while True:
            if self._current.type is TokenType.COMMA:
                self._advance()
                tables.append(self.table_ref())
                continue
            if self._current.is_keyword("INNER", "JOIN"):
                self._accept_keyword("INNER")
                self._expect_keyword("JOIN")
                tables.append(self.table_ref())
                self._expect_keyword("ON")
                join_predicates.append(self.expression())
                continue
            break

        where = None
        if self._accept_keyword("WHERE"):
            where = self.expression()
        if join_predicates:
            conjuncts = list(join_predicates)
            if where is not None:
                conjuncts.append(where)
            where = conjuncts[0] if len(conjuncts) == 1 else BoolOp("AND", tuple(conjuncts))

        group_by: list[ColumnRef] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.column_ref())
            while self._current.type is TokenType.COMMA:
                self._advance()
                group_by.append(self.column_ref())

        if self._current.is_keyword("HAVING"):
            raise self._error("HAVING is not supported")

        return SelectQuery(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            distinct=distinct,
        )

    def select_item(self) -> SelectItem:
        expr = self.expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._identifier("select alias")
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._identifier()
        return SelectItem(expr=expr, alias=alias)

    def table_ref(self) -> TableRef:
        name = self._identifier("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._identifier("table alias")
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._identifier()
        return TableRef(name=name, alias=alias)

    def column_ref(self) -> ColumnRef:
        first = self._identifier("column name")
        if self._current.type is TokenType.DOT:
            self._advance()
            second = self._identifier("column name")
            return ColumnRef(table=first, column=second)
        return ColumnRef(table=None, column=first)

    # -- expressions (precedence: OR < AND < NOT < predicate < + - < * /) ----

    def expression(self) -> SqlExpr:
        return self.or_expr()

    def or_expr(self) -> SqlExpr:
        operands = [self.and_expr()]
        while self._accept_keyword("OR"):
            operands.append(self.and_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("OR", tuple(operands))

    def and_expr(self) -> SqlExpr:
        operands = [self.not_expr()]
        while self._accept_keyword("AND"):
            operands.append(self.not_expr())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("AND", tuple(operands))

    def not_expr(self) -> SqlExpr:
        if self._accept_keyword("NOT"):
            return Not(self.not_expr())
        return self.predicate()

    def predicate(self) -> SqlExpr:
        if self._current.is_keyword("EXISTS"):
            self._advance()
            self._expect(TokenType.LPAREN, "'('")
            query = self.select_query()
            self._expect(TokenType.RPAREN, "')'")
            return ExistsExpr(query)

        left = self.add_expr()

        if self._current.type is TokenType.OPERATOR and self._current.value in (
            "=",
            "<>",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            op = self._advance().value
            right = self.add_expr()
            normalized = "!=" if op == "<>" else op
            return Comparison(str(normalized), left, right)

        if self._current.is_keyword("BETWEEN"):
            self._advance()
            low = self.add_expr()
            self._expect_keyword("AND")
            high = self.add_expr()
            return BetweenExpr(left, low, high)

        negated = False
        if self._current.is_keyword("NOT") and self._peek(1).is_keyword("IN"):
            self._advance()
            negated = True
        if self._current.is_keyword("IN"):
            self._advance()
            self._expect(TokenType.LPAREN, "'('")
            query = self.select_query()
            self._expect(TokenType.RPAREN, "')'")
            membership = InExpr(left, query)
            return Not(membership) if negated else membership

        return left

    def add_expr(self) -> SqlExpr:
        left = self.mul_expr()
        while (
            self._current.type is TokenType.OPERATOR
            and self._current.value in ("+", "-")
        ):
            op = self._advance().value
            right = self.mul_expr()
            left = Arith(str(op), left, right)
        return left

    def mul_expr(self) -> SqlExpr:
        left = self.unary_expr()
        while (
            self._current.type is TokenType.OPERATOR
            and self._current.value in ("*", "/")
        ):
            op = self._advance().value
            right = self.unary_expr()
            left = Arith(str(op), left, right)
        return left

    def unary_expr(self) -> SqlExpr:
        if self._current.type is TokenType.OPERATOR and self._current.value == "-":
            self._advance()
            return UnaryMinus(self.unary_expr())
        if self._current.type is TokenType.OPERATOR and self._current.value == "+":
            self._advance()
            return self.unary_expr()
        return self.primary()

    def primary(self) -> SqlExpr:
        token = self._current

        if token.type in (TokenType.INTEGER, TokenType.FLOAT, TokenType.STRING):
            self._advance()
            return Literal(token.value)  # type: ignore[arg-type]

        if token.is_keyword(*_AGG_FUNCS):
            func = str(self._advance().value)
            self._expect(TokenType.LPAREN, "'('")
            distinct = False
            if (
                self._current.type is TokenType.OPERATOR
                and self._current.value == "*"
            ):
                self._advance()
                argument: SqlExpr = Star()
            else:
                if self._current.is_keyword("DISTINCT"):
                    if func != "COUNT":
                        raise self._error(
                            f"unsupported aggregate {func}(DISTINCT ...); "
                            f"supported aggregates are {_SUPPORTED_AGGS}"
                        )
                    self._advance()
                    distinct = True
                argument = self.expression()
            self._expect(TokenType.RPAREN, "')'")
            return AggregateCall(func=func, argument=argument, distinct=distinct)

        if token.type is TokenType.LPAREN:
            self._advance()
            if self._current.is_keyword("SELECT"):
                query = self.select_query()
                self._expect(TokenType.RPAREN, "')'")
                return ScalarSubquery(query)
            inner = self.expression()
            self._expect(TokenType.RPAREN, "')'")
            return inner

        if token.type is TokenType.IDENTIFIER:
            # Reject unknown function calls here, where the name is still
            # in hand — letting `f(x)` parse as a column reference used to
            # surface much later as a confusing translation error.
            if self._peek(1).type is TokenType.LPAREN:
                raise self._error(
                    f"unsupported aggregate or function "
                    f"{str(token.value).upper()}(...); supported aggregates "
                    f"are {_SUPPORTED_AGGS}"
                )
            return self.column_ref()

        raise self._error("expected an expression")
