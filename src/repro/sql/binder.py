"""Name resolution and semantic validation of parsed queries.

The binder checks a :class:`~repro.sql.ast.SelectQuery` against a
:class:`~repro.sql.catalog.Catalog` and produces a :class:`BoundQuery`:

* every column reference is resolved to (table binding, relation, column),
  walking outward through enclosing query scopes for correlated subqueries;
* expression types are inferred and comparison/arithmetic operands checked;
* select items are classified as group-by columns or aggregate expressions,
  and the standard GROUP BY discipline is enforced.

Resolutions are keyed by node identity (``id``) because the immutable AST
uses structural equality; the translator walks the same node objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import BindError
from repro.sql.ast import (
    AggregateCall,
    Arith,
    BetweenExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    ExistsExpr,
    InExpr,
    Literal,
    Not,
    ScalarSubquery,
    SelectQuery,
    SqlExpr,
    Star,
    UnaryMinus,
)
from repro.sql.catalog import Catalog, Relation, SqlType

_NUMERIC_FUNCS = ("SUM", "AVG")
_ORDERED_FUNCS = ("MIN", "MAX")


@dataclass(frozen=True)
class ColumnResolution:
    """Where a column reference points."""

    binding: str  # the FROM-clause alias (or table name)
    relation: Relation
    column: str  # canonical column name as declared
    type: SqlType
    depth: int  # 0 = current query, 1 = immediately enclosing query, ...


@dataclass
class _Scope:
    query: SelectQuery
    bindings: dict[str, Relation]
    parent: Optional["_Scope"] = None


@dataclass
class SelectItemInfo:
    """Classification of one select item."""

    name: str
    expr: SqlExpr
    is_aggregate: bool
    aggregates: list[AggregateCall] = field(default_factory=list)


@dataclass
class BoundQuery:
    """A validated query plus every annotation the translator needs."""

    query: SelectQuery
    catalog: Catalog
    resolutions: dict[int, ColumnResolution]
    item_info: list[SelectItemInfo]
    group_names: list[str]
    relations_used: set[str]
    subquery_scopes: dict[int, "BoundQuery"] = field(default_factory=dict)

    def resolve(self, node: ColumnRef) -> ColumnResolution:
        try:
            return self.resolutions[id(node)]
        except KeyError:  # pragma: no cover - indicates a binder bug
            raise BindError(f"column {node!r} was never bound") from None


def bind_query(query: SelectQuery, catalog: Catalog) -> BoundQuery:
    """Bind and validate ``query`` against ``catalog``."""
    binder = _Binder(catalog)
    return binder.bind(query, parent=None)


class _Binder:
    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.resolutions: dict[int, ColumnResolution] = {}
        self.relations_used: set[str] = set()

    def bind(self, query: SelectQuery, parent: Optional[_Scope]) -> BoundQuery:
        if query.distinct:
            query = self._desugar_distinct(query)
        scope = self._build_scope(query, parent)

        if query.where is not None:
            where_type = self._type_of(query.where, scope, allow_aggregates=False)
            if where_type is not _BOOL:
                raise BindError("WHERE clause must be a boolean predicate")

        group_names: list[str] = []
        group_keys: set[tuple[str, str]] = set()
        for col in query.group_by:
            resolution = self._resolve_column(col, scope)
            group_names.append(col.column.lower())
            group_keys.add((resolution.binding, resolution.column.lower()))

        item_info: list[SelectItemInfo] = []
        for index, item in enumerate(query.items):
            aggregates = _collect_aggregates(item.expr)
            is_aggregate = bool(aggregates)
            self._type_of(item.expr, scope, allow_aggregates=True)
            if is_aggregate:
                _reject_aggregate_of_aggregate(aggregates)
            else:
                if not isinstance(item.expr, ColumnRef):
                    raise BindError(
                        "non-aggregate select items must be plain group-by "
                        f"columns, got {item.expr!r}"
                    )
                resolution = self.resolutions[id(item.expr)]
                key = (resolution.binding, resolution.column.lower())
                if key not in group_keys:
                    raise BindError(
                        f"select item {item.expr!r} is not in the GROUP BY clause"
                    )
            name = item.alias or _default_item_name(item.expr, index)
            item_info.append(
                SelectItemInfo(
                    name=name,
                    expr=item.expr,
                    is_aggregate=is_aggregate,
                    aggregates=aggregates,
                )
            )

        if not any(info.is_aggregate for info in item_info) and not query.distinct:
            raise BindError(
                "standing queries must compute at least one aggregate "
                "(the paper's data model maintains aggregate views)"
            )

        return BoundQuery(
            query=query,
            catalog=self.catalog,
            resolutions=self.resolutions,
            item_info=item_info,
            group_names=group_names,
            relations_used=set(self.relations_used),
        )

    def _desugar_distinct(self, query: SelectQuery) -> SelectQuery:
        """Rewrite ``SELECT DISTINCT cols`` as ``GROUP BY`` over them.

        Group existence comes from the translator's hidden row-count
        slot, so the grouped plan renders exactly the distinct rows
        (exactly under deletions).  The same ColumnRef node objects serve
        as both select items and group keys — resolutions are keyed by
        node identity, so each resolves once.
        """
        if any(_collect_aggregates(item.expr) for item in query.items):
            raise BindError(
                "SELECT DISTINCT cannot be combined with aggregate select "
                "items; use GROUP BY (or COUNT(DISTINCT ...)) instead"
            )
        if query.group_by:
            raise BindError("SELECT DISTINCT cannot be combined with GROUP BY")
        columns = []
        for item in query.items:
            if not isinstance(item.expr, ColumnRef):
                raise BindError(
                    "SELECT DISTINCT items must be plain columns, got "
                    f"{item.expr!r}"
                )
            columns.append(item.expr)
        return replace(query, group_by=tuple(columns))

    # -- scopes ---------------------------------------------------------

    def _build_scope(self, query: SelectQuery, parent: Optional[_Scope]) -> _Scope:
        bindings: dict[str, Relation] = {}
        for table in query.tables:
            relation = self.catalog.get(table.name)
            binding = table.binding.lower()
            if binding in bindings:
                raise BindError(f"duplicate table binding {table.binding!r}")
            bindings[binding] = relation
            self.relations_used.add(relation.name)
        return _Scope(query=query, bindings=bindings, parent=parent)

    def _resolve_column(self, node: ColumnRef, scope: _Scope) -> ColumnResolution:
        existing = self.resolutions.get(id(node))
        if existing is not None:
            return existing
        depth = 0
        current: Optional[_Scope] = scope
        while current is not None:
            resolution = self._resolve_in_scope(node, current, depth)
            if resolution is not None:
                self.resolutions[id(node)] = resolution
                return resolution
            current = current.parent
            depth += 1
        raise BindError(f"unknown column {node!r}")

    def _resolve_in_scope(
        self, node: ColumnRef, scope: _Scope, depth: int
    ) -> Optional[ColumnResolution]:
        if node.table is not None:
            relation = scope.bindings.get(node.table.lower())
            if relation is None:
                return None
            if not relation.has_column(node.column):
                raise BindError(
                    f"relation {relation.name!r} (bound as {node.table!r}) has "
                    f"no column {node.column!r}"
                )
            column = relation.column(node.column)
            return ColumnResolution(
                binding=node.table.lower(),
                relation=relation,
                column=column.name,
                type=column.type,
                depth=depth,
            )
        matches = [
            (binding, relation)
            for binding, relation in scope.bindings.items()
            if relation.has_column(node.column)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            raise BindError(f"ambiguous column {node.column!r}")
        binding, relation = matches[0]
        column = relation.column(node.column)
        return ColumnResolution(
            binding=binding,
            relation=relation,
            column=column.name,
            type=column.type,
            depth=depth,
        )

    # -- typing -----------------------------------------------------------

    def _type_of(self, expr: SqlExpr, scope: _Scope, allow_aggregates: bool):
        if isinstance(expr, Literal):
            if isinstance(expr.value, str):
                return SqlType.STRING
            if isinstance(expr.value, int):
                return SqlType.INT
            return SqlType.FLOAT

        if isinstance(expr, ColumnRef):
            return self._resolve_column(expr, scope).type

        if isinstance(expr, Star):
            raise BindError("'*' is only valid inside count(*)")

        if isinstance(expr, UnaryMinus):
            operand = self._type_of(expr.operand, scope, allow_aggregates)
            _require_numeric(operand, "unary minus")
            return operand

        if isinstance(expr, Arith):
            left = self._type_of(expr.left, scope, allow_aggregates)
            right = self._type_of(expr.right, scope, allow_aggregates)
            _require_numeric(left, f"'{expr.op}'")
            _require_numeric(right, f"'{expr.op}'")
            if expr.op == "/":
                return SqlType.FLOAT
            if SqlType.FLOAT in (left, right):
                return SqlType.FLOAT
            return SqlType.INT

        if isinstance(expr, Comparison):
            left = self._type_of(expr.left, scope, allow_aggregates=False)
            right = self._type_of(expr.right, scope, allow_aggregates=False)
            if (left is SqlType.STRING) != (right is SqlType.STRING):
                raise BindError(
                    f"cannot compare {left.value} with {right.value} in {expr!r}"
                )
            if expr.op not in ("=", "!=") and left is SqlType.STRING is not right:
                pass  # string ordering comparisons are allowed (both strings)
            return _BOOL

        if isinstance(expr, BetweenExpr):
            operand = self._type_of(expr.operand, scope, allow_aggregates=False)
            low = self._type_of(expr.low, scope, allow_aggregates=False)
            high = self._type_of(expr.high, scope, allow_aggregates=False)
            for t in (operand, low, high):
                if (t is SqlType.STRING) != (operand is SqlType.STRING):
                    raise BindError(f"mixed types in BETWEEN: {expr!r}")
            return _BOOL

        if isinstance(expr, (BoolOp, Not)):
            operands = expr.operands if isinstance(expr, BoolOp) else (expr.operand,)
            for operand in operands:
                if self._type_of(operand, scope, allow_aggregates=False) is not _BOOL:
                    raise BindError(f"expected a boolean operand in {expr!r}")
            return _BOOL

        if isinstance(expr, AggregateCall):
            if not allow_aggregates:
                raise BindError(
                    f"aggregate {expr!r} is only allowed in the SELECT list; "
                    "use a scalar subquery inside predicates"
                )
            if isinstance(expr.argument, Star):
                if expr.func != "COUNT":
                    raise BindError(f"'*' is only valid inside count(*), not {expr.func}")
                return SqlType.INT
            arg_type = self._type_of(expr.argument, scope, allow_aggregates=False)
            if expr.func in _NUMERIC_FUNCS:
                _require_numeric(arg_type, expr.func.lower())
            if expr.func == "COUNT":
                return SqlType.INT
            if expr.func == "AVG" or arg_type is SqlType.FLOAT:
                return SqlType.FLOAT
            return arg_type

        if isinstance(expr, ScalarSubquery):
            bound = self._bind_subquery(expr.query, scope)
            if len(bound.item_info) != 1 or not bound.item_info[0].is_aggregate:
                raise BindError(
                    "scalar subqueries must select exactly one aggregate"
                )
            if bound.query.group_by:
                raise BindError("scalar subqueries must not use GROUP BY")
            return SqlType.FLOAT

        if isinstance(expr, ExistsExpr):
            self._bind_subquery(expr.query, scope, allow_bare=True)
            return _BOOL

        if isinstance(expr, InExpr):
            self._type_of(expr.needle, scope, allow_aggregates=False)
            bound = self._bind_subquery(expr.query, scope, allow_bare=True)
            if len(bound.query.items) != 1:
                raise BindError("IN subqueries must select exactly one column")
            return _BOOL

        raise BindError(f"unsupported expression {type(expr).__name__}")

    def _bind_subquery(
        self, query: SelectQuery, scope: _Scope, allow_bare: bool = False
    ) -> BoundQuery:
        sub_binder = _Binder(self.catalog)
        sub_binder.resolutions = self.resolutions  # shared resolution table
        sub_binder.relations_used = self.relations_used
        if allow_bare:
            bound = sub_binder.bind_bare(query, parent=scope)
        else:
            bound = sub_binder.bind(query, parent=scope)
        return bound

    def bind_bare(self, query: SelectQuery, parent: Optional[_Scope]) -> BoundQuery:
        """Bind a subquery that need not compute aggregates (EXISTS / IN)."""
        scope = self._build_scope(query, parent)
        if query.where is not None:
            if self._type_of(query.where, scope, allow_aggregates=False) is not _BOOL:
                raise BindError("WHERE clause must be a boolean predicate")
        item_info: list[SelectItemInfo] = []
        for index, item in enumerate(query.items):
            if not isinstance(item.expr, (ColumnRef, Literal, Star)):
                self._type_of(item.expr, scope, allow_aggregates=False)
            elif isinstance(item.expr, ColumnRef):
                self._resolve_column(item.expr, scope)
            name = item.alias or _default_item_name(item.expr, index)
            item_info.append(
                SelectItemInfo(name=name, expr=item.expr, is_aggregate=False)
            )
        if query.group_by:
            raise BindError("EXISTS/IN subqueries must not use GROUP BY")
        return BoundQuery(
            query=query,
            catalog=self.catalog,
            resolutions=self.resolutions,
            item_info=item_info,
            group_names=[],
            relations_used=self.relations_used,
        )


class _Bool:
    """Internal marker type for boolean expressions."""

    def __repr__(self) -> str:  # pragma: no cover
        return "BOOL"


_BOOL = _Bool()


def _require_numeric(sql_type, where: str) -> None:
    if not isinstance(sql_type, SqlType) or not sql_type.is_numeric:
        raise BindError(f"{where} requires a numeric operand")


def _collect_aggregates(expr: SqlExpr) -> list[AggregateCall]:
    """Aggregate calls appearing in a select item (not inside subqueries)."""
    found: list[AggregateCall] = []

    def visit(node: SqlExpr) -> None:
        if isinstance(node, AggregateCall):
            found.append(node)
            return  # nested aggregates validated separately
        if isinstance(node, (Arith, Comparison)):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryMinus):
            visit(node.operand)
        elif isinstance(node, BoolOp):
            for operand in node.operands:
                visit(operand)
        elif isinstance(node, Not):
            visit(node.operand)

    visit(expr)
    return found


def _reject_aggregate_of_aggregate(aggregates: list[AggregateCall]) -> None:
    for agg in aggregates:
        inner = _collect_aggregates(agg.argument)
        if inner:
            raise BindError(f"aggregate of aggregate is not supported: {agg!r}")


def _default_item_name(expr: SqlExpr, index: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column.lower()
    if isinstance(expr, AggregateCall):
        return f"{expr.func.lower()}_{index}"
    return f"column_{index}"
