"""Abstract syntax tree for the supported SQL dialect.

Nodes are plain frozen dataclasses; the parser produces them and the binder
annotates/validates them (producing a :class:`repro.sql.binder.BoundQuery`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class SqlExpr:
    """Base class for SQL scalar/boolean expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(SqlExpr):
    value: Union[int, float, str]

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """A possibly qualified column reference (``alias.column`` or ``column``)."""

    table: Optional[str]
    column: str

    def __repr__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Star(SqlExpr):
    """``*`` — only valid inside ``count(*)``."""

    def __repr__(self) -> str:
        return "*"


@dataclass(frozen=True)
class Arith(SqlExpr):
    """Binary arithmetic: ``+ - * /``."""

    op: str
    left: SqlExpr
    right: SqlExpr

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnaryMinus(SqlExpr):
    operand: SqlExpr

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


@dataclass(frozen=True)
class Comparison(SqlExpr):
    """``= <> != < <= > >=`` between two scalar expressions."""

    op: str
    left: SqlExpr
    right: SqlExpr

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class BoolOp(SqlExpr):
    """N-ary AND / OR."""

    op: str  # "AND" | "OR"
    operands: tuple[SqlExpr, ...]

    def __repr__(self) -> str:
        sep = f" {self.op} "
        return "(" + sep.join(repr(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(SqlExpr):
    operand: SqlExpr

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


@dataclass(frozen=True)
class AggregateCall(SqlExpr):
    """``sum/count/avg/min/max`` over an expression (or ``*`` for count).

    ``distinct`` marks ``COUNT(DISTINCT expr)`` — the only aggregate the
    dialect accepts a DISTINCT qualifier on.
    """

    func: str  # upper-case
    argument: SqlExpr
    distinct: bool = False

    def __repr__(self) -> str:
        inner = f"DISTINCT {self.argument!r}" if self.distinct else repr(self.argument)
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class ScalarSubquery(SqlExpr):
    """A parenthesised subquery used as a scalar value."""

    query: "SelectQuery"

    def __repr__(self) -> str:
        return f"({self.query!r})"


@dataclass(frozen=True)
class ExistsExpr(SqlExpr):
    query: "SelectQuery"

    def __repr__(self) -> str:
        return f"EXISTS ({self.query!r})"


@dataclass(frozen=True)
class InExpr(SqlExpr):
    needle: SqlExpr
    query: "SelectQuery"

    def __repr__(self) -> str:
        return f"({self.needle!r} IN ({self.query!r}))"


@dataclass(frozen=True)
class BetweenExpr(SqlExpr):
    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr

    def __repr__(self) -> str:
        return f"({self.operand!r} BETWEEN {self.low!r} AND {self.high!r})"


# --------------------------------------------------------------------------
# Query structure
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause item: relation name plus optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias if self.alias else self.name

    def __repr__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: Optional[str] = None

    def __repr__(self) -> str:
        return f"{self.expr!r} AS {self.alias}" if self.alias else repr(self.expr)


@dataclass(frozen=True)
class SelectQuery:
    """A SELECT [DISTINCT] ... FROM ... [WHERE] [GROUP BY] query."""

    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: Optional[SqlExpr] = None
    group_by: tuple[ColumnRef, ...] = ()
    distinct: bool = False

    def __repr__(self) -> str:
        head = "SELECT DISTINCT " if self.distinct else "SELECT "
        parts = [
            head + ", ".join(repr(i) for i in self.items),
            "FROM " + ", ".join(repr(t) for t in self.tables),
        ]
        if self.where is not None:
            parts.append(f"WHERE {self.where!r}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(repr(g) for g in self.group_by))
        return " ".join(parts)


# --------------------------------------------------------------------------
# DDL
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str  # upper-case SQL type keyword


@dataclass(frozen=True)
class CreateRelation:
    """``CREATE TABLE name (...)`` or ``CREATE STREAM name (...)``."""

    name: str
    columns: tuple[ColumnDef, ...]
    is_stream: bool


Statement = Union[SelectQuery, CreateRelation]
