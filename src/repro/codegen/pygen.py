"""Python trigger-code generation: the IR -> Python renderer.

Each trigger becomes one module-level function whose parameters are the
event values and whose body renders the trigger's imperative IR
(:mod:`repro.ir`) — loops appear only where the lowered statements
iterate map entries (the paper's ``foreach``).  Maps are bound as default
arguments, so the generated code pays no attribute or global lookups on
the hot path.

Every trigger is emitted twice: the per-event function ``on_<kind>_<rel>``
and a *batch* variant ``on_<kind>_<rel>_batch(cols)`` rendered from the
batch IR derived from the same lowering.  The batch variant binds
map/index locals once per call and iterates the *columnar* batch — one
parallel list per event column — binding only the columns its body reads
(unused columns are never touched).  Independent triggers accumulate
whole-batch deltas in locals flushed once (the Z-set batch-delta shape);
self-reading triggers that admit a second-order plan accumulate their
first-order statements and restate the order-2 targets once per batch
(see :func:`repro.ir.lower.plan_second_order`).

Secondary indexes are a back-end concern layered onto the IR here: the
loop access patterns collected from the lowered IR get one index dict per
pattern, maintained inline by every map apply and probed by matching
loops so they touch only matching entries.

The generated source is a readable artifact in its own right (the
``binary-size``/profiling experiments measure it); ``generate_module``
returns it as a string and :class:`CompiledExecutor` ``exec``-compiles it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import CodegenError
from repro.compiler.program import CompiledProgram, Trigger
from repro.ir.lower import collect_patterns_ir, lower_program
from repro.ir.nodes import (
    AddTo,
    AppendTo,
    Assign,
    Accum,
    Block,
    BufferDecl,
    Clear,
    Compare,
    Const,
    Finalize,
    FlushBuffer,
    ForEachMap,
    ForEachRow,
    IfCond,
    IRExpr,
    IRStmt,
    KeyAt,
    LocalMapDecl,
    Lookup,
    MergeInto,
    Name,
    Neg,
    Prod,
    SafeDiv,
    Sum,
    TriggerIR,
    expr_names,
    read_slots,
    used_names,
    walk_stmts,
    written_slots,
)

_CMP_PY = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: Comparison opcodes of the native kernel's fused ``cm_reduce_q`` entry
#: point (see ``codegen/native.py``); keys are IR ``Compare`` ops.
_REDUCE_OPS = {">": 0, ">=": 1, "<": 2, "<=": 3, "=": 4, "!=": 5}
#: Mirror of each comparison when its operands are swapped.
_FLIP_OPS = {">": "<", ">=": "<=", "<": ">", "<=": ">=", "=": "=", "!=": "!="}


class Emitter:
    """An indentation-aware source builder."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0
        self._temp = 0

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def blank(self) -> None:
        self.lines.append("")

    def fresh(self, prefix: str = "t") -> str:
        self._temp += 1
        return f"__{prefix}{self._temp}"

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"

    class _Block:
        def __init__(self, emitter: "Emitter") -> None:
            self.emitter = emitter

        def __enter__(self) -> None:
            self.emitter.indent += 1

        def __exit__(self, *exc) -> None:
            self.emitter.indent -= 1

    def block(self) -> "_Block":
        return Emitter._Block(self)


def map_local(name: str) -> str:
    """The local (default-argument) name a map is bound to."""
    return f"_m_{name}"


def index_name(map_name: str, pattern: tuple[int, ...]) -> str:
    """The INDEXES key / local name for one access pattern of a map."""
    return f"__x_{map_name}_" + "_".join(str(p) for p in pattern)


def collect_patterns(
    program: CompiledProgram, optimize: bool = True, second_order: bool = True
) -> dict[str, set[tuple[int, ...]]]:
    """Access patterns needing secondary indexes, from the lowered IR.

    A pattern is the tuple of key positions bound at a map-loop site; real
    DBToaster calls these the map's *in/out patterns* and maintains one
    index per pattern so loops touch only matching entries.
    """
    ir = lower_program(program, optimize=optimize, second_order=second_order)
    return collect_patterns_ir(
        list(ir.triggers.values()) + list(ir.batch_triggers.values())
    )


def generate_module(
    program: CompiledProgram,
    use_indexes: bool = True,
    optimize: bool = True,
    second_order: bool = True,
    columnar: bool = False,
    native_maps: frozenset = frozenset(),
    native_note: Optional[str] = None,
) -> str:
    """Generate the full trigger module source for a compiled program.

    With ``use_indexes`` (the default, matching production DBToaster),
    maps iterated with partially-bound keys get secondary index
    dictionaries, maintained inline by every writer and used by loops to
    touch only matching entries.  ``optimize=False`` renders the raw
    lowering with the IR pass pipeline disabled (the ablation knob);
    ``second_order=False`` disables the delta-of-delta batch sink (the
    higher-order batching ablation).

    With ``columnar`` the module is rendered for an engine whose maps
    follow the compiler's storage plan: applies to columnar maps go
    through their single-probe ``add()`` update instead of the dict
    ``get``/``pop``/set sequence (halving hash/probe work per write).
    The default renders storage-agnostic code that works on any mapping.

    ``native_maps`` (the native lane, see ``codegen/native.py``) names
    columnar maps whose unfiltered-by-index full scans render as fused
    column zips over ``scan_columns`` instead of ``items()`` — skipping
    per-entry key-tuple construction.  ``scan_columns`` is part of the
    ColumnarMap API (pure, spilled, or kernel-attached), so the
    rendering is valid whether or not the C kernel loaded;
    ``native_note`` stamps the toolchain decision into the header.
    """
    from repro.compiler.partition import analyze_partitioning
    from repro.compiler.storage import analyze_storage

    ir = lower_program(program, optimize=optimize, second_order=second_order)
    indexes = (
        collect_patterns(program, optimize=optimize, second_order=second_order)
        if use_indexes
        else {}
    )
    plan = analyze_storage(program)
    columnar_maps = (
        frozenset(plan.columnar_maps) if columnar else frozenset()
    )
    native_scan_maps = frozenset(native_maps) & columnar_maps
    # Maps whose values the ring fixpoints prove always-int (columnar and
    # scalar alike): the fused C reduction only fires when the scanned map
    # and every appended-to target are in this set, so collapsing a
    # per-entry delta stream into one summed delta is exact arithmetic.
    int_value_maps = frozenset(
        name
        for name, storage in plan.maps.items()
        if storage.value_class == "int"
    )
    emitter = Emitter()
    emitter.line('"""Generated delta-processing triggers (do not edit).')
    emitter.line("")
    emitter.line("Produced by repro.codegen.pygen from the trigger IR")
    emitter.line("(repro.ir); maps (and secondary indexes) are bound as")
    emitter.line("default arguments at exec time.  Each trigger has a")
    emitter.line("per-event function and a *_batch variant applying a")
    emitter.line("whole columnar batch (one parallel list per event")
    emitter.line("column) per call.")
    emitter.line("")
    passes = ", ".join(ir.passes) if ir.passes else "disabled"
    emitter.line(f"IR optimisation passes: {passes}.")
    emitter.line("")
    # Shard-routing metadata: which event column each relation's batches
    # may be hash-partitioned on (see repro.compiler.partition); stamped
    # here so the generated artifact documents its own parallelism.
    for line in analyze_partitioning(program).describe().splitlines():
        emitter.line(line)
    emitter.line("")
    # Storage plan: how the engine lays each map out in memory (packed
    # columnar vs dict, see repro.compiler.storage); with columnar=False
    # the rendered code is storage-agnostic (mapping protocol only),
    # otherwise columnar applies use the single-probe add() update.
    for line in plan.describe().splitlines():
        emitter.line(line)
    if native_scan_maps:
        rendered_for = (
            "columnar storage (add() applies; fused column scans: "
            + ", ".join(sorted(native_scan_maps))
            + ")"
        )
    elif columnar_maps:
        rendered_for = "columnar storage (add() applies)"
    else:
        rendered_for = "storage-agnostic (mapping protocol)"
    emitter.line("rendered for: " + rendered_for)
    if native_note is not None:
        emitter.line(f"native kernel: {native_note}")
    emitter.line('"""')
    emitter.blank()
    emitter.line("def _div(n, d):")
    with emitter.block():
        emitter.line("return 0 if d == 0 else n / d")
    emitter.blank()
    if indexes:
        _generate_index_rebuild(indexes, emitter)
        emitter.blank()
    for key in sorted(program.triggers, key=lambda k: (k[0], -k[1])):
        trigger = program.triggers[key]
        _generate_trigger(
            trigger,
            ir.triggers[key],
            ir.batch_triggers[key],
            emitter,
            indexes,
            columnar_maps,
            native_scan_maps,
            int_value_maps,
        )
        emitter.blank()
    return emitter.source()


def _generate_index_rebuild(
    indexes: dict[str, set[tuple[int, ...]]], emitter: Emitter
) -> None:
    """Reconstruct every index from its base map, in place."""
    emitter.line("def _rebuild_indexes():")
    with emitter.block():
        for map_name in sorted(indexes):
            for pattern in sorted(indexes[map_name]):
                local = index_name(map_name, pattern)
                emitter.line(f"__idx = INDEXES[{local!r}]")
                emitter.line("__idx.clear()")
                emitter.line(f"for __key, __val in MAPS[{map_name!r}].items():")
                with emitter.block():
                    subkey = (
                        f"(__key[{pattern[0]}],)"
                        if len(pattern) == 1
                        else "(" + ", ".join(f"__key[{p}]" for p in pattern) + ")"
                    )
                    emitter.line(
                        f"__idx.setdefault({subkey}, {{}})[__key] = __val"
                    )


def _global_maps_used(*bodies) -> list[str]:
    names: set[str] = set()
    for body in bodies:
        for slot in read_slots(body) | written_slots(body):
            if not slot.local:
                names.add(slot.name)
        for stmt in walk_stmts(body):
            if isinstance(stmt, AppendTo) and stmt.target.name:
                names.add(stmt.target.name)
    return sorted(names)


def _generate_trigger(
    trigger: Trigger,
    per_event: TriggerIR,
    batch: TriggerIR,
    emitter: Emitter,
    indexes: Optional[dict[str, set[tuple[int, ...]]]] = None,
    columnar_maps: frozenset[str] = frozenset(),
    native_maps: frozenset[str] = frozenset(),
    int_value_maps: frozenset[str] = frozenset(),
) -> None:
    indexes = indexes or {}
    maps_used = _global_maps_used(per_event.body, batch.body)
    params = list(trigger.params)
    defaults = [f"{map_local(name)}=MAPS[{name!r}]" for name in maps_used]
    for name in maps_used:
        for pattern in sorted(indexes.get(name, ())):
            local = index_name(name, pattern)
            defaults.append(f"{local}=INDEXES[{local!r}]")
    renderer = _PyRenderer(
        emitter, indexes, columnar_maps, native_maps, int_value_maps
    )
    signature = ", ".join(params + defaults)
    emitter.line(f"def {trigger.name}({signature}):")
    with emitter.block():
        if not per_event.body:
            emitter.line("pass")
        else:
            renderer.render_body(per_event.body)
    emitter.blank()
    batch_signature = ", ".join(["__cols"] + defaults)
    emitter.line(f"def {trigger.name}_batch({batch_signature}):")
    with emitter.block():
        if not batch.body:
            emitter.line("pass")
        else:
            renderer.render_body(batch.body)


class _PyRenderer:
    """Renders IR statements to Python source lines.

    ``columnar_maps`` names the maps the binding engine stores in
    :class:`~repro.runtime.storage.ColumnarMap` columns — their applies
    render as the storage's single-probe ``add()``.  ``native_maps``
    additionally renders their full-map scans as fused column zips
    (``scan_columns``) when the loop never materialises the key tuple.
    """

    def __init__(
        self,
        emitter: Emitter,
        indexes: dict[str, set[tuple[int, ...]]],
        columnar_maps: frozenset[str] = frozenset(),
        native_maps: frozenset[str] = frozenset(),
        int_value_maps: frozenset[str] = frozenset(),
    ) -> None:
        self.emitter = emitter
        self.indexes = indexes
        self.columnar_maps = columnar_maps
        self.native_maps = native_maps
        self.int_value_maps = int_value_maps

    # -- statements --------------------------------------------------------

    def render_body(self, stmts: Sequence[IRStmt]) -> None:
        for stmt in stmts:
            self.render_stmt(stmt)

    def render_stmt(self, stmt: IRStmt) -> None:
        emitter = self.emitter
        if isinstance(stmt, Block):
            for comment in stmt.comments:
                emitter.line(f"# {comment}")
            self.render_body(stmt.stmts)
            return
        if isinstance(stmt, Assign):
            emitter.line(f"{stmt.name} = {self.expr(stmt.value)}")
            return
        if isinstance(stmt, Accum):
            emitter.line(f"{stmt.name} += {self.expr(stmt.value)}")
            return
        if isinstance(stmt, IfCond):
            emitter.line(f"if {self.cond(stmt.cond)}:")
            with emitter.block():
                self.render_body(stmt.body)
            return
        if isinstance(stmt, ForEachMap):
            self._render_map_loop(stmt)
            return
        if isinstance(stmt, ForEachRow):
            self._render_row_loop(stmt)
            return
        if isinstance(stmt, AddTo):
            self._render_add_to(stmt)
            return
        if isinstance(stmt, AppendTo):
            key = self._key_code([self.expr(k) for k in stmt.keys])
            emitter.line(
                f"{stmt.buffer}.append(({key}, {self.expr(stmt.value)}))"
            )
            return
        if isinstance(stmt, BufferDecl):
            emitter.line(f"{stmt.name} = []")
            return
        if isinstance(stmt, FlushBuffer):
            emitter.line(f"for __key, __val in {stmt.name}:")
            with emitter.block():
                self._emit_apply(
                    target=stmt.target.name,
                    key_code="__key",
                    val_code="__val",
                    key_parts=None,
                )
            return
        if isinstance(stmt, LocalMapDecl):
            emitter.line(f"{stmt.name} = {{}}")
            return
        if isinstance(stmt, MergeInto):
            source = (
                stmt.source.name
                if stmt.source.local
                else map_local(stmt.source.name)
            )
            emitter.line(f"for __key, __val in {source}.items():")
            with emitter.block():
                self._emit_apply(
                    target=stmt.target.name,
                    key_code="__key",
                    val_code="__val",
                    key_parts=None,
                )
            return
        if isinstance(stmt, Clear):
            if stmt.target.local:
                emitter.line(f"{stmt.target.name}.clear()")
                return
            emitter.line(f"{map_local(stmt.target.name)}.clear()")
            # A cleared map's secondary indexes are cleared with it (the
            # recompute that follows re-populates both through _apply).
            for pattern in sorted(self.indexes.get(stmt.target.name, ())):
                emitter.line(f"{index_name(stmt.target.name, pattern)}.clear()")
            return
        if isinstance(stmt, Finalize):
            self._render_finalize(stmt)
            return
        raise CodegenError(f"cannot render IR statement {stmt!r}")

    def _render_finalize(self, stmt: Finalize) -> None:
        """Maintain a min/max/distinct auxiliary map from its occurrence
        source (always plain dicts per the storage plan).

        Without pending deltas the cache is rebuilt from the source.  With
        them, every pending accumulator — a keyed batch acc (dict) or a
        pending buffer (list of pairs) — is first summed key-wise into one
        delta (per-accumulator application would misread the pre-state),
        then each 0<->nonzero multiplicity crossing updates the cache; an
        extremum deletion re-derives the group's best, probing the group-
        prefix secondary index when one exists.
        """
        emitter = self.emitter
        target = map_local(stmt.target.name)
        source = map_local(stmt.source.name)
        ga = stmt.group_arity
        kind = stmt.kind
        op = "<" if kind == "min" else ">"
        if not stmt.pending:
            emitter.line(f"{target}.clear()")
            emitter.line(f"for __key, __val in {source}.items():")
            with emitter.block():
                emitter.line("if __val == 0:")
                with emitter.block():
                    emitter.line("continue")
                emitter.line(f"__g = __key[:{ga}]")
                if kind == "distinct":
                    emitter.line(f"{target}[__g] = {target}.get(__g, 0) + 1")
                else:
                    emitter.line(f"__v = __key[{ga}]")
                    emitter.line(f"__cur = {target}.get(__g)")
                    emitter.line(f"if __cur is None or __v {op} __cur:")
                    with emitter.block():
                        emitter.line(f"{target}[__g] = __v")
            return
        emitter.line("__fd = {}")
        for name in stmt.pending:
            emitter.line(
                f"for __key, __val in "
                f"({name}.items() if isinstance({name}, dict) else {name}):"
            )
            with emitter.block():
                emitter.line("__fd[__key] = __fd.get(__key, 0) + __val")
        emitter.line("for __key, __d in __fd.items():")
        with emitter.block():
            emitter.line(f"__post = {source}.get(__key, 0)")
            emitter.line("if __d == 0 or (__post - __d != 0) == (__post != 0):")
            with emitter.block():
                emitter.line("continue")
            emitter.line(f"__g = __key[:{ga}]")
            if kind == "distinct":
                emitter.line("if __post != 0:")
                with emitter.block():
                    emitter.line(f"{target}[__g] = {target}.get(__g, 0) + 1")
                emitter.line("else:")
                with emitter.block():
                    emitter.line(f"__n = {target}.get(__g, 0) - 1")
                    emitter.line("if __n == 0:")
                    with emitter.block():
                        emitter.line(f"{target}.pop(__g, None)")
                    emitter.line("else:")
                    with emitter.block():
                        emitter.line(f"{target}[__g] = __n")
                return
            emitter.line(f"__v = __key[{ga}]")
            emitter.line("if __post != 0:")
            with emitter.block():
                emitter.line(f"__cur = {target}.get(__g)")
                emitter.line(f"if __cur is None or __v {op} __cur:")
                with emitter.block():
                    emitter.line(f"{target}[__g] = __v")
            emitter.line(f"elif {target}.get(__g) == __v:")
            with emitter.block():
                emitter.line("__best = None")
                prefix_pattern = tuple(range(ga))
                if ga and prefix_pattern in self.indexes.get(
                    stmt.source.name, ()
                ):
                    bucket = index_name(stmt.source.name, prefix_pattern)
                    emitter.line(
                        f"for __k2, __c2 in {bucket}.get(__g, {{}}).items():"
                    )
                    with emitter.block():
                        emitter.line("if __c2 == 0:")
                        with emitter.block():
                            emitter.line("continue")
                        emitter.line(f"__v2 = __k2[{ga}]")
                        emitter.line(f"if __best is None or __v2 {op} __best:")
                        with emitter.block():
                            emitter.line("__best = __v2")
                else:
                    emitter.line(f"for __k2, __c2 in {source}.items():")
                    with emitter.block():
                        emitter.line(f"if __c2 == 0 or __k2[:{ga}] != __g:")
                        with emitter.block():
                            emitter.line("continue")
                        emitter.line(f"__v2 = __k2[{ga}]")
                        emitter.line(f"if __best is None or __v2 {op} __best:")
                        with emitter.block():
                            emitter.line("__best = __v2")
                emitter.line("if __best is None:")
                with emitter.block():
                    emitter.line(f"{target}.pop(__g, None)")
                emitter.line("else:")
                with emitter.block():
                    emitter.line(f"{target}[__g] = __best")

    def _render_row_loop(self, stmt: ForEachRow) -> None:
        """The columnar batch loop: iterate only the columns the body reads.

        ``stmt.rows_var`` holds the batch's parallel column lists (one per
        event parameter, equal lengths).  Parameters the body never
        references are pruned from the loop header, so a trigger touching
        two of five event columns walks exactly two lists.
        """
        emitter = self.emitter
        used = used_names(stmt.body)
        pairs = [
            (position, param)
            for position, param in enumerate(stmt.params)
            if param in used
        ]
        source = stmt.rows_var
        if not pairs:
            emitter.line(
                f"for _ in range(len({source}[0]) if {source} else 0):"
            )
        elif len(pairs) == 1:
            position, param = pairs[0]
            emitter.line(f"for {param} in {source}[{position}]:")
        else:
            names = ", ".join(param for _, param in pairs)
            columns = ", ".join(f"{source}[{position}]" for position, _ in pairs)
            emitter.line(f"for {names} in zip({columns}):")
        with emitter.block():
            self.render_body(stmt.body)

    def _render_map_loop(self, stmt: ForEachMap) -> None:
        emitter = self.emitter
        key_var = stmt.entry_var
        val_var = stmt.value_var
        if stmt.slot.local:
            source = stmt.slot.name
        else:
            source = map_local(stmt.slot.name)
        keyat = any(isinstance(expr, KeyAt) for _, expr in stmt.filters)
        use_index = (
            not stmt.slot.local
            and not keyat
            and bool(stmt.binds)
            and bool(stmt.filters)
            and stmt.pattern in self.indexes.get(stmt.slot.name, ())
        )
        if (
            not use_index
            and not stmt.slot.local
            and stmt.slot.name in self.native_maps
            and key_var not in used_names(stmt.body)
        ):
            # Full scan that never materialises the key tuple: fuse it
            # over the storage's column arrays (one native snapshot call
            # per column under the C kernel, zero-copy zip when pure).
            self._render_native_scan(stmt, source)
            return
        if use_index:
            # Probe the secondary index: only matching entries are touched.
            subkey_parts = [
                self.expr(expr) for _, expr in sorted(stmt.filters)
            ]
            subkey = (
                f"({subkey_parts[0]},)"
                if len(subkey_parts) == 1
                else "(" + ", ".join(subkey_parts) + ")"
            )
            idx = index_name(stmt.slot.name, stmt.pattern)
            emitter.line(
                f"for {key_var}, {val_var} in {idx}.get({subkey}, _EMPTY).items():"
            )
            remaining: list[tuple[int, IRExpr]] = []
        else:
            emitter.line(f"for {key_var}, {val_var} in {source}.items():")
            remaining = list(stmt.filters)
        with emitter.block():
            conditions = [
                f"{key_var}[{pos}] == {self._filter_code(expr, key_var)}"
                for pos, expr in remaining
            ]
            if conditions:
                emitter.line(f"if not ({' and '.join(conditions)}): continue")
            for pos, name in stmt.binds:
                emitter.line(f"{name} = {key_var}[{pos}]")
            self.render_body(stmt.body)

    def _filter_code(self, expr: IRExpr, key_var: str) -> str:
        if isinstance(expr, KeyAt):
            return f"{key_var}[{expr.pos}]"
        return self.expr(expr)

    def _render_native_scan(self, stmt: ForEachMap, source: str) -> None:
        """Render a native map's full scan as a fused column traversal.

        Restate-shaped loops — per-entry delta is a product of the entry
        value, bound key parts and integer constants, guarded by
        loop-invariant comparisons, appended to scalar pending buffers —
        collapse into one ``reduce_scalar`` kernel call (the whole loop
        runs in C; ``None`` means the kernel declined — not attached,
        overflow risk, boxed columns — and the column-zip loop runs
        instead).  Everything else renders as the column zip alone.
        """
        emitter = self.emitter
        reduced = self._match_scalar_reduce(stmt)
        if reduced is not None:
            mulpos, preds, cmul, sinks = reduced
            result = emitter.fresh("r")
            mul_code = (
                "(" + ", ".join(str(pos) for pos in mulpos)
                + ("," if len(mulpos) == 1 else "") + ")"
            )
            pred_parts = [
                f"({pos}, {opcode}, {self.expr(rhs)})"
                for pos, opcode, rhs in preds
            ]
            pred_code = (
                "(" + ", ".join(pred_parts)
                + ("," if len(pred_parts) == 1 else "") + ")"
            )
            emitter.line(
                f"{result} = {source}.reduce_scalar"
                f"({mul_code}, {pred_code}, {cmul})"
            )
            emitter.line(f"if {result} is None:")
            with emitter.block():
                self._render_column_zip(stmt, source)
            emitter.line(f"elif {result} != 0:")
            with emitter.block():
                for kind, sink in sinks:
                    if kind == "append":
                        emitter.line(f"{sink}.append(((), {result}))")
                    elif kind == "accum":
                        emitter.line(f"{sink} += {result}")
                    else:
                        self._emit_apply(
                            target=sink,
                            key_code="()",
                            val_code=result,
                            key_parts=[],
                        )
            return
        self._render_column_zip(stmt, source)

    def _match_scalar_reduce(self, stmt: ForEachMap):
        """Match the restate-reduction loop shape, or return ``None``.

        Shape: optional loop-invariant comparison guards wrapping either
        ``acc += Prod(value × bound keys × int consts)`` (a correlated
        existence/aggregate accumulation) or ``Assign(d, Prod(...))``
        followed by ``if d != 0`` sinking ``d`` under the empty key —
        appended to pending buffers (per-event triggers) or applied
        directly (second-order batch restates).  Exactness gate: the
        scanned map and every sink target must be proven always-int, so
        one C int64 sum (with overflow bail-out) is bit-identical to the
        per-entry Python delta stream.
        """
        if stmt.slot.name not in self.int_value_maps:
            return None
        if any(isinstance(expr, KeyAt) for _, expr in stmt.filters):
            return None
        bound = {name: pos for pos, name in stmt.binds}
        loop_names = set(bound) | {stmt.value_var, stmt.entry_var}
        preds: list[tuple[int, int, IRExpr]] = []
        for pos, expr in stmt.filters:
            if expr_names(expr) & loop_names:
                return None
            preds.append((pos, _REDUCE_OPS["="], expr))
        body = stmt.body
        while len(body) == 1 and isinstance(body[0], IfCond):
            cond = body[0].cond
            if not isinstance(cond, Compare) or cond.op not in _REDUCE_OPS:
                return None
            op, left, right = cond.op, cond.left, cond.right
            if isinstance(left, Name) and left.name in bound:
                var, rhs = left, right
            elif isinstance(right, Name) and right.name in bound:
                var, rhs = right, left
                op = _FLIP_OPS[op]
            else:
                return None
            if expr_names(rhs) & loop_names:
                return None
            preds.append((bound[var.name], _REDUCE_OPS[op], rhs))
            body = body[0].body
        sinks: list[tuple[str, str]] = []
        if len(body) == 1 and isinstance(body[0], Accum):
            delta_expr = body[0].value
            sinks.append(("accum", body[0].name))
        elif len(body) == 2:
            assign, guard = body
            if not isinstance(assign, Assign) or not isinstance(guard, IfCond):
                return None
            gc = guard.cond
            if not (isinstance(gc, Compare) and gc.op == "!="):
                return None
            if isinstance(gc.left, Name) and gc.left.name == assign.name:
                zero = gc.right
            elif isinstance(gc.right, Name) and gc.right.name == assign.name:
                zero = gc.left
            else:
                return None
            if not (isinstance(zero, Const) and zero.value == 0):
                return None
            for sink in guard.body:
                if isinstance(sink, AppendTo):
                    if sink.keys:
                        return None
                    value = sink.value
                    if not (
                        isinstance(value, Name) and value.name == assign.name
                    ):
                        return None
                    if sink.target.name not in self.int_value_maps:
                        return None
                    sinks.append(("append", sink.buffer))
                elif isinstance(sink, AddTo):
                    if sink.keys or sink.slot.local or not sink.evict:
                        return None
                    value = sink.value
                    if not (
                        isinstance(value, Name) and value.name == assign.name
                    ):
                        return None
                    if sink.slot.name not in self.int_value_maps:
                        return None
                    sinks.append(("apply", sink.slot.name))
                else:
                    return None
            delta_expr = assign.value
        else:
            return None
        if not sinks:
            return None
        factors = (
            delta_expr.factors
            if isinstance(delta_expr, Prod)
            else (delta_expr,)
        )
        mulpos: list[int] = []
        cmul = 1
        value_seen = False
        for factor in factors:
            if isinstance(factor, Name) and factor.name == stmt.value_var:
                if value_seen:
                    return None
                value_seen = True
            elif isinstance(factor, Name) and factor.name in bound:
                mulpos.append(bound[factor.name])
            elif isinstance(factor, Const) and type(factor.value) is int:
                cmul *= factor.value
            else:
                return None
        if not value_seen:
            return None
        return tuple(mulpos), preds, cmul, sinks

    def _render_column_zip(self, stmt: ForEachMap, source: str) -> None:
        """``for kp_i, ..., val in zip(*m.scan_columns((...,))):``

        Only the key positions the loop actually reads (binds, filters,
        key-equality tests) are scanned; each bound position's column
        value lands directly in its bind name, so the per-entry work is
        one C-level zip step instead of tuple building plus indexing.
        """
        emitter = self.emitter
        positions: set[int] = {pos for pos, _ in stmt.binds}
        positions.update(pos for pos, _ in stmt.filters)
        positions.update(
            expr.pos
            for _, expr in stmt.filters
            if isinstance(expr, KeyAt)
        )
        ordered = sorted(positions)
        var_of: dict[int, str] = {}
        aliases: list[tuple[str, str]] = []
        for pos, name in stmt.binds:
            if pos in var_of:
                aliases.append((name, var_of[pos]))
            else:
                var_of[pos] = name
        for pos in ordered:
            if pos not in var_of:
                var_of[pos] = emitter.fresh("kp")
        cols = emitter.fresh("s")
        pos_code = (
            "(" + ", ".join(str(pos) for pos in ordered)
            + ("," if len(ordered) == 1 else "") + ")"
        )
        emitter.line(f"{cols} = {source}.scan_columns({pos_code})")
        if not ordered:
            emitter.line(f"for {stmt.value_var} in {cols}[0]:")
        else:
            names = ", ".join(
                [var_of[pos] for pos in ordered] + [stmt.value_var]
            )
            seqs = ", ".join(
                f"{cols}[{i}]" for i in range(len(ordered) + 1)
            )
            emitter.line(f"for {names} in zip({seqs}):")
        with emitter.block():
            conditions = []
            for pos, expr in stmt.filters:
                if isinstance(expr, KeyAt):
                    code = var_of[expr.pos]
                else:
                    code = self.expr(expr)
                conditions.append(f"{var_of[pos]} == {code}")
            if conditions:
                emitter.line(f"if not ({' and '.join(conditions)}): continue")
            for name, primary in aliases:
                emitter.line(f"{name} = {primary}")
            self.render_body(stmt.body)

    def _render_add_to(self, stmt: AddTo) -> None:
        key_parts = [self.expr(k) for k in stmt.keys]
        key = self._key_code(key_parts)
        value = self.expr(stmt.value)
        if stmt.slot.local:
            # Batch accumulator: plain dict add, zeros kept (evicted when
            # the accumulated delta is merged into the program map).
            local = stmt.slot.name
            key_var = self.emitter.fresh("k")
            self.emitter.line(f"{key_var} = {key}")
            self.emitter.line(
                f"{local}[{key_var}] = {local}.get({key_var}, 0) + {value}"
            )
            return
        self._emit_apply(
            target=stmt.slot.name,
            key_code=key,
            val_code=value,
            key_parts=key_parts,
        )

    def _emit_apply(
        self,
        target: str,
        key_code: str,
        val_code: str,
        key_parts: Optional[list[str]],
    ) -> None:
        """``target[key] += val`` with zero eviction and index maintenance."""
        emitter = self.emitter
        local = map_local(target)
        patterns = sorted(self.indexes.get(target, ()))
        cur = emitter.fresh("c")
        if target in self.columnar_maps:
            # Columnar storage: one probe does lookup, add and eviction.
            if not patterns:
                emitter.line(f"{local}.add({key_code}, {val_code})")
                return
            emitter.line(f"{cur} = {local}.add({key_code}, {val_code})")
            self._emit_index_maintenance(
                target, key_code, key_parts, patterns, cur,
                map_updated=True,
            )
            return
        emitter.line(f"{cur} = {local}.get({key_code}, 0) + {val_code}")

        self._emit_index_maintenance(
            target, key_code, key_parts, patterns, cur, map_updated=False
        )

    def _emit_index_maintenance(
        self,
        target: str,
        key_code: str,
        key_parts: Optional[list[str]],
        patterns: list[tuple[int, ...]],
        cur: str,
        map_updated: bool,
    ) -> None:
        """The evict-or-store branch over ``cur`` (the new ring value).

        With ``map_updated`` the map write already happened (the columnar
        ``add()`` path) and only the secondary indexes need maintaining —
        callers only take that path when the map has index patterns, so
        the emitted branches are never empty.
        """
        assert patterns or not map_updated
        emitter = self.emitter
        local = map_local(target)

        def subkey_code(pattern: tuple[int, ...]) -> str:
            if key_parts is not None:
                parts = [key_parts[p] for p in pattern]
            else:
                parts = [f"{key_code}[{p}]" for p in pattern]
            if len(parts) == 1:
                return f"({parts[0]},)"
            return "(" + ", ".join(parts) + ")"

        emitter.line(f"if {cur} == 0:")
        with emitter.block():
            if not map_updated:
                emitter.line(f"{local}.pop({key_code}, None)")
            for pattern in patterns:
                idx = index_name(target, pattern)
                bucket = emitter.fresh("b")
                emitter.line(f"{bucket} = {idx}.get({subkey_code(pattern)})")
                emitter.line(f"if {bucket} is not None:")
                with emitter.block():
                    emitter.line(f"{bucket}.pop({key_code}, None)")
                    emitter.line(f"if not {bucket}:")
                    with emitter.block():
                        emitter.line(f"{idx}.pop({subkey_code(pattern)}, None)")
        emitter.line("else:")
        with emitter.block():
            if not map_updated:
                emitter.line(f"{local}[{key_code}] = {cur}")
            for pattern in patterns:
                idx = index_name(target, pattern)
                emitter.line(
                    f"{idx}.setdefault({subkey_code(pattern)}, {{}})"
                    f"[{key_code}] = {cur}"
                )

    @staticmethod
    def _key_code(parts: list[str]) -> str:
        if not parts:
            return "()"
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"

    # -- expressions -------------------------------------------------------

    def cond(self, expr: IRExpr) -> str:
        """Render an expression in boolean (guard) position."""
        if isinstance(expr, Compare):
            return (
                f"{self.expr(expr.left)} {_CMP_PY[expr.op]} "
                f"{self.expr(expr.right)}"
            )
        return self.expr(expr)

    def expr(self, expr: IRExpr) -> str:
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, Name):
            return expr.name
        if isinstance(expr, Neg):
            return f"(-{self.expr(expr.body)})"
        if isinstance(expr, Sum):
            return "(" + " + ".join(self.expr(t) for t in expr.terms) + ")"
        if isinstance(expr, Prod):
            return " * ".join(self._factor(f) for f in expr.factors)
        if isinstance(expr, SafeDiv):
            return f"_div({self.expr(expr.left)}, {self.expr(expr.right)})"
        if isinstance(expr, Compare):
            return (
                f"(1 if {self.expr(expr.left)} {_CMP_PY[expr.op]} "
                f"{self.expr(expr.right)} else 0)"
            )
        if isinstance(expr, Lookup):
            storage = (
                expr.slot.name if expr.slot.local else map_local(expr.slot.name)
            )
            if not expr.keys:
                return f"{storage}.get((), {expr.default!r})"
            key = self._key_code([self.expr(k) for k in expr.keys])
            return f"{storage}.get({key}, {expr.default!r})"
        raise CodegenError(f"unsupported IR expression {expr!r}")

    def _factor(self, expr: IRExpr) -> str:
        code = self.expr(expr)
        if isinstance(expr, Prod):
            return f"({code})"
        return code


class CompiledExecutor:
    """Compiles the trigger module and dispatches events to its functions.

    ``use_indexes=False`` disables secondary index generation (the access-
    pattern ablation benchmark); ``optimize=False`` disables the IR pass
    pipeline (the loop-optimisation ablation).
    """

    mode = "compiled"

    def __init__(
        self,
        program: CompiledProgram,
        maps: Optional[dict] = None,
        use_indexes: bool = True,
        optimize: bool = True,
        second_order: bool = True,
        columnar: bool = False,
        native_maps: frozenset = frozenset(),
        native_note: Optional[str] = None,
    ):
        """``columnar=True`` renders applies for the engine's columnar map
        storage (single-probe ``add()``); it must match the storage the
        bound maps actually use — :class:`~repro.runtime.engine.DeltaEngine`
        passes its own ``columnar`` flag through. ``native_maps`` names maps
        whose full-map restatement loops should render as fused column scans
        (the native executor lane passes its kernel-eligible set)."""
        self.program = program
        self.use_indexes = use_indexes
        self.optimize = optimize
        self.second_order = second_order
        self.columnar = columnar
        self._index_patterns = (
            collect_patterns(program, optimize=optimize, second_order=second_order)
            if use_indexes
            else {}
        )
        self.source = generate_module(
            program,
            use_indexes=use_indexes,
            optimize=optimize,
            second_order=second_order,
            columnar=columnar,
            native_maps=native_maps,
            native_note=native_note,
        )
        self._functions: dict[tuple[str, int], object] = {}
        self._batch_functions: dict[tuple[str, int], object] = {}
        self._maps: Optional[dict] = None
        self.indexes: dict[str, dict] = {}
        if maps is not None:
            self.bind(maps)

    def bind(self, maps: dict) -> None:
        """Exec the generated module against concrete map storage.

        Secondary indexes are (re)built from the current map contents, so
        binding a snapshot of a live engine stays consistent.
        """
        self.indexes = {
            index_name(map_name, pattern): {}
            for map_name, patterns in self._index_patterns.items()
            for pattern in patterns
        }
        namespace: dict = {
            "MAPS": maps,
            "INDEXES": self.indexes,
            "_EMPTY": {},
        }
        code = compile(self.source, "<repro-generated-triggers>", "exec")
        exec(code, namespace)  # noqa: S102 - this is the compiler back end
        rebuild = namespace.get("_rebuild_indexes")
        if rebuild is not None:
            rebuild()
        self._maps = maps
        for (relation, sign), trigger in self.program.triggers.items():
            self._functions[(relation, sign)] = namespace[trigger.name]
            self._batch_functions[(relation, sign)] = namespace[
                f"{trigger.name}_batch"
            ]

    def execute(
        self,
        trigger: Trigger,
        values: Sequence,
        maps: dict,
        profiler=None,
    ) -> None:
        if self._maps is None or self._maps is not maps:
            self.bind(maps)
        self._functions[(trigger.relation, trigger.sign)](*values)

    def execute_batch(
        self,
        trigger: Trigger,
        columns: Sequence[Sequence],
        maps: dict,
        profiler=None,
    ) -> None:
        """Apply a whole same-trigger columnar batch with one generated call.

        ``columns`` is the struct-of-arrays layout of
        :class:`~repro.runtime.events.EventBatch`: one parallel list per
        event column.
        """
        if self._maps is None or self._maps is not maps:
            self.bind(maps)
        self._batch_functions[(trigger.relation, trigger.sign)](columns)

    def index_entry_counts(self) -> dict[str, int]:
        """Secondary-index entries currently held, per indexed map."""
        counts: dict[str, int] = {}
        for map_name, patterns in self._index_patterns.items():
            total = 0
            for pattern in patterns:
                buckets = self.indexes.get(index_name(map_name, pattern), {})
                total += sum(len(bucket) for bucket in buckets.values())
            counts[map_name] = total
        return counts
