"""Python trigger-code generation: the IR -> Python renderer.

Each trigger becomes one module-level function whose parameters are the
event values and whose body renders the trigger's imperative IR
(:mod:`repro.ir`) — loops appear only where the lowered statements
iterate map entries (the paper's ``foreach``).  Maps are bound as default
arguments, so the generated code pays no attribute or global lookups on
the hot path.

Every trigger is emitted twice: the per-event function ``on_<kind>_<rel>``
and a *batch* variant ``on_<kind>_<rel>_batch(cols)`` rendered from the
batch IR derived from the same lowering.  The batch variant binds
map/index locals once per call and iterates the *columnar* batch — one
parallel list per event column — binding only the columns its body reads
(unused columns are never touched).  Independent triggers accumulate
whole-batch deltas in locals flushed once (the Z-set batch-delta shape);
self-reading triggers that admit a second-order plan accumulate their
first-order statements and restate the order-2 targets once per batch
(see :func:`repro.ir.lower.plan_second_order`).

Secondary indexes are a back-end concern layered onto the IR here: the
loop access patterns collected from the lowered IR get one index dict per
pattern, maintained inline by every map apply and probed by matching
loops so they touch only matching entries.

The generated source is a readable artifact in its own right (the
``binary-size``/profiling experiments measure it); ``generate_module``
returns it as a string and :class:`CompiledExecutor` ``exec``-compiles it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import CodegenError
from repro.compiler.program import CompiledProgram, Trigger
from repro.ir.lower import collect_patterns_ir, lower_program
from repro.ir.nodes import (
    AddTo,
    AppendTo,
    Assign,
    Accum,
    Block,
    BufferDecl,
    Clear,
    Compare,
    Const,
    FlushBuffer,
    ForEachMap,
    ForEachRow,
    IfCond,
    IRExpr,
    IRStmt,
    KeyAt,
    LocalMapDecl,
    Lookup,
    MergeInto,
    Name,
    Neg,
    Prod,
    SafeDiv,
    Sum,
    TriggerIR,
    read_slots,
    used_names,
    walk_stmts,
    written_slots,
)

_CMP_PY = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class Emitter:
    """An indentation-aware source builder."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0
        self._temp = 0

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def blank(self) -> None:
        self.lines.append("")

    def fresh(self, prefix: str = "t") -> str:
        self._temp += 1
        return f"__{prefix}{self._temp}"

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"

    class _Block:
        def __init__(self, emitter: "Emitter") -> None:
            self.emitter = emitter

        def __enter__(self) -> None:
            self.emitter.indent += 1

        def __exit__(self, *exc) -> None:
            self.emitter.indent -= 1

    def block(self) -> "_Block":
        return Emitter._Block(self)


def map_local(name: str) -> str:
    """The local (default-argument) name a map is bound to."""
    return f"_m_{name}"


def index_name(map_name: str, pattern: tuple[int, ...]) -> str:
    """The INDEXES key / local name for one access pattern of a map."""
    return f"__x_{map_name}_" + "_".join(str(p) for p in pattern)


def collect_patterns(
    program: CompiledProgram, optimize: bool = True, second_order: bool = True
) -> dict[str, set[tuple[int, ...]]]:
    """Access patterns needing secondary indexes, from the lowered IR.

    A pattern is the tuple of key positions bound at a map-loop site; real
    DBToaster calls these the map's *in/out patterns* and maintains one
    index per pattern so loops touch only matching entries.
    """
    ir = lower_program(program, optimize=optimize, second_order=second_order)
    return collect_patterns_ir(
        list(ir.triggers.values()) + list(ir.batch_triggers.values())
    )


def generate_module(
    program: CompiledProgram,
    use_indexes: bool = True,
    optimize: bool = True,
    second_order: bool = True,
    columnar: bool = False,
) -> str:
    """Generate the full trigger module source for a compiled program.

    With ``use_indexes`` (the default, matching production DBToaster),
    maps iterated with partially-bound keys get secondary index
    dictionaries, maintained inline by every writer and used by loops to
    touch only matching entries.  ``optimize=False`` renders the raw
    lowering with the IR pass pipeline disabled (the ablation knob);
    ``second_order=False`` disables the delta-of-delta batch sink (the
    higher-order batching ablation).

    With ``columnar`` the module is rendered for an engine whose maps
    follow the compiler's storage plan: applies to columnar maps go
    through their single-probe ``add()`` update instead of the dict
    ``get``/``pop``/set sequence (halving hash/probe work per write).
    The default renders storage-agnostic code that works on any mapping.
    """
    from repro.compiler.partition import analyze_partitioning
    from repro.compiler.storage import analyze_storage

    ir = lower_program(program, optimize=optimize, second_order=second_order)
    indexes = (
        collect_patterns(program, optimize=optimize, second_order=second_order)
        if use_indexes
        else {}
    )
    columnar_maps = (
        frozenset(analyze_storage(program).columnar_maps)
        if columnar
        else frozenset()
    )
    emitter = Emitter()
    emitter.line('"""Generated delta-processing triggers (do not edit).')
    emitter.line("")
    emitter.line("Produced by repro.codegen.pygen from the trigger IR")
    emitter.line("(repro.ir); maps (and secondary indexes) are bound as")
    emitter.line("default arguments at exec time.  Each trigger has a")
    emitter.line("per-event function and a *_batch variant applying a")
    emitter.line("whole columnar batch (one parallel list per event")
    emitter.line("column) per call.")
    emitter.line("")
    passes = ", ".join(ir.passes) if ir.passes else "disabled"
    emitter.line(f"IR optimisation passes: {passes}.")
    emitter.line("")
    # Shard-routing metadata: which event column each relation's batches
    # may be hash-partitioned on (see repro.compiler.partition); stamped
    # here so the generated artifact documents its own parallelism.
    for line in analyze_partitioning(program).describe().splitlines():
        emitter.line(line)
    emitter.line("")
    # Storage plan: how the engine lays each map out in memory (packed
    # columnar vs dict, see repro.compiler.storage); with columnar=False
    # the rendered code is storage-agnostic (mapping protocol only),
    # otherwise columnar applies use the single-probe add() update.
    for line in analyze_storage(program).describe().splitlines():
        emitter.line(line)
    emitter.line(
        "rendered for: "
        + ("columnar storage (add() applies)" if columnar_maps
           else "storage-agnostic (mapping protocol)")
    )
    emitter.line('"""')
    emitter.blank()
    emitter.line("def _div(n, d):")
    with emitter.block():
        emitter.line("return 0 if d == 0 else n / d")
    emitter.blank()
    if indexes:
        _generate_index_rebuild(indexes, emitter)
        emitter.blank()
    for key in sorted(program.triggers, key=lambda k: (k[0], -k[1])):
        trigger = program.triggers[key]
        _generate_trigger(
            trigger,
            ir.triggers[key],
            ir.batch_triggers[key],
            emitter,
            indexes,
            columnar_maps,
        )
        emitter.blank()
    return emitter.source()


def _generate_index_rebuild(
    indexes: dict[str, set[tuple[int, ...]]], emitter: Emitter
) -> None:
    """Reconstruct every index from its base map, in place."""
    emitter.line("def _rebuild_indexes():")
    with emitter.block():
        for map_name in sorted(indexes):
            for pattern in sorted(indexes[map_name]):
                local = index_name(map_name, pattern)
                emitter.line(f"__idx = INDEXES[{local!r}]")
                emitter.line("__idx.clear()")
                emitter.line(f"for __key, __val in MAPS[{map_name!r}].items():")
                with emitter.block():
                    subkey = (
                        f"(__key[{pattern[0]}],)"
                        if len(pattern) == 1
                        else "(" + ", ".join(f"__key[{p}]" for p in pattern) + ")"
                    )
                    emitter.line(
                        f"__idx.setdefault({subkey}, {{}})[__key] = __val"
                    )


def _global_maps_used(*bodies) -> list[str]:
    names: set[str] = set()
    for body in bodies:
        for slot in read_slots(body) | written_slots(body):
            if not slot.local:
                names.add(slot.name)
        for stmt in walk_stmts(body):
            if isinstance(stmt, AppendTo) and stmt.target.name:
                names.add(stmt.target.name)
    return sorted(names)


def _generate_trigger(
    trigger: Trigger,
    per_event: TriggerIR,
    batch: TriggerIR,
    emitter: Emitter,
    indexes: Optional[dict[str, set[tuple[int, ...]]]] = None,
    columnar_maps: frozenset[str] = frozenset(),
) -> None:
    indexes = indexes or {}
    maps_used = _global_maps_used(per_event.body, batch.body)
    params = list(trigger.params)
    defaults = [f"{map_local(name)}=MAPS[{name!r}]" for name in maps_used]
    for name in maps_used:
        for pattern in sorted(indexes.get(name, ())):
            local = index_name(name, pattern)
            defaults.append(f"{local}=INDEXES[{local!r}]")
    renderer = _PyRenderer(emitter, indexes, columnar_maps)
    signature = ", ".join(params + defaults)
    emitter.line(f"def {trigger.name}({signature}):")
    with emitter.block():
        if not per_event.body:
            emitter.line("pass")
        else:
            renderer.render_body(per_event.body)
    emitter.blank()
    batch_signature = ", ".join(["__cols"] + defaults)
    emitter.line(f"def {trigger.name}_batch({batch_signature}):")
    with emitter.block():
        if not batch.body:
            emitter.line("pass")
        else:
            renderer.render_body(batch.body)


class _PyRenderer:
    """Renders IR statements to Python source lines.

    ``columnar_maps`` names the maps the binding engine stores in
    :class:`~repro.runtime.storage.ColumnarMap` columns — their applies
    render as the storage's single-probe ``add()``.
    """

    def __init__(
        self,
        emitter: Emitter,
        indexes: dict[str, set[tuple[int, ...]]],
        columnar_maps: frozenset[str] = frozenset(),
    ) -> None:
        self.emitter = emitter
        self.indexes = indexes
        self.columnar_maps = columnar_maps

    # -- statements --------------------------------------------------------

    def render_body(self, stmts: Sequence[IRStmt]) -> None:
        for stmt in stmts:
            self.render_stmt(stmt)

    def render_stmt(self, stmt: IRStmt) -> None:
        emitter = self.emitter
        if isinstance(stmt, Block):
            for comment in stmt.comments:
                emitter.line(f"# {comment}")
            self.render_body(stmt.stmts)
            return
        if isinstance(stmt, Assign):
            emitter.line(f"{stmt.name} = {self.expr(stmt.value)}")
            return
        if isinstance(stmt, Accum):
            emitter.line(f"{stmt.name} += {self.expr(stmt.value)}")
            return
        if isinstance(stmt, IfCond):
            emitter.line(f"if {self.cond(stmt.cond)}:")
            with emitter.block():
                self.render_body(stmt.body)
            return
        if isinstance(stmt, ForEachMap):
            self._render_map_loop(stmt)
            return
        if isinstance(stmt, ForEachRow):
            self._render_row_loop(stmt)
            return
        if isinstance(stmt, AddTo):
            self._render_add_to(stmt)
            return
        if isinstance(stmt, AppendTo):
            key = self._key_code([self.expr(k) for k in stmt.keys])
            emitter.line(
                f"{stmt.buffer}.append(({key}, {self.expr(stmt.value)}))"
            )
            return
        if isinstance(stmt, BufferDecl):
            emitter.line(f"{stmt.name} = []")
            return
        if isinstance(stmt, FlushBuffer):
            emitter.line(f"for __key, __val in {stmt.name}:")
            with emitter.block():
                self._emit_apply(
                    target=stmt.target.name,
                    key_code="__key",
                    val_code="__val",
                    key_parts=None,
                )
            return
        if isinstance(stmt, LocalMapDecl):
            emitter.line(f"{stmt.name} = {{}}")
            return
        if isinstance(stmt, MergeInto):
            source = (
                stmt.source.name
                if stmt.source.local
                else map_local(stmt.source.name)
            )
            emitter.line(f"for __key, __val in {source}.items():")
            with emitter.block():
                self._emit_apply(
                    target=stmt.target.name,
                    key_code="__key",
                    val_code="__val",
                    key_parts=None,
                )
            return
        if isinstance(stmt, Clear):
            if stmt.target.local:
                emitter.line(f"{stmt.target.name}.clear()")
                return
            emitter.line(f"{map_local(stmt.target.name)}.clear()")
            # A cleared map's secondary indexes are cleared with it (the
            # recompute that follows re-populates both through _apply).
            for pattern in sorted(self.indexes.get(stmt.target.name, ())):
                emitter.line(f"{index_name(stmt.target.name, pattern)}.clear()")
            return
        raise CodegenError(f"cannot render IR statement {stmt!r}")

    def _render_row_loop(self, stmt: ForEachRow) -> None:
        """The columnar batch loop: iterate only the columns the body reads.

        ``stmt.rows_var`` holds the batch's parallel column lists (one per
        event parameter, equal lengths).  Parameters the body never
        references are pruned from the loop header, so a trigger touching
        two of five event columns walks exactly two lists.
        """
        emitter = self.emitter
        used = used_names(stmt.body)
        pairs = [
            (position, param)
            for position, param in enumerate(stmt.params)
            if param in used
        ]
        source = stmt.rows_var
        if not pairs:
            emitter.line(
                f"for _ in range(len({source}[0]) if {source} else 0):"
            )
        elif len(pairs) == 1:
            position, param = pairs[0]
            emitter.line(f"for {param} in {source}[{position}]:")
        else:
            names = ", ".join(param for _, param in pairs)
            columns = ", ".join(f"{source}[{position}]" for position, _ in pairs)
            emitter.line(f"for {names} in zip({columns}):")
        with emitter.block():
            self.render_body(stmt.body)

    def _render_map_loop(self, stmt: ForEachMap) -> None:
        emitter = self.emitter
        key_var = stmt.entry_var
        val_var = stmt.value_var
        if stmt.slot.local:
            source = stmt.slot.name
        else:
            source = map_local(stmt.slot.name)
        keyat = any(isinstance(expr, KeyAt) for _, expr in stmt.filters)
        use_index = (
            not stmt.slot.local
            and not keyat
            and bool(stmt.binds)
            and bool(stmt.filters)
            and stmt.pattern in self.indexes.get(stmt.slot.name, ())
        )
        if use_index:
            # Probe the secondary index: only matching entries are touched.
            subkey_parts = [
                self.expr(expr) for _, expr in sorted(stmt.filters)
            ]
            subkey = (
                f"({subkey_parts[0]},)"
                if len(subkey_parts) == 1
                else "(" + ", ".join(subkey_parts) + ")"
            )
            idx = index_name(stmt.slot.name, stmt.pattern)
            emitter.line(
                f"for {key_var}, {val_var} in {idx}.get({subkey}, _EMPTY).items():"
            )
            remaining: list[tuple[int, IRExpr]] = []
        else:
            emitter.line(f"for {key_var}, {val_var} in {source}.items():")
            remaining = list(stmt.filters)
        with emitter.block():
            conditions = [
                f"{key_var}[{pos}] == {self._filter_code(expr, key_var)}"
                for pos, expr in remaining
            ]
            if conditions:
                emitter.line(f"if not ({' and '.join(conditions)}): continue")
            for pos, name in stmt.binds:
                emitter.line(f"{name} = {key_var}[{pos}]")
            self.render_body(stmt.body)

    def _filter_code(self, expr: IRExpr, key_var: str) -> str:
        if isinstance(expr, KeyAt):
            return f"{key_var}[{expr.pos}]"
        return self.expr(expr)

    def _render_add_to(self, stmt: AddTo) -> None:
        key_parts = [self.expr(k) for k in stmt.keys]
        key = self._key_code(key_parts)
        value = self.expr(stmt.value)
        if stmt.slot.local:
            # Batch accumulator: plain dict add, zeros kept (evicted when
            # the accumulated delta is merged into the program map).
            local = stmt.slot.name
            key_var = self.emitter.fresh("k")
            self.emitter.line(f"{key_var} = {key}")
            self.emitter.line(
                f"{local}[{key_var}] = {local}.get({key_var}, 0) + {value}"
            )
            return
        self._emit_apply(
            target=stmt.slot.name,
            key_code=key,
            val_code=value,
            key_parts=key_parts,
        )

    def _emit_apply(
        self,
        target: str,
        key_code: str,
        val_code: str,
        key_parts: Optional[list[str]],
    ) -> None:
        """``target[key] += val`` with zero eviction and index maintenance."""
        emitter = self.emitter
        local = map_local(target)
        patterns = sorted(self.indexes.get(target, ()))
        cur = emitter.fresh("c")
        if target in self.columnar_maps:
            # Columnar storage: one probe does lookup, add and eviction.
            if not patterns:
                emitter.line(f"{local}.add({key_code}, {val_code})")
                return
            emitter.line(f"{cur} = {local}.add({key_code}, {val_code})")
            self._emit_index_maintenance(
                target, key_code, key_parts, patterns, cur,
                map_updated=True,
            )
            return
        emitter.line(f"{cur} = {local}.get({key_code}, 0) + {val_code}")

        self._emit_index_maintenance(
            target, key_code, key_parts, patterns, cur, map_updated=False
        )

    def _emit_index_maintenance(
        self,
        target: str,
        key_code: str,
        key_parts: Optional[list[str]],
        patterns: list[tuple[int, ...]],
        cur: str,
        map_updated: bool,
    ) -> None:
        """The evict-or-store branch over ``cur`` (the new ring value).

        With ``map_updated`` the map write already happened (the columnar
        ``add()`` path) and only the secondary indexes need maintaining —
        callers only take that path when the map has index patterns, so
        the emitted branches are never empty.
        """
        assert patterns or not map_updated
        emitter = self.emitter
        local = map_local(target)

        def subkey_code(pattern: tuple[int, ...]) -> str:
            if key_parts is not None:
                parts = [key_parts[p] for p in pattern]
            else:
                parts = [f"{key_code}[{p}]" for p in pattern]
            if len(parts) == 1:
                return f"({parts[0]},)"
            return "(" + ", ".join(parts) + ")"

        emitter.line(f"if {cur} == 0:")
        with emitter.block():
            if not map_updated:
                emitter.line(f"{local}.pop({key_code}, None)")
            for pattern in patterns:
                idx = index_name(target, pattern)
                bucket = emitter.fresh("b")
                emitter.line(f"{bucket} = {idx}.get({subkey_code(pattern)})")
                emitter.line(f"if {bucket} is not None:")
                with emitter.block():
                    emitter.line(f"{bucket}.pop({key_code}, None)")
                    emitter.line(f"if not {bucket}:")
                    with emitter.block():
                        emitter.line(f"{idx}.pop({subkey_code(pattern)}, None)")
        emitter.line("else:")
        with emitter.block():
            if not map_updated:
                emitter.line(f"{local}[{key_code}] = {cur}")
            for pattern in patterns:
                idx = index_name(target, pattern)
                emitter.line(
                    f"{idx}.setdefault({subkey_code(pattern)}, {{}})"
                    f"[{key_code}] = {cur}"
                )

    @staticmethod
    def _key_code(parts: list[str]) -> str:
        if not parts:
            return "()"
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"

    # -- expressions -------------------------------------------------------

    def cond(self, expr: IRExpr) -> str:
        """Render an expression in boolean (guard) position."""
        if isinstance(expr, Compare):
            return (
                f"{self.expr(expr.left)} {_CMP_PY[expr.op]} "
                f"{self.expr(expr.right)}"
            )
        return self.expr(expr)

    def expr(self, expr: IRExpr) -> str:
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, Name):
            return expr.name
        if isinstance(expr, Neg):
            return f"(-{self.expr(expr.body)})"
        if isinstance(expr, Sum):
            return "(" + " + ".join(self.expr(t) for t in expr.terms) + ")"
        if isinstance(expr, Prod):
            return " * ".join(self._factor(f) for f in expr.factors)
        if isinstance(expr, SafeDiv):
            return f"_div({self.expr(expr.left)}, {self.expr(expr.right)})"
        if isinstance(expr, Compare):
            return (
                f"(1 if {self.expr(expr.left)} {_CMP_PY[expr.op]} "
                f"{self.expr(expr.right)} else 0)"
            )
        if isinstance(expr, Lookup):
            storage = (
                expr.slot.name if expr.slot.local else map_local(expr.slot.name)
            )
            if not expr.keys:
                return f"{storage}.get((), {expr.default!r})"
            key = self._key_code([self.expr(k) for k in expr.keys])
            return f"{storage}.get({key}, {expr.default!r})"
        raise CodegenError(f"unsupported IR expression {expr!r}")

    def _factor(self, expr: IRExpr) -> str:
        code = self.expr(expr)
        if isinstance(expr, Prod):
            return f"({code})"
        return code


class CompiledExecutor:
    """Compiles the trigger module and dispatches events to its functions.

    ``use_indexes=False`` disables secondary index generation (the access-
    pattern ablation benchmark); ``optimize=False`` disables the IR pass
    pipeline (the loop-optimisation ablation).
    """

    mode = "compiled"

    def __init__(
        self,
        program: CompiledProgram,
        maps: Optional[dict] = None,
        use_indexes: bool = True,
        optimize: bool = True,
        second_order: bool = True,
        columnar: bool = False,
    ):
        """``columnar=True`` renders applies for the engine's columnar map
        storage (single-probe ``add()``); it must match the storage the
        bound maps actually use — :class:`~repro.runtime.engine.DeltaEngine`
        passes its own ``columnar`` flag through."""
        self.program = program
        self.use_indexes = use_indexes
        self.optimize = optimize
        self.second_order = second_order
        self.columnar = columnar
        self._index_patterns = (
            collect_patterns(program, optimize=optimize, second_order=second_order)
            if use_indexes
            else {}
        )
        self.source = generate_module(
            program,
            use_indexes=use_indexes,
            optimize=optimize,
            second_order=second_order,
            columnar=columnar,
        )
        self._functions: dict[tuple[str, int], object] = {}
        self._batch_functions: dict[tuple[str, int], object] = {}
        self._maps: Optional[dict] = None
        self.indexes: dict[str, dict] = {}
        if maps is not None:
            self.bind(maps)

    def bind(self, maps: dict) -> None:
        """Exec the generated module against concrete map storage.

        Secondary indexes are (re)built from the current map contents, so
        binding a snapshot of a live engine stays consistent.
        """
        self.indexes = {
            index_name(map_name, pattern): {}
            for map_name, patterns in self._index_patterns.items()
            for pattern in patterns
        }
        namespace: dict = {
            "MAPS": maps,
            "INDEXES": self.indexes,
            "_EMPTY": {},
        }
        code = compile(self.source, "<repro-generated-triggers>", "exec")
        exec(code, namespace)  # noqa: S102 - this is the compiler back end
        rebuild = namespace.get("_rebuild_indexes")
        if rebuild is not None:
            rebuild()
        self._maps = maps
        for (relation, sign), trigger in self.program.triggers.items():
            self._functions[(relation, sign)] = namespace[trigger.name]
            self._batch_functions[(relation, sign)] = namespace[
                f"{trigger.name}_batch"
            ]

    def execute(
        self,
        trigger: Trigger,
        values: Sequence,
        maps: dict,
        profiler=None,
    ) -> None:
        if self._maps is None or self._maps is not maps:
            self.bind(maps)
        self._functions[(trigger.relation, trigger.sign)](*values)

    def execute_batch(
        self,
        trigger: Trigger,
        columns: Sequence[Sequence],
        maps: dict,
        profiler=None,
    ) -> None:
        """Apply a whole same-trigger columnar batch with one generated call.

        ``columns`` is the struct-of-arrays layout of
        :class:`~repro.runtime.events.EventBatch`: one parallel list per
        event column.
        """
        if self._maps is None or self._maps is not maps:
            self.bind(maps)
        self._batch_functions[(trigger.relation, trigger.sign)](columns)

    def index_entry_counts(self) -> dict[str, int]:
        """Secondary-index entries currently held, per indexed map."""
        counts: dict[str, int] = {}
        for map_name, patterns in self._index_patterns.items():
            total = 0
            for pattern in patterns:
                buckets = self.indexes.get(index_name(map_name, pattern), {})
                total += sum(len(bucket) for bucket in buckets.values())
            counts[map_name] = total
        return counts
