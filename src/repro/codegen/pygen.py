"""Python trigger-code generation.

Each trigger becomes one module-level function whose parameters are the
event values and whose body is straight-line code over dictionary maps —
loops appear only where the compiled statements iterate map entries (the
paper's ``foreach``).  Maps are bound as default arguments, so the generated
code pays no attribute or global lookups on the hot path.

Every trigger is emitted twice: the per-event function ``on_<kind>_<rel>``
and a *batch* variant ``on_<kind>_<rel>_batch(rows)`` that unpacks the event
parameters in the loop header and runs the same statement body once per row.
The batch variant binds map/index locals once per call (hoisted out of the
row loop) and replaces per-event Python dispatch — engine lookup, argument
unpacking, one function call per event — with a single call per batch; rows
still apply strictly in stream order, so results are identical to the
per-event path.

The generated source is a readable artifact in its own right (the
``binary-size``/profiling experiments measure it); ``generate_module``
returns it as a string and :class:`CompiledExecutor` ``exec``-compiles it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import CodegenError
from repro.algebra.expr import (
    Add,
    AggSum,
    Cmp,
    Const,
    Div,
    Exists,
    Expr,
    Lift,
    MapRef,
    Mul,
    Neg,
    Var,
)
from repro.algebra.simplify import monomials
from repro.compiler.program import (
    CompiledProgram,
    Statement,
    Trigger,
    needs_buffering,
)

_CMP_PY = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class Emitter:
    """An indentation-aware source builder."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0
        self._temp = 0

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def blank(self) -> None:
        self.lines.append("")

    def fresh(self, prefix: str = "t") -> str:
        self._temp += 1
        return f"__{prefix}{self._temp}"

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"

    class _Block:
        def __init__(self, emitter: "Emitter") -> None:
            self.emitter = emitter

        def __enter__(self) -> None:
            self.emitter.indent += 1

        def __exit__(self, *exc) -> None:
            self.emitter.indent -= 1

    def block(self) -> "_Block":
        return Emitter._Block(self)


def map_local(name: str) -> str:
    """The local (default-argument) name a map is bound to."""
    return f"_m_{name}"


def index_name(map_name: str, pattern: tuple[int, ...]) -> str:
    """The INDEXES key / local name for one access pattern of a map."""
    return f"__x_{map_name}_" + "_".join(str(p) for p in pattern)


def collect_patterns(program: CompiledProgram) -> dict[str, set[tuple[int, ...]]]:
    """Access patterns needing secondary indexes (a dry generation pass).

    A pattern is the tuple of key positions bound at a map-loop site; real
    DBToaster calls these the map's *in/out patterns* and maintains one
    index per pattern so loops touch only matching entries.
    """
    patterns: dict[str, set[tuple[int, ...]]] = {}
    scratch = Emitter()
    for trigger in program.triggers.values():
        for statement in trigger.statements:
            generator = _StatementGen(
                statement, scratch, buffered=False, params=trigger.params,
                patterns=patterns, indexes=None,
            )
            generator.run()
    return patterns


def generate_module(program: CompiledProgram, use_indexes: bool = True) -> str:
    """Generate the full trigger module source for a compiled program.

    With ``use_indexes`` (the default, matching production DBToaster),
    maps iterated with partially-bound keys get secondary index
    dictionaries, maintained inline by every writer and used by loops to
    touch only matching entries.
    """
    from repro.compiler.partition import analyze_partitioning

    indexes = collect_patterns(program) if use_indexes else {}
    emitter = Emitter()
    emitter.line('"""Generated delta-processing triggers (do not edit).')
    emitter.line("")
    emitter.line("Produced by repro.codegen.pygen from the compiled program;")
    emitter.line("maps (and secondary indexes) are bound as default arguments")
    emitter.line("at exec time.  Each trigger has a per-event function and a")
    emitter.line("*_batch variant applying a whole row list per call.")
    emitter.line("")
    # Shard-routing metadata: which event column each relation's batches
    # may be hash-partitioned on (see repro.compiler.partition); stamped
    # here so the generated artifact documents its own parallelism.
    for line in analyze_partitioning(program).describe().splitlines():
        emitter.line(line)
    emitter.line('"""')
    emitter.blank()
    emitter.line("def _div(n, d):")
    with emitter.block():
        emitter.line("return 0 if d == 0 else n / d")
    emitter.blank()
    if indexes:
        _generate_index_rebuild(indexes, emitter)
        emitter.blank()
    for key in sorted(program.triggers, key=lambda k: (k[0], -k[1])):
        _generate_trigger(program.triggers[key], emitter, indexes)
        emitter.blank()
    return emitter.source()


def _generate_index_rebuild(
    indexes: dict[str, set[tuple[int, ...]]], emitter: Emitter
) -> None:
    """Reconstruct every index from its base map, in place."""
    emitter.line("def _rebuild_indexes():")
    with emitter.block():
        for map_name in sorted(indexes):
            for pattern in sorted(indexes[map_name]):
                local = index_name(map_name, pattern)
                emitter.line(f"__idx = INDEXES[{local!r}]")
                emitter.line("__idx.clear()")
                emitter.line(f"for __key, __val in MAPS[{map_name!r}].items():")
                with emitter.block():
                    subkey = (
                        f"(__key[{pattern[0]}],)"
                        if len(pattern) == 1
                        else "(" + ", ".join(f"__key[{p}]" for p in pattern) + ")"
                    )
                    emitter.line(
                        f"__idx.setdefault({subkey}, {{}})[__key] = __val"
                    )


def _generate_trigger(
    trigger: Trigger,
    emitter: Emitter,
    indexes: Optional[dict[str, set[tuple[int, ...]]]] = None,
) -> None:
    indexes = indexes or {}
    maps_used = sorted(
        {s.target for s in trigger.statements}
        | {name for s in trigger.statements for name in s.reads()}
    )
    params = list(trigger.params)
    defaults = [f"{map_local(name)}=MAPS[{name!r}]" for name in maps_used]
    for name in maps_used:
        for pattern in sorted(indexes.get(name, ())):
            local = index_name(name, pattern)
            defaults.append(f"{local}=INDEXES[{local!r}]")
    signature = ", ".join(params + defaults)
    emitter.line(f"def {trigger.name}({signature}):")
    with emitter.block():
        if not trigger.statements:
            emitter.line("pass")
        else:
            _emit_trigger_body(trigger, emitter, indexes)
    emitter.blank()
    # The batch variant: the same statement body inside one loop over the
    # row list.  Map/index locals are bound once per call (hoisted out of
    # the loop) and the loop header unpacks the event parameters, so a
    # batch of n events costs one Python call instead of n.
    #
    # When no statement reads a map this trigger writes, each row's deltas
    # are computed against pre-batch state anyway, so scalar-keyed targets
    # additionally accumulate the whole batch's delta in a local and touch
    # their map dictionary once per batch (the Z-set batch-delta shape).
    batch_signature = ", ".join(["__rows"] + defaults)
    emitter.line(f"def {trigger.name}_batch({batch_signature}):")
    with emitter.block():
        if not trigger.statements:
            emitter.line("pass")
            return
        if not params:
            target = "_"
        elif len(params) == 1:
            target = f"{params[0]},"
        else:
            target = ", ".join(params)
        written = {s.target for s in trigger.statements}
        independent = not any(s.reads() & written for s in trigger.statements)
        accs: dict[int, str] = {}
        if independent:
            for position, statement in enumerate(trigger.statements):
                if _accumulates(statement, trigger, indexes):
                    acc = f"__b{position}"
                    accs[position] = acc
                    emitter.line(f"{acc} = 0" if not statement.args else f"{acc} = {{}}")
        if not accs:
            emitter.line(f"for {target} in __rows:")
            with emitter.block():
                _emit_trigger_body(trigger, emitter, indexes)
            return
        emitter.line(f"for {target} in __rows:")
        with emitter.block():
            for position, statement in enumerate(trigger.statements):
                emitter.line(f"# {statement!r}")
                generator = _StatementGen(
                    statement, emitter, buffered=False,
                    params=trigger.params, indexes=indexes,
                    batch_acc=accs.get(position),
                )
                generator.run()
        for position, statement in enumerate(trigger.statements):
            acc = accs.get(position)
            if acc is None:
                continue
            patterns = sorted(indexes.get(statement.target, ()))
            if not statement.args:
                emitter.line(f"if {acc} != 0:")
                with emitter.block():
                    _emit_apply(
                        emitter, target=statement.target, key_code="()",
                        val_code=acc, patterns=patterns, key_parts=None,
                    )
            else:
                emitter.line(f"for __key, __val in {acc}.items():")
                with emitter.block():
                    _emit_apply(
                        emitter, target=statement.target, key_code="__key",
                        val_code="__val", patterns=patterns, key_parts=None,
                    )


def _accumulates(
    statement: Statement,
    trigger: Trigger,
    indexes: dict[str, set[tuple[int, ...]]],
) -> bool:
    """Whether a batch-independent statement accumulates its batch delta
    locally before touching the target map.

    Always worthwhile for scalar targets (a local int add per row).  Keyed
    targets accumulate when keys are expected to repeat across the batch
    (fewer key positions than event parameters — group-by style) or when
    the target maintains secondary indexes (hoists index maintenance out of
    the row loop); occurrence-style maps keyed by the whole event tuple
    apply directly, as accumulation would only duplicate the dictionary
    work.
    """
    if not statement.args:
        return True
    if indexes.get(statement.target):
        return True
    return len(statement.args) < len(trigger.params)


def _emit_trigger_body(
    trigger: Trigger,
    emitter: Emitter,
    indexes: dict[str, set[tuple[int, ...]]],
) -> None:
    """The statements (plus two-phase pending buffers) for one event."""
    buffered = needs_buffering(trigger.statements)
    written = sorted({s.target for s in trigger.statements})
    if buffered:
        for name in written:
            emitter.line(f"__pending_{name} = []")
    for statement in trigger.statements:
        emitter.line(f"# {statement!r}")
        _generate_statement(
            statement, emitter, buffered, trigger.params, indexes
        )
    if buffered:
        for name in written:
            emitter.line(f"for __key, __val in __pending_{name}:")
            with emitter.block():
                _emit_apply(
                    emitter,
                    target=name,
                    key_code="__key",
                    val_code="__val",
                    patterns=sorted(indexes.get(name, ())),
                    key_parts=None,
                )


def _emit_apply(
    emitter: Emitter,
    target: str,
    key_code: str,
    val_code: str,
    patterns: list[tuple[int, ...]],
    key_parts: Optional[list[str]],
) -> None:
    """``target[key] += val`` with zero eviction and index maintenance."""
    local = map_local(target)
    cur = emitter.fresh("c")
    emitter.line(f"{cur} = {local}.get({key_code}, 0) + {val_code}")

    def subkey_code(pattern: tuple[int, ...]) -> str:
        if key_parts is not None:
            parts = [key_parts[p] for p in pattern]
        else:
            parts = [f"{key_code}[{p}]" for p in pattern]
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"

    emitter.line(f"if {cur} == 0:")
    with emitter.block():
        emitter.line(f"{local}.pop({key_code}, None)")
        for pattern in patterns:
            idx = index_name(target, pattern)
            bucket = emitter.fresh("b")
            emitter.line(f"{bucket} = {idx}.get({subkey_code(pattern)})")
            emitter.line(f"if {bucket} is not None:")
            with emitter.block():
                emitter.line(f"{bucket}.pop({key_code}, None)")
                emitter.line(f"if not {bucket}:")
                with emitter.block():
                    emitter.line(f"{idx}.pop({subkey_code(pattern)}, None)")
    emitter.line("else:")
    with emitter.block():
        emitter.line(f"{local}[{key_code}] = {cur}")
        for pattern in patterns:
            idx = index_name(target, pattern)
            emitter.line(
                f"{idx}.setdefault({subkey_code(pattern)}, {{}})"
                f"[{key_code}] = {cur}"
            )


def _generate_statement(
    statement: Statement,
    emitter: Emitter,
    buffered: bool,
    params: tuple[str, ...],
    indexes: Optional[dict[str, set[tuple[int, ...]]]] = None,
) -> None:
    generator = _StatementGen(
        statement, emitter, buffered, params, patterns=None, indexes=indexes
    )
    generator.run()


class _StatementGen:
    """Generates the loops + update for one statement.

    ``patterns`` (when given) collects the access patterns seen at map-loop
    sites instead of using them — the dry pass of index planning.
    ``indexes`` (when given) maps each map to its available patterns; loops
    matching a pattern iterate the index bucket, and updates maintain the
    target's indexes inline.
    ``batch_acc`` (batch-mode only, scalar-keyed statements) names a local
    accumulator receiving the delta instead of the map apply; the caller
    applies the accumulated batch delta once after the row loop.
    """

    def __init__(
        self,
        statement: Statement,
        emitter: Emitter,
        buffered: bool,
        params: tuple[str, ...] = (),
        patterns: Optional[dict[str, set[tuple[int, ...]]]] = None,
        indexes: Optional[dict[str, set[tuple[int, ...]]]] = None,
        batch_acc: Optional[str] = None,
    ):
        self.statement = statement
        self.emitter = emitter
        self.buffered = buffered
        self.params = tuple(params)
        self.patterns = patterns
        self.indexes = indexes or {}
        self.batch_acc = batch_acc
        self.bound: set[str] = set()

    def run(self) -> None:
        expanded = monomials(self.statement.rhs)
        if not expanded:
            return  # identically zero RHS: nothing to emit
        if len(expanded) != 1:
            raise CodegenError(
                f"statement RHS must be a single monomial: {self.statement!r}"
            )
        coeff, factors = expanded[0]
        # Exactly the event parameters are bound on entry; every other
        # variable is bound by loops or lift assignments in the body.
        self.bound = set(self.params)
        terms: list[str] = [] if coeff == 1 else [repr(coeff)]
        self._emit_product(list(factors), terms)

    # -- the recursive product emitter -----------------------------------

    def _emit_product(self, factors: list[Expr], terms: list[str]) -> None:
        """Emit code for a product; recursion nests loops."""
        emitter = self.emitter
        factors = list(factors)
        terms = list(terms)
        while factors:
            factor = factors[0]
            if isinstance(factor, (AggSum, Exists)):
                break  # handled by the dispatch below (flatten or guard)
            if isinstance(factor, Cmp) and self._is_scalar(factor):
                # Comparisons become guards: cheaper than multiplying 0/1
                # and they short-circuit the rest of the statement.
                op = _CMP_PY[factor.op]
                cond = (
                    f"{self._scalar_code(factor.left)} {op} "
                    f"{self._scalar_code(factor.right)}"
                )
                emitter.line(f"if {cond}:")
                with emitter.block():
                    self._emit_product(factors[1:], terms)
                return
            if self._is_scalar(factor):
                terms.append(self._scalar_code(factor))
                factors.pop(0)
                continue
            break
        if not factors:
            self._emit_update(terms)
            return

        factor = factors.pop(0)
        rest = factors

        if isinstance(factor, Lift):
            if factor.var in self.bound:
                cond = f"{factor.var} == {self._scalar_code(factor.body)}"
                emitter.line(f"if {cond}:")
                with emitter.block():
                    self._emit_product(rest, list(terms))
                return
            emitter.line(f"{factor.var} = {self._scalar_code(factor.body)}")
            self.bound.add(factor.var)
            self._emit_product(rest, list(terms))
            return

        if isinstance(factor, MapRef):
            self._emit_map_loop(factor, rest, terms)
            return

        if isinstance(factor, AggSum):
            # Linear position: flatten (grouping is reconstituted by the
            # target accumulation; summed variables are invisible outside).
            inner = _factors_of(factor.body)
            self._emit_product(inner + rest, list(terms))
            return

        if isinstance(factor, Exists):
            inner = factor.body
            from repro.algebra.schema import output_vars

            unbound = [v for v in output_vars(inner) if v not in self.bound]
            if not unbound:
                # Scalar existence test: accumulate the body value, then
                # guard the rest of the statement on it being non-zero.
                acc = self._scalar_aggregate(inner)
                emitter.line(f"if {acc} != 0:")
                with emitter.block():
                    self._emit_product(rest, list(terms))
                return
            if isinstance(inner, MapRef):
                self._emit_map_loop(inner, rest, terms, cap_value=True)
                return
            raise CodegenError(f"unsupported Exists structure: {factor!r}")

        raise CodegenError(
            f"cannot generate code for factor {factor!r} in {self.statement!r}"
        )

    def _emit_map_loop(
        self,
        ref: MapRef,
        rest: list[Expr],
        terms: list[str],
        cap_value: bool = False,
    ) -> None:
        emitter = self.emitter
        local = map_local(ref.name)
        filters: list[tuple[int, str]] = []
        bindings: list[tuple[int, str]] = []
        seen_here: dict[str, int] = {}
        for position, arg in enumerate(ref.args):
            if isinstance(arg, Const):
                filters.append((position, repr(arg.value)))
            elif arg.name in self.bound:
                filters.append((position, arg.name))
            elif arg.name in seen_here:
                filters.append((position, f"__e[{seen_here[arg.name]}]"))
            else:
                seen_here[arg.name] = position
                bindings.append((position, arg.name))

        key_var = emitter.fresh("e")
        val_var = emitter.fresh("v")
        arity = len(ref.args)
        if arity == 0:
            value = f"{local}.get((), 0)"
            term = f"(1 if {value} != 0 else 0)" if cap_value else value
            self._emit_product(rest, terms + [term])
            return

        # Rebind the element variable name used by duplicate-position filters.
        filters = [(p, c.replace("__e[", f"{key_var}[")) for p, c in filters]

        pattern = tuple(sorted(p for p, _ in filters))
        partially_bound = bool(bindings) and bool(filters)
        if partially_bound and self.patterns is not None:
            self.patterns.setdefault(ref.name, set()).add(pattern)

        use_index = (
            partially_bound and pattern in self.indexes.get(ref.name, ())
        )
        if use_index:
            # Probe the secondary index: only matching entries are touched.
            subkey_parts = [c for _, c in sorted(filters)]
            subkey = (
                f"({subkey_parts[0]},)"
                if len(subkey_parts) == 1
                else "(" + ", ".join(subkey_parts) + ")"
            )
            idx = index_name(ref.name, pattern)
            emitter.line(
                f"for {key_var}, {val_var} in {idx}.get({subkey}, _EMPTY).items():"
            )
            remaining_filters: list[tuple[int, str]] = []
        else:
            emitter.line(f"for {key_var}, {val_var} in {local}.items():")
            remaining_filters = filters
        with emitter.block():
            conditions = [f"{key_var}[{p}] == {c}" for p, c in remaining_filters]
            if conditions:
                emitter.line(f"if not ({' and '.join(conditions)}): continue")
            for position, var in bindings:
                emitter.line(f"{var} = {key_var}[{position}]")
                self.bound.add(var)
            term = f"(1 if {val_var} != 0 else 0)" if cap_value else val_var
            self._emit_product(rest, terms + [term])
        for _, var in bindings:
            self.bound.discard(var)

    def _emit_update(self, terms: list[str]) -> None:
        emitter = self.emitter
        statement = self.statement
        value = " * ".join(terms) if terms else "1"
        if self.batch_acc is not None and not statement.args:
            emitter.line(f"{self.batch_acc} += {value}")
            return
        if self.batch_acc is not None:
            val_var = emitter.fresh("d")
            emitter.line(f"{val_var} = {value}")
            emitter.line(f"if {val_var} != 0:")
            with emitter.block():
                key_var = emitter.fresh("k")
                emitter.line(f"{key_var} = {self._key_code()}")
                emitter.line(
                    f"{self.batch_acc}[{key_var}] = "
                    f"{self.batch_acc}.get({key_var}, 0) + {val_var}"
                )
            return
        val_var = emitter.fresh("d")
        emitter.line(f"{val_var} = {value}")
        emitter.line(f"if {val_var} != 0:")
        with emitter.block():
            key = self._key_code()
            if self.buffered:
                emitter.line(
                    f"__pending_{statement.target}.append(({key}, {val_var}))"
                )
                return
            key_parts = [self._scalar_code(arg) for arg in statement.args]
            _emit_apply(
                emitter,
                target=statement.target,
                key_code=key,
                val_code=val_var,
                patterns=sorted(self.indexes.get(statement.target, ())),
                key_parts=key_parts,
            )

    def _key_code(self) -> str:
        args = self.statement.args
        if not args:
            return "()"
        parts = [self._scalar_code(arg) for arg in args]
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"

    # -- scalar expressions ------------------------------------------------

    def _is_scalar(self, expr: Expr) -> bool:
        """True when the factor has no unbound outputs (pure value)."""
        if isinstance(expr, (Const, Var, Cmp, Div)):
            return True
        if isinstance(expr, MapRef):
            return all(
                isinstance(a, Const) or a.name in self.bound for a in expr.args
            )
        if isinstance(expr, Lift):
            return False
        if isinstance(expr, (AggSum, Exists)):
            from repro.algebra.schema import output_vars

            return all(v in self.bound for v in output_vars(expr))
        if isinstance(expr, (Mul, Add, Neg)):
            return all(self._is_scalar(c) for c in expr.children())
        return False

    def _scalar_code(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, Var):
            return expr.name
        if isinstance(expr, Neg):
            return f"(-{self._scalar_code(expr.body)})"
        if isinstance(expr, Add):
            return "(" + " + ".join(self._scalar_code(t) for t in expr.terms) + ")"
        if isinstance(expr, Mul):
            return "(" + " * ".join(self._scalar_code(f) for f in expr.factors) + ")"
        if isinstance(expr, Div):
            return f"_div({self._scalar_code(expr.left)}, {self._scalar_code(expr.right)})"
        if isinstance(expr, Cmp):
            op = _CMP_PY[expr.op]
            return (
                f"(1 if {self._scalar_code(expr.left)} {op} "
                f"{self._scalar_code(expr.right)} else 0)"
            )
        if isinstance(expr, MapRef):
            local = map_local(expr.name)
            if not expr.args:
                return f"{local}.get((), 0)"
            parts = [self._scalar_code(a) for a in expr.args]
            key = f"({parts[0]},)" if len(parts) == 1 else "(" + ", ".join(parts) + ")"
            return f"{local}.get({key}, 0)"
        if isinstance(expr, Exists):
            return f"(1 if {self._scalar_aggregate(expr.body)} != 0 else 0)"
        if isinstance(expr, AggSum):
            return self._scalar_aggregate(expr)
        raise CodegenError(f"unsupported scalar expression {expr!r}")

    def _scalar_aggregate(self, expr: Expr) -> str:
        """Evaluate a nested aggregate into a temp accumulator variable.

        Used for non-linear positions (comparison operands, Exists bodies):
        emits accumulation loops *before* the current line and returns the
        accumulator's name.  Sum bodies accumulate term by term.
        """
        acc = self.emitter.fresh("acc")
        self.emitter.line(f"{acc} = 0")
        body = expr.body if isinstance(expr, AggSum) else expr
        saved_bound = set(self.bound)
        collector = _AccumulatorGen(self, acc)
        for coeff, factors in monomials(body):
            prefix = [] if coeff == 1 else [Const(coeff)]
            collector.emit(prefix + list(factors))
            self.bound = set(saved_bound)
        return acc


class _AccumulatorGen:
    """Emits ``acc += value`` loops for a nested (scalar) aggregate."""

    def __init__(self, parent: _StatementGen, acc: str) -> None:
        self.parent = parent
        self.acc = acc

    def emit(self, factors: list[Expr]) -> None:
        parent = self.parent
        emitter = parent.emitter

        # Reuse the product emitter, but accumulate instead of updating the
        # target map: temporarily swap _emit_update.
        original = parent._emit_update

        def accumulate(terms: list[str]) -> None:
            value = " * ".join(terms) if terms else "1"
            emitter.line(f"{self.acc} += {value}")

        parent._emit_update = accumulate  # type: ignore[method-assign]
        try:
            parent._emit_product(list(factors), [])
        finally:
            parent._emit_update = original  # type: ignore[method-assign]


def _factors_of(expr: Expr) -> list[Expr]:
    if isinstance(expr, Mul):
        return list(expr.factors)
    return [expr]




class CompiledExecutor:
    """Compiles the trigger module and dispatches events to its functions.

    ``use_indexes=False`` disables secondary index generation (the access-
    pattern ablation benchmark).
    """

    mode = "compiled"

    def __init__(
        self,
        program: CompiledProgram,
        maps: Optional[dict] = None,
        use_indexes: bool = True,
    ):
        self.program = program
        self.use_indexes = use_indexes
        self._index_patterns = (
            collect_patterns(program) if use_indexes else {}
        )
        self.source = generate_module(program, use_indexes=use_indexes)
        self._functions: dict[tuple[str, int], object] = {}
        self._batch_functions: dict[tuple[str, int], object] = {}
        self._maps: Optional[dict] = None
        self.indexes: dict[str, dict] = {}
        if maps is not None:
            self.bind(maps)

    def bind(self, maps: dict) -> None:
        """Exec the generated module against concrete map storage.

        Secondary indexes are (re)built from the current map contents, so
        binding a snapshot of a live engine stays consistent.
        """
        self.indexes = {
            index_name(map_name, pattern): {}
            for map_name, patterns in self._index_patterns.items()
            for pattern in patterns
        }
        namespace: dict = {
            "MAPS": maps,
            "INDEXES": self.indexes,
            "_EMPTY": {},
        }
        code = compile(self.source, "<repro-generated-triggers>", "exec")
        exec(code, namespace)  # noqa: S102 - this is the compiler back end
        rebuild = namespace.get("_rebuild_indexes")
        if rebuild is not None:
            rebuild()
        self._maps = maps
        for (relation, sign), trigger in self.program.triggers.items():
            self._functions[(relation, sign)] = namespace[trigger.name]
            self._batch_functions[(relation, sign)] = namespace[
                f"{trigger.name}_batch"
            ]

    def execute(
        self,
        trigger: Trigger,
        values: Sequence,
        maps: dict,
        profiler=None,
    ) -> None:
        if self._maps is None or self._maps is not maps:
            self.bind(maps)
        self._functions[(trigger.relation, trigger.sign)](*values)

    def execute_batch(
        self,
        trigger: Trigger,
        rows: Sequence[Sequence],
        maps: dict,
        profiler=None,
    ) -> None:
        """Apply a whole run of same-trigger rows with one generated call."""
        if self._maps is None or self._maps is not maps:
            self.bind(maps)
        self._batch_functions[(trigger.relation, trigger.sign)](rows)
