"""Code generation back ends — renderers of the shared trigger IR.

Both back ends render the same typed imperative IR (:mod:`repro.ir`), so
they agree on loop structure, update semantics and optimisation by
construction:

* :mod:`repro.codegen.pygen` — renders IR to straight-line Python trigger
  functions and ``exec``-compiles them.  This is the reproduction of the
  paper's C++ generation + native compilation step: all query-plan
  interpretation is gone, leaving dictionary probes and arithmetic.
* :mod:`repro.codegen.cppgen` — renders the equivalent C++ source as a
  text artifact (header + handlers), mirroring the listings shown in the
  paper's Section 3.  It is not compiled or executed here.
"""

from repro.codegen.pygen import CompiledExecutor, generate_module
from repro.codegen.cppgen import generate_cpp

__all__ = ["CompiledExecutor", "generate_module", "generate_cpp"]
