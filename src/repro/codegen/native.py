"""Native C column-kernel backend for :class:`ColumnarMap` (the PR 5
follow-up named by the ROADMAP's "Native execution backend" item).

PR 5 measured the columnar keyed path at a 2.5-5x CPU penalty over dict
storage because every probe — hash, bucket walk, column read — runs as
Python bytecode.  This module closes the paper's compilation loop for
the storage hot path: at ``compile`` time it renders a small C kernel
for the program's *native-eligible* columnar maps (int64 key columns,
``int``/``float`` value column, arity within the generated entry-point
range — see :func:`repro.compiler.storage._native_eligibility`), builds
it with the detected toolchain, loads it through cffi (ctypes when cffi
is unavailable), and attaches it underneath ``ColumnarMap`` as a
drop-in probe engine:

* ``cm_add_{arity}_{q|d}`` — the single-probe GMR update (hash, one
  bucket walk, add-with-overflow-check, zero-eviction) that replaces
  ~40 Python bytecodes per event with one foreign call;
* ``cm_get_{arity}_{q|d}`` / ``cm_set`` / ``cm_del`` — point lookups
  and dict-protocol writes;
* ``cm_scan_column`` — the fused scan entry point: one call copies a
  live-only, insertion-ordered column into a Python ``array``, feeding
  the restate-style full-map traversals the second-order batch path
  performs per batch.

The kernel owns its own slot/bucket memory (C-side ``malloc``), so the
map's Python columns are freed on attach and
:meth:`ColumnarMap.storage_bytes` reports ``cm_bytes`` instead.

**Fallback semantics** are the load-bearing part (see
``docs/NATIVE.md``): every generated wrapper method guards its fast
path with exact type checks, and anything the packed representation
cannot round-trip — an int beyond int64, an int stored into a float
column, a non-tuple key, an exotic key part — *ejects* the map from
the kernel mid-stream: the C entries are snapshotted in insertion
order, rebuilt into the pure-Python columnar layout, and the operation
is retried there, so maps stay repr-identical to the pure path under
any input.  With no toolchain at all (the CI container),
:func:`probe_toolchain` reports ``none`` and everything runs pure
Python; the decision is stamped into the compile trace, the generated
module header, and BENCH metadata.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import weakref
from array import array
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Optional

from repro.codegen.pygen import CompiledExecutor
from repro.compiler.program import CompiledProgram
from repro.compiler.storage import NATIVE_MAX_ARITY, analyze_storage

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class NativeBuildError(Exception):
    """The toolchain was found but compiling/loading the kernel failed."""


# ---------------------------------------------------------------------------
# Toolchain probing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ToolchainProbe:
    """One cached answer to "can this host build and load the kernel?"."""

    available: bool
    compiler: str  # resolved compiler path ("" when unavailable)
    version: str  # first line of `cc --version` ("" when unavailable)
    loader: str  # "cffi" | "ctypes" | ""
    reason: str  # why unavailable ("" when available)

    def describe(self) -> str:
        """One-line summary for compile traces and module headers."""
        if not self.available:
            return f"none: pure-python fallback ({self.reason})"
        return f"{self.version} via {self.loader}"


_PROBE: Optional[ToolchainProbe] = None


def probe_toolchain(refresh: bool = False) -> ToolchainProbe:
    """Detect (once per process) the C compiler and FFI loader.

    Honours ``CC`` / ``REPRO_NATIVE_CC`` for the compiler,
    ``REPRO_NATIVE_LOADER=ctypes`` to skip cffi, and
    ``REPRO_NATIVE=off`` to disable the backend outright (what the CI
    forced-fallback lane sets).
    """
    global _PROBE
    if _PROBE is not None and not refresh:
        return _PROBE
    _PROBE = _probe_toolchain()
    return _PROBE


def _probe_toolchain() -> ToolchainProbe:
    if os.environ.get("REPRO_NATIVE", "").lower() in ("0", "off", "no", "false"):
        return ToolchainProbe(False, "", "", "", "disabled by REPRO_NATIVE")
    compiler = None
    for candidate in (
        os.environ.get("REPRO_NATIVE_CC"),
        os.environ.get("CC"),
        "gcc",
        "cc",
        "clang",
    ):
        if candidate and shutil.which(candidate):
            compiler = shutil.which(candidate)
            break
    if compiler is None:
        return ToolchainProbe(False, "", "", "", "no C compiler on PATH")
    try:
        out = subprocess.run(
            [compiler, "--version"],
            capture_output=True,
            text=True,
            timeout=30,
        )
        version = (out.stdout or out.stderr).splitlines()[0].strip()
    except Exception as exc:  # unrunnable compiler counts as absent
        return ToolchainProbe(
            False, "", "", "", f"{compiler} --version failed: {exc}"
        )
    loader = "ctypes"
    if os.environ.get("REPRO_NATIVE_LOADER", "").lower() != "ctypes":
        try:
            import cffi  # noqa: F401

            loader = "cffi"
        except ImportError:
            loader = "ctypes"
    return ToolchainProbe(True, compiler, version, loader, "")


# ---------------------------------------------------------------------------
# C kernel rendering
# ---------------------------------------------------------------------------

#: (arity, value kind letter) pairs a kernel is generated for.
Signature = tuple[int, str]

_C_PRELUDE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define CM_FREE 0
#define CM_TOMB (-1)
#define CM_MAX_ARITY %(max_arity)d

typedef struct CM {
    int64_t arity;
    int64_t vkind;       /* 'q' (int64) or 'd' (double) values */
    int64_t used;        /* occupied slots, dead included */
    int64_t size;        /* live entries */
    int64_t cap;         /* allocated slots */
    int64_t fill;        /* occupied buckets, tombstones included */
    int64_t mask;        /* bucket-table length - 1 */
    int64_t *keys[CM_MAX_ARITY];
    int64_t *hashes;
    unsigned char *live;
    int64_t *values;     /* doubles stored bitwise */
    int64_t *buckets;    /* slot+1; CM_FREE / CM_TOMB */
} CM;

/* splitmix64 finaliser, folded across key parts; independent of (and
 * never observable from) Python's hash — ejection recomputes Python
 * hashes from the key values. */
static uint64_t cm_mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

static int64_t cm_hash(const int64_t *ks, int64_t arity) {
    uint64_t h = 0x345678ULL;
    for (int64_t i = 0; i < arity; i++)
        h = cm_mix(h ^ (uint64_t)ks[i]);
    return (int64_t)h;
}

/* CPython-style perturbed probe.  Returns the slot of the matching
 * live entry, or -1 with *bucket_out set to the bucket an insert
 * should claim (first tombstone on the walk, else the free bucket). */
static int64_t cm_find(const CM *m, const int64_t *ks, int64_t h,
                       int64_t *bucket_out) {
    uint64_t mask = (uint64_t)m->mask;
    uint64_t i = (uint64_t)h & mask;
    uint64_t perturb = (uint64_t)h;
    int64_t first_tomb = -1;
    for (;;) {
        int64_t b = m->buckets[i];
        if (b == CM_FREE) {
            *bucket_out = first_tomb >= 0 ? first_tomb : (int64_t)i;
            return -1;
        }
        if (b == CM_TOMB) {
            if (first_tomb < 0)
                first_tomb = (int64_t)i;
        } else {
            int64_t slot = b - 1;
            if (m->hashes[slot] == h) {
                int eq = 1;
                for (int64_t k = 0; k < m->arity; k++)
                    if (m->keys[k][slot] != ks[k]) { eq = 0; break; }
                if (eq) { *bucket_out = (int64_t)i; return slot; }
            }
        }
        perturb >>= 5;
        i = (5 * i + perturb + 1) & mask;
    }
}

/* Allocate-first, swap-on-success: a failed calloc leaves the old
 * (still valid) table in place and returns 1, and callers treat that
 * as "skip the resize", never as corruption. */
static int cm_rebuild_buckets(CM *m) {
    int64_t cap = 8;
    while (cap < 2 * (m->size + 1))
        cap <<= 1;
    cap <<= 1;  /* load factor <= ~1/4 after rebuild */
    int64_t *buckets = (int64_t *)calloc((size_t)cap, sizeof(int64_t));
    if (!buckets)
        return 1;
    free(m->buckets);
    m->buckets = buckets;
    m->mask = cap - 1;
    m->fill = m->size;
    for (int64_t slot = 0; slot < m->used; slot++) {
        if (!m->live[slot])
            continue;
        uint64_t mask = (uint64_t)m->mask;
        uint64_t h = (uint64_t)m->hashes[slot];
        uint64_t i = h & mask;
        uint64_t perturb = h;
        while (m->buckets[i] != CM_FREE) {
            perturb >>= 5;
            i = (5 * i + perturb + 1) & mask;
        }
        m->buckets[i] = slot + 1;
    }
    return 0;
}

static int cm_grow_slots(CM *m) {
    int64_t cap = m->cap ? m->cap * 2 : 8;
    for (int64_t k = 0; k < m->arity; k++) {
        int64_t *col =
            (int64_t *)realloc(m->keys[k], (size_t)cap * sizeof(int64_t));
        if (!col)
            return 2;
        m->keys[k] = col;
    }
    int64_t *hashes =
        (int64_t *)realloc(m->hashes, (size_t)cap * sizeof(int64_t));
    if (!hashes)
        return 2;
    m->hashes = hashes;
    unsigned char *live = (unsigned char *)realloc(m->live, (size_t)cap);
    if (!live)
        return 2;
    m->live = live;
    int64_t *values =
        (int64_t *)realloc(m->values, (size_t)cap * sizeof(int64_t));
    if (!values)
        return 2;
    m->values = values;
    m->cap = cap;
    return 0;
}

/* Drop dead slots, preserving insertion order (iteration is a linear
 * slot scan, so tombstone debt would otherwise leak into every scan).
 * The replacement bucket table is allocated before anything moves, so
 * an allocation failure just skips the compaction. */
static void cm_compact(CM *m) {
    int64_t cap = 8;
    while (cap < 2 * (m->size + 1))
        cap <<= 1;
    cap <<= 1;
    int64_t *buckets = (int64_t *)calloc((size_t)cap, sizeof(int64_t));
    if (!buckets)
        return;
    int64_t w = 0;
    for (int64_t r = 0; r < m->used; r++) {
        if (!m->live[r])
            continue;
        if (w != r) {
            for (int64_t k = 0; k < m->arity; k++)
                m->keys[k][w] = m->keys[k][r];
            m->hashes[w] = m->hashes[r];
            m->values[w] = m->values[r];
        }
        m->live[w] = 1;
        w++;
    }
    m->used = w;
    free(m->buckets);
    m->buckets = buckets;
    m->mask = cap - 1;
    m->fill = m->size;
    for (int64_t slot = 0; slot < m->used; slot++) {
        uint64_t mask = (uint64_t)m->mask;
        uint64_t h = (uint64_t)m->hashes[slot];
        uint64_t i = h & mask;
        uint64_t perturb = h;
        while (m->buckets[i] != CM_FREE) {
            perturb >>= 5;
            i = (5 * i + perturb + 1) & mask;
        }
        m->buckets[i] = slot + 1;
    }
}

/* Failure discipline: every return-2 path fires *before* any logical
 * mutation, so Python can eject the map and retry the operation on the
 * pure path without double-applying the delta. */
static int cm_append(CM *m, const int64_t *ks, int64_t h, int64_t bucket,
                     int64_t value_bits) {
    int was_free = m->buckets[bucket] == CM_FREE;
    if (was_free && 3 * (m->fill + 1) >= 2 * (m->mask + 1)) {
        if (cm_rebuild_buckets(m) == 0) {
            int64_t fresh;
            cm_find(m, ks, h, &fresh);  /* key absent: yields the bucket */
            bucket = fresh;
        } else if (m->fill + 2 >= m->mask + 1) {
            return 2;  /* table nearly full and ungrowable */
        }
    }
    if (m->used == m->cap && cm_grow_slots(m))
        return 2;
    int64_t slot = m->used;
    for (int64_t k = 0; k < m->arity; k++)
        m->keys[k][slot] = ks[k];
    m->hashes[slot] = h;
    m->live[slot] = 1;
    m->values[slot] = value_bits;
    if (m->buckets[bucket] == CM_FREE)
        m->fill++;
    m->buckets[bucket] = slot + 1;
    m->used++;
    m->size++;
    return 0;
}

static void cm_kill(CM *m, int64_t slot, int64_t bucket) {
    m->live[slot] = 0;
    m->buckets[bucket] = CM_TOMB;
    m->size--;
    if (m->used > 64 && m->used > 2 * m->size)
        cm_compact(m);
}

CM *cm_new(int arity, int vkind) {
    if (arity < 1 || arity > CM_MAX_ARITY)
        return NULL;
    CM *m = (CM *)calloc(1, sizeof(CM));
    if (!m)
        return NULL;
    m->arity = arity;
    m->vkind = vkind;
    m->buckets = (int64_t *)calloc(8, sizeof(int64_t));
    if (!m->buckets) {
        free(m);
        return NULL;
    }
    m->mask = 7;
    return m;
}

static void cm_release_arrays(CM *m) {
    for (int64_t k = 0; k < m->arity; k++) {
        free(m->keys[k]);
        m->keys[k] = NULL;
    }
    free(m->hashes);  m->hashes = NULL;
    free(m->live);    m->live = NULL;
    free(m->values);  m->values = NULL;
    free(m->buckets); m->buckets = NULL;
}

void cm_free(CM *m) {
    if (!m)
        return;
    cm_release_arrays(m);
    free(m);
}

long long cm_len(const CM *m) { return m->size; }

long long cm_bytes(const CM *m) {
    long long per_slot = (m->arity + 2) * 8 + 1; /* keys + hash + value + live */
    return (long long)sizeof(CM) + m->cap * per_slot + (m->mask + 1) * 8;
}

int cm_clear(CM *m) {
    int64_t *buckets = (int64_t *)calloc(8, sizeof(int64_t));
    if (!buckets)
        return 2;  /* alloc-first: the map is untouched on failure */
    cm_release_arrays(m);
    m->buckets = buckets;
    m->used = m->size = m->cap = m->fill = 0;
    m->mask = 7;
    return 0;
}

CM *cm_clone(const CM *m) {
    CM *c = (CM *)calloc(1, sizeof(CM));
    if (!c)
        return NULL;
    *c = *m;
    for (int64_t k = 0; k < CM_MAX_ARITY; k++)
        c->keys[k] = NULL;
    c->hashes = NULL; c->live = NULL; c->values = NULL; c->buckets = NULL;
    if (m->cap) {
        for (int64_t k = 0; k < m->arity; k++) {
            c->keys[k] = (int64_t *)malloc((size_t)m->cap * sizeof(int64_t));
            if (!c->keys[k]) { cm_free(c); return NULL; }
            memcpy(c->keys[k], m->keys[k], (size_t)m->used * sizeof(int64_t));
        }
        c->hashes = (int64_t *)malloc((size_t)m->cap * sizeof(int64_t));
        c->live = (unsigned char *)malloc((size_t)m->cap);
        c->values = (int64_t *)malloc((size_t)m->cap * sizeof(int64_t));
        if (!c->hashes || !c->live || !c->values) { cm_free(c); return NULL; }
        memcpy(c->hashes, m->hashes, (size_t)m->used * sizeof(int64_t));
        memcpy(c->live, m->live, (size_t)m->used);
        memcpy(c->values, m->values, (size_t)m->used * sizeof(int64_t));
    }
    c->buckets = (int64_t *)malloc((size_t)(m->mask + 1) * sizeof(int64_t));
    if (!c->buckets) { cm_free(c); return NULL; }
    memcpy(c->buckets, m->buckets, (size_t)(m->mask + 1) * sizeof(int64_t));
    return c;
}

/* Fused scan: copy one live-only column, insertion-ordered, into `out`
 * (a Python array's buffer).  pos >= 0 selects a key column, pos < 0
 * the value column (bitwise, so it lands in array('q') or array('d')
 * untranslated).  Returns the number of entries written. */
long long cm_scan_column(const CM *m, int pos, void *out) {
    int64_t *dst = (int64_t *)out;
    const int64_t *src = pos >= 0 ? m->keys[pos] : m->values;
    int64_t w = 0;
    if (m->used == m->size) {  /* no tombstones: straight memcpy */
        memcpy(dst, src, (size_t)m->used * sizeof(int64_t));
        return m->used;
    }
    for (int64_t r = 0; r < m->used; r++)
        if (m->live[r])
            dst[w++] = src[r];
    return w;
}

/* Fused scan/aggregate for restate loops over int-valued maps:
 *     sum over live entries of  value * keys[mulpos...] * cmul
 * restricted to entries passing every (fpos, fop, fthr) comparison
 * (opcodes 0 '>', 1 '>=', 2 '<', 3 '<=', 4 '==', 5 '!=').  Thresholds
 * arrive as doubles; any filtered key outside the exactly-representable
 * +/-2^53 window bails out (return 1), as does any int64 overflow in
 * the products or the running sum — the caller then replays the loop
 * in Python, whose arbitrary-precision arithmetic is the reference.
 * Returns 0 with the sum in *out on success. */
#define CM_EXACT_DOUBLE (1LL << 53)
int cm_reduce_q(const CM *m,
                const long long *mulpos, long long nmul,
                const long long *fpos, const long long *fops,
                const double *fthr, long long nfil,
                long long cmul, long long *out) {
    int64_t sum = 0;
    int dense = m->used == m->size;
    for (int64_t r = 0; r < m->used; r++) {
        if (!dense && !m->live[r])
            continue;
        int pass = 1;
        for (int64_t f = 0; f < nfil; f++) {
            int64_t k = m->keys[fpos[f]][r];
            if (k > CM_EXACT_DOUBLE || k < -CM_EXACT_DOUBLE)
                return 1;
            double dk = (double)k, t = fthr[f];
            int ok;
            switch ((int)fops[f]) {
                case 0: ok = dk > t; break;
                case 1: ok = dk >= t; break;
                case 2: ok = dk < t; break;
                case 3: ok = dk <= t; break;
                case 4: ok = dk == t; break;
                default: ok = dk != t; break;
            }
            if (!ok) { pass = 0; break; }
        }
        if (!pass)
            continue;
        int64_t term = m->values[r];
        for (int64_t j = 0; j < nmul; j++)
            if (__builtin_mul_overflow(term, m->keys[mulpos[j]][r], &term))
                return 1;
        if (__builtin_mul_overflow(term, (int64_t)cmul, &term))
            return 1;
        if (__builtin_add_overflow(sum, term, &sum))
            return 1;
    }
    *out = sum;
    return 0;
}
"""

_C_ADD_Q = r"""
int cm_add_%(arity)d_q(CM *m, %(key_params)s, long long v, long long *out) {
    int64_t ks[%(arity)d] = {%(key_names)s};
    int64_t h = cm_hash(ks, %(arity)d);
    int64_t bucket;
    int64_t slot = cm_find(m, ks, h, &bucket);
    if (slot >= 0) {
        int64_t nv;
        if (__builtin_add_overflow(m->values[slot], (int64_t)v, &nv))
            return 1;  /* value overflow: eject to boxed Python column */
        if (nv == 0) {
            *out = 0;
            cm_kill(m, slot, bucket);
            return 0;
        }
        m->values[slot] = nv;
        *out = nv;
        return 0;
    }
    if (v == 0) {
        *out = 0;
        return 0;
    }
    *out = v;
    return cm_append(m, ks, h, bucket, (int64_t)v);
}
"""

_C_ADD_D = r"""
int cm_add_%(arity)d_d(CM *m, %(key_params)s, double v, double *out) {
    int64_t ks[%(arity)d] = {%(key_names)s};
    int64_t h = cm_hash(ks, %(arity)d);
    int64_t bucket;
    int64_t slot = cm_find(m, ks, h, &bucket);
    double nv;
    if (slot >= 0) {
        double cur;
        memcpy(&cur, &m->values[slot], 8);
        nv = cur + v;
        if (nv == 0.0) {  /* -0.0 evicts too, matching the pure path */
            *out = 0.0;
            cm_kill(m, slot, bucket);
            return 0;
        }
        memcpy(&m->values[slot], &nv, 8);
        *out = nv;
        return 0;
    }
    if (v == 0.0) {
        *out = 0.0;
        return 0;
    }
    int64_t bits;
    memcpy(&bits, &v, 8);
    *out = v;
    return cm_append(m, ks, h, bucket, bits);
}
"""

_C_GET_Q = r"""
int cm_get_%(arity)d_q(const CM *m, %(key_params)s, long long *out) {
    int64_t ks[%(arity)d] = {%(key_names)s};
    int64_t bucket;
    int64_t slot = cm_find(m, ks, cm_hash(ks, %(arity)d), &bucket);
    if (slot < 0)
        return 0;
    *out = m->values[slot];
    return 1;
}
"""

_C_GET_D = r"""
int cm_get_%(arity)d_d(const CM *m, %(key_params)s, double *out) {
    int64_t ks[%(arity)d] = {%(key_names)s};
    int64_t bucket;
    int64_t slot = cm_find(m, ks, cm_hash(ks, %(arity)d), &bucket);
    if (slot < 0)
        return 0;
    memcpy(out, &m->values[slot], 8);
    return 1;
}
"""

_C_SET_Q = r"""
int cm_set_%(arity)d_q(CM *m, %(key_params)s, long long v) {
    int64_t ks[%(arity)d] = {%(key_names)s};
    int64_t h = cm_hash(ks, %(arity)d);
    int64_t bucket;
    int64_t slot = cm_find(m, ks, h, &bucket);
    if (slot >= 0) {
        m->values[slot] = (int64_t)v;
        return 0;
    }
    return cm_append(m, ks, h, bucket, (int64_t)v);
}
"""

_C_SET_D = r"""
int cm_set_%(arity)d_d(CM *m, %(key_params)s, double v) {
    int64_t ks[%(arity)d] = {%(key_names)s};
    int64_t h = cm_hash(ks, %(arity)d);
    int64_t bucket;
    int64_t slot = cm_find(m, ks, h, &bucket);
    int64_t bits;
    memcpy(&bits, &v, 8);
    if (slot >= 0) {
        m->values[slot] = bits;
        return 0;
    }
    return cm_append(m, ks, h, bucket, bits);
}
"""

_C_DEL = r"""
int cm_del_%(arity)d(CM *m, %(key_params)s) {
    int64_t ks[%(arity)d] = {%(key_names)s};
    int64_t bucket;
    int64_t slot = cm_find(m, ks, cm_hash(ks, %(arity)d), &bucket);
    if (slot < 0)
        return 0;
    cm_kill(m, slot, bucket);
    return 1;
}
"""


def render_kernel_source(
    signatures: frozenset[Signature], note: str = ""
) -> str:
    """Render the C kernel for one set of (arity, value-kind) signatures.

    The core (struct, hashing, probing, growth) is signature-independent;
    per-signature ``cm_add/get/set/del`` entry points take their key
    parts as scalar C arguments so a probe is a single foreign call with
    no intermediate Python tuple packing.
    """
    parts = [
        "/* Generated ColumnarMap kernel — repro.codegen.native.",
        " * Regenerate via render_kernel_source(); do not edit builds",
        " * in the cache directory by hand.",
    ]
    if note:
        parts.append(f" * {note}")
    parts.append(" */")
    parts.append(_C_PRELUDE % {"max_arity": NATIVE_MAX_ARITY})
    arities = sorted({arity for arity, _ in signatures})
    for arity in arities:
        subs = {
            "arity": arity,
            "key_params": ", ".join(
                f"long long k{i}" for i in range(arity)
            ),
            "key_names": ", ".join(f"k{i}" for i in range(arity)),
        }
        parts.append(_C_DEL % subs)
        for _, vkind in sorted(sig for sig in signatures if sig[0] == arity):
            if vkind == "q":
                parts.append(_C_ADD_Q % subs)
                parts.append(_C_GET_Q % subs)
                parts.append(_C_SET_Q % subs)
            else:
                parts.append(_C_ADD_D % subs)
                parts.append(_C_GET_D % subs)
                parts.append(_C_SET_D % subs)
    return "\n".join(parts)


def render_cdef(signatures: frozenset[Signature]) -> str:
    """The cffi ``cdef`` declarations matching the rendered kernel."""
    lines = [
        "typedef struct CM CM;",
        "CM *cm_new(int arity, int vkind);",
        "void cm_free(CM *m);",
        "long long cm_len(const CM *m);",
        "long long cm_bytes(const CM *m);",
        "int cm_clear(CM *m);",
        "CM *cm_clone(const CM *m);",
        "long long cm_scan_column(const CM *m, int pos, void *out);",
        "int cm_reduce_q(const CM *m, const long long *mulpos,"
        " long long nmul, const long long *fpos, const long long *fops,"
        " const double *fthr, long long nfil, long long cmul,"
        " long long *out);",
    ]
    for arity, vkind in sorted(signatures):
        keys = ", ".join(f"long long k{i}" for i in range(arity))
        if vkind == "q":
            lines.append(
                f"int cm_add_{arity}_q(CM *m, {keys}, long long v,"
                " long long *out);"
            )
            lines.append(
                f"int cm_get_{arity}_q(const CM *m, {keys}, long long *out);"
            )
            lines.append(f"int cm_set_{arity}_q(CM *m, {keys}, long long v);")
        else:
            lines.append(
                f"int cm_add_{arity}_d(CM *m, {keys}, double v, double *out);"
            )
            lines.append(
                f"int cm_get_{arity}_d(const CM *m, {keys}, double *out);"
            )
            lines.append(f"int cm_set_{arity}_d(CM *m, {keys}, double v);")
    for arity in sorted({arity for arity, _ in signatures}):
        keys = ", ".join(f"long long k{i}" for i in range(arity))
        lines.append(f"int cm_del_{arity}(CM *m, {keys});")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Build + load
# ---------------------------------------------------------------------------


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        path = Path(override)
    else:
        uid = os.getuid() if hasattr(os, "getuid") else 0
        path = Path(tempfile.gettempdir()) / f"repro-native-{uid}"
    path.mkdir(parents=True, exist_ok=True, mode=0o700)
    return path


def _build_shared_object(source: str, probe: ToolchainProbe) -> Path:
    """Compile ``source`` to a cached ``.so`` (content-addressed)."""
    digest = sha256(
        (probe.compiler + "\0" + probe.version + "\0" + source).encode()
    ).hexdigest()[:20]
    cache = _cache_dir()
    so_path = cache / f"kernel-{digest}.so"
    if so_path.exists():
        return so_path
    c_path = cache / f"kernel-{digest}.c"
    c_path.write_text(source)
    tmp_so = cache / f"kernel-{digest}.{os.getpid()}.tmp.so"
    cmd = [
        probe.compiler,
        "-O2",
        "-shared",
        "-fPIC",
        "-o",
        str(tmp_so),
        str(c_path),
    ]
    try:
        result = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
    except Exception as exc:
        raise NativeBuildError(f"{probe.compiler} failed to run: {exc}")
    if result.returncode != 0:
        tail = (result.stderr or result.stdout).strip()[-500:]
        raise NativeBuildError(
            f"{probe.compiler} exited {result.returncode}: {tail}"
        )
    os.replace(tmp_so, so_path)  # atomic publish under concurrent builds
    return so_path


def _load_cffi(so_path: Path, signatures: frozenset[Signature]):
    import cffi

    ffi = cffi.FFI()
    ffi.cdef(render_cdef(signatures))
    lib = ffi.dlopen(str(so_path))
    return lib, ffi


def _load_ctypes(so_path: Path, signatures: frozenset[Signature]):
    import ctypes

    lib = ctypes.CDLL(str(so_path))
    ll, dd = ctypes.c_longlong, ctypes.c_double
    ptr = ctypes.c_void_p
    lib.cm_new.argtypes = [ctypes.c_int, ctypes.c_int]
    lib.cm_new.restype = ptr
    lib.cm_free.argtypes = [ptr]
    lib.cm_free.restype = None
    lib.cm_len.argtypes = [ptr]
    lib.cm_len.restype = ll
    lib.cm_bytes.argtypes = [ptr]
    lib.cm_bytes.restype = ll
    lib.cm_clear.argtypes = [ptr]
    lib.cm_clear.restype = ctypes.c_int
    lib.cm_clone.argtypes = [ptr]
    lib.cm_clone.restype = ptr
    lib.cm_scan_column.argtypes = [ptr, ctypes.c_int, ptr]
    lib.cm_scan_column.restype = ll
    llp = ctypes.POINTER(ll)
    lib.cm_reduce_q.argtypes = [
        ptr, llp, ll, llp, llp, ctypes.POINTER(dd), ll, ll, llp,
    ]
    lib.cm_reduce_q.restype = ctypes.c_int
    for arity, vkind in sorted(signatures):
        keys = [ll] * arity
        val = ll if vkind == "q" else dd
        out = ctypes.POINTER(ll if vkind == "q" else dd)
        fn = getattr(lib, f"cm_add_{arity}_{vkind}")
        fn.argtypes = [ptr] + keys + [val, out]
        fn.restype = ctypes.c_int
        fn = getattr(lib, f"cm_get_{arity}_{vkind}")
        fn.argtypes = [ptr] + keys + [out]
        fn.restype = ctypes.c_int
        fn = getattr(lib, f"cm_set_{arity}_{vkind}")
        fn.argtypes = [ptr] + keys + [val]
        fn.restype = ctypes.c_int
        fn = getattr(lib, f"cm_del_{arity}")
        fn.argtypes = [ptr] + keys
        fn.restype = ctypes.c_int
    return lib, None


# ---------------------------------------------------------------------------
# Python-side wrapper generation
# ---------------------------------------------------------------------------

_ZERO8 = bytes(8)


def _wrapper_source(arity: int, vkind: str, loader: str) -> str:
    """Render the per-signature wrapper class (exec'd per kernel).

    The fast paths are exact-type-guarded so only values the packed C
    layout round-trips take the foreign call; everything else drops to
    the generic slow path or ejects the owning map back to pure Python.
    cffi raises ``OverflowError`` on out-of-range int64 arguments so the
    fast path just catches it; ctypes silently *truncates*, so its
    guards carry explicit range checks.
    """
    names = [f"k{i}" for i in range(arity)]
    unpack = ", ".join(names) + ("," if arity == 1 else "") + " = key"
    ks = ", ".join(names)
    range_ok = [
        f"-9223372036854775808 <= {n} <= 9223372036854775807" for n in names
    ]
    key_guard = " and ".join(f"type({n}) is int" for n in names)
    if loader == "ctypes":
        key_guard += " and " + " and ".join(range_ok)
    if vkind == "q":
        val_guard = "type(value) is int"
        if loader == "ctypes":
            val_guard += (
                " and -9223372036854775808 <= value <= 9223372036854775807"
            )
    else:
        val_guard = "type(value) is float"
    pad = " " * 16
    if loader == "cffi":
        out_new = f'_ffi.new("{"long long" if vkind == "q" else "double"}[1]")'
        out_read = "self._out[0]"
        add_call = (
            f"{pad}try:\n"
            f"{pad}    st = _c_add(self._h, {ks}, value, self._out)\n"
            f"{pad}except OverflowError:\n"
            f"{pad}    st = -1\n"
        )
        get_call = (
            f"{pad}try:\n"
            f"{pad}    st = _c_get(self._h, {ks}, self._out)\n"
            f"{pad}except OverflowError:\n"
            f"{pad}    st = 0\n"
        )
        set_call = (
            f"{pad}try:\n"
            f"{pad}    st = _c_set(self._h, {ks}, value)\n"
            f"{pad}except OverflowError:\n"
            f"{pad}    st = -1\n"
        )
        del_call = (
            f"{pad}try:\n"
            f"{pad}    st = _c_del(self._h, {ks})\n"
            f"{pad}except OverflowError:\n"
            f"{pad}    st = 0\n"
        )
    else:
        out_new = (
            "_ctypes.c_longlong()" if vkind == "q" else "_ctypes.c_double()"
        )
        out_read = "self._out.value"
        add_call = (
            f"{pad}st = _c_add(self._h, {ks}, value,"
            f" _ctypes.byref(self._out))\n"
        )
        get_call = (
            f"{pad}st = _c_get(self._h, {ks}, _ctypes.byref(self._out))\n"
        )
        set_call = f"{pad}st = _c_set(self._h, {ks}, value)\n"
        del_call = f"{pad}st = _c_del(self._h, {ks})\n"

    return f'''\
class _KernelMap(_KernelMapBase):
    __slots__ = ()
    _arity = {arity}
    _vkind = {vkind!r}

    def __init__(self, handle, owner):
        self._h = handle
        self._owner = owner
        self._out = {out_new}
        self._rcache = {{}}
        self._finalizer = _weakref.finalize(self, _c_free, handle)

    def add(self, key, value):
        if type(key) is tuple and len(key) == {arity}:
            {unpack}
            if {key_guard} and {val_guard}:
{add_call}\
                if st == 0:
                    return {out_read}
        owner = self._owner
        owner._eject_native()
        return owner.add(key, value)

    def set(self, key, value):
        if type(key) is tuple and len(key) == {arity}:
            {unpack}
            if {key_guard} and {val_guard}:
{set_call}\
                if st == 0:
                    return
        owner = self._owner
        owner._eject_native()
        owner[key] = value

    def get(self, key, default=None):
        if type(key) is tuple and len(key) == {arity}:
            {unpack}
            if {key_guard}:
{get_call}\
                if st == 1:
                    return {out_read}
                return default
            return self._get_slow(key, default)
        return default

    def delete(self, key):
        if type(key) is tuple and len(key) == {arity}:
            {unpack}
            if {key_guard}:
{del_call}\
                if st == 1:
                    return
                raise KeyError(key)
        self._delete_slow(key)
'''


_BASE_SOURCE = '''\
class _KernelMapBase:
    """Shared machinery for the generated per-signature wrappers."""

    __slots__ = (
        "_h", "_owner", "_out", "_finalizer", "_rcache", "__weakref__",
    )

    def length(self):
        return _c_len(self._h)

    def bytes_used(self):
        return _c_bytes(self._h)

    def clear(self):
        if _c_clear(self._h):
            self._owner._eject_native()
            self._owner.clear()

    def release(self):
        """Free the C map now (idempotent; also runs at GC)."""
        self._finalizer()

    def scan_columns(self, positions):
        n = _c_len(self._h)
        out = []
        for pos in tuple(positions) + (-1,):
            kind = "q" if pos >= 0 else self._vkind
            buf = _array(kind, _ZERO8 * n) if n else _array(kind)
            if n:
                _c_scan(self._h, pos, _scan_addr(buf))
            out.append(buf)
        return tuple(out)

    def reduce_scalar(self, mulpos, predicates, cmul=1):
        """Fused restate reduction (see ``cm_reduce_q``), or ``None``.

        ``None`` tells the generated trigger to run its Python column-zip
        loop instead: float-valued maps, non-numeric thresholds, or a C
        bail-out (int64 overflow, filtered keys beyond the +/-2^53
        double-exact window) all decline rather than approximate.
        """
        if self._vkind != "q":
            return None
        if not -9223372036854775808 <= cmul <= 9223372036854775807:
            return None
        shape = (mulpos, tuple((pos, op) for pos, op, _ in predicates))
        entry = self._rcache.get(shape)
        if entry is None:
            entry = (
                _i64_arr(mulpos),
                len(mulpos),
                _i64_arr([pos for pos, _, _ in predicates]),
                _i64_arr([op for _, op, _ in predicates]),
                _f64_buf(len(predicates)),
                len(predicates),
            )
            self._rcache[shape] = entry
        marr, nmul, parr, oarr, tbuf, npred = entry
        for index, (_, _, threshold) in enumerate(predicates):
            kind = type(threshold)
            if kind is float:
                tbuf[index] = threshold
            elif kind is int or kind is bool:
                try:
                    as_float = float(threshold)
                except OverflowError:
                    return None
                if as_float != threshold:
                    return None
                tbuf[index] = as_float
            else:
                return None
        st = _c_reduce(
            self._h, marr, nmul, parr, oarr, tbuf, npred, cmul,
            _out_ref(self._out),
        )
        if st != 0:
            return None
        return _out_val(self._out)

    def items_list(self):
        cols = self.scan_columns(range(self._arity))
        return list(zip(zip(*cols[:-1]), cols[-1]))

    def clone(self, owner):
        handle = _c_clone(self._h)
        if not handle:
            return None
        return type(self)(handle, owner)

    def migrate(self, items):
        """Bulk-load conforming entries; False rejects the whole map."""
        arity = self._arity
        int_values = self._vkind == "q"
        for key, value in items:
            if type(key) is not tuple or len(key) != arity:
                return False
            for part in key:
                if type(part) is not int or not (
                    -9223372036854775808 <= part <= 9223372036854775807
                ):
                    return False
            if int_values:
                if type(value) is not int or not (
                    -9223372036854775808 <= value <= 9223372036854775807
                ):
                    return False
            elif type(value) is not float:
                return False
            self.set(key, value)
        return True

    def _get_slow(self, key, default):
        """Non-int key parts: convert when value-equal, else miss/eject."""
        converted = []
        for part in key:
            kind = type(part)
            if kind is int:
                if not (
                    -9223372036854775808 <= part <= 9223372036854775807
                ):
                    return default  # beyond int64: cannot be stored here
                converted.append(part)
            elif kind is bool:
                converted.append(int(part))
            elif kind is float:
                if part != part or not part.is_integer():
                    return default
                as_int = int(part)
                if not (
                    -9223372036854775808 <= as_int <= 9223372036854775807
                ):
                    return default
                converted.append(as_int)
            else:
                owner = self._owner
                owner._eject_native()
                return owner.get(key, default)
        return self.get(tuple(converted), default)

    def _delete_slow(self, key):
        if type(key) is not tuple or len(key) != self._arity:
            raise KeyError(key)
        converted = []
        for part in key:
            kind = type(part)
            if kind is int:
                converted.append(part)
            elif kind is bool:
                converted.append(int(part))
            elif kind is float:
                if part != part or not part.is_integer():
                    raise KeyError(key)
                converted.append(int(part))
            else:
                owner = self._owner
                owner._eject_native()
                del owner[key]
                return
        try:
            self.delete(tuple(converted))
        except KeyError:
            raise KeyError(key) from None
'''


def _build_namespace(lib, ffi, loader: str, arity: int, vkind: str) -> dict:
    if loader == "cffi":
        def _scan_addr(buf, _ffi=ffi):
            return _ffi.from_buffer(buf)

        def _i64_arr(values, _ffi=ffi):
            return _ffi.new("long long[]", list(values))

        def _f64_buf(count, _ffi=ffi):
            return _ffi.new("double[]", count)

        def _out_ref(out):
            return out

        def _out_val(out):
            return out[0]
    else:
        import ctypes as _ct

        def _scan_addr(buf):
            return buf.buffer_info()[0]

        def _i64_arr(values, _ct=_ct):
            values = list(values)
            return (_ct.c_longlong * len(values))(*values)

        def _f64_buf(count, _ct=_ct):
            return (_ct.c_double * count)()

        def _out_ref(out, _ct=_ct):
            return _ct.byref(out)

        def _out_val(out):
            return out.value
    namespace = {
        "_weakref": weakref,
        "_array": array,
        "_ZERO8": _ZERO8,
        "_scan_addr": _scan_addr,
        "_i64_arr": _i64_arr,
        "_f64_buf": _f64_buf,
        "_out_ref": _out_ref,
        "_out_val": _out_val,
        "_c_reduce": lib.cm_reduce_q,
        "_c_free": lib.cm_free,
        "_c_len": lib.cm_len,
        "_c_bytes": lib.cm_bytes,
        "_c_clear": lib.cm_clear,
        "_c_clone": lib.cm_clone,
        "_c_scan": lib.cm_scan_column,
        "_c_add": getattr(lib, f"cm_add_{arity}_{vkind}"),
        "_c_get": getattr(lib, f"cm_get_{arity}_{vkind}"),
        "_c_set": getattr(lib, f"cm_set_{arity}_{vkind}"),
        "_c_del": getattr(lib, f"cm_del_{arity}"),
    }
    if loader == "ctypes":
        import ctypes

        namespace["_ctypes"] = ctypes
    else:
        namespace["_ffi"] = ffi
    return namespace


class KernelLib:
    """One loaded kernel: the shared library plus its wrapper classes."""

    def __init__(
        self,
        loader: str,
        lib,
        ffi,
        signatures: frozenset[Signature],
        so_path: Path,
    ):
        self.loader = loader
        self.lib = lib
        self.ffi = ffi
        self.signatures = signatures
        self.so_path = so_path
        self._classes: dict[Signature, type] = {}

    def wrapper_class(self, arity: int, vkind: str) -> type:
        sig = (arity, vkind)
        cls = self._classes.get(sig)
        if cls is None:
            namespace = _build_namespace(
                self.lib, self.ffi, self.loader, arity, vkind
            )
            exec(_BASE_SOURCE, namespace)
            exec(_wrapper_source(arity, vkind, self.loader), namespace)
            cls = namespace["_KernelMap"]
            cls.__qualname__ = f"_KernelMap_{arity}_{vkind}"
            self._classes[sig] = cls
        return cls

    def attach(self, contents) -> bool:
        """Re-home a pure ColumnarMap onto the C kernel (idempotent).

        Declines (returns False, map untouched) when the map has
        spilled, holds non-conforming entries, or its signature was not
        generated; a decline is always safe because the pure path is
        the semantic reference.
        """
        from repro.runtime.storage import ColumnarMap, _NativeColumnarMap

        if type(contents) is _NativeColumnarMap:
            return True
        if type(contents) is not ColumnarMap or contents.spilled:
            return False
        arity, vkind = contents.arity, contents.value_kind
        if (arity, vkind) not in self.signatures:
            return False
        handle = self.lib.cm_new(arity, ord(vkind))
        if not handle:
            return False
        wrapper = self.wrapper_class(arity, vkind)(handle, contents)
        if len(contents) and not wrapper.migrate(contents.items()):
            wrapper.release()
            return False
        contents._native = wrapper
        contents.__class__ = _NativeColumnarMap
        ColumnarMap._reset(contents)  # free the Python-side columns
        return True


# ---------------------------------------------------------------------------
# Per-program kernel resolution
# ---------------------------------------------------------------------------

_KERNEL_CACHE: dict[tuple, Optional[KernelLib]] = {}


def native_map_names(program: CompiledProgram) -> frozenset[str]:
    """Names of the program's native-eligible maps (may be empty)."""
    return frozenset(analyze_storage(program).native_maps)


def kernel_signatures(program: CompiledProgram) -> frozenset[Signature]:
    plan = analyze_storage(program)
    return frozenset(
        (s.arity, "q" if s.value_class == "int" else "d")
        for s in plan.maps.values()
        if s.native
    )


def load_kernel(
    program: CompiledProgram,
) -> tuple[Optional[KernelLib], str]:
    """Build/load the kernel for a program; (None, reason) on fallback.

    The built ``.so`` is content-addressed, so programs sharing a
    signature set share one build, and repeat loads are cached
    in-process.
    """
    signatures = kernel_signatures(program)
    if not signatures:
        return None, "no native-eligible maps in the storage plan"
    probe = probe_toolchain()
    if not probe.available:
        return None, probe.describe()
    key = (signatures, probe.loader, probe.compiler)
    if key in _KERNEL_CACHE:
        kernel = _KERNEL_CACHE[key]
        if kernel is None:
            return None, "kernel build failed earlier this process"
        return kernel, probe.describe()
    try:
        source = render_kernel_source(signatures)
        so_path = _build_shared_object(source, probe)
        if probe.loader == "cffi":
            lib, ffi = _load_cffi(so_path, signatures)
        else:
            lib, ffi = _load_ctypes(so_path, signatures)
        kernel = KernelLib(probe.loader, lib, ffi, signatures, so_path)
    except NativeBuildError as exc:
        _KERNEL_CACHE[key] = None
        return None, f"kernel build failed: {exc}"
    except OSError as exc:
        _KERNEL_CACHE[key] = None
        return None, f"kernel load failed: {exc}"
    _KERNEL_CACHE[key] = kernel
    return kernel, probe.describe()


def describe_native(program: CompiledProgram) -> str:
    """The ``repro compile`` native-kernel section."""
    probe = probe_toolchain()
    plan = analyze_storage(program)
    lines = ["== native kernel ==", f"toolchain: {probe.describe()}"]
    eligible = [s for _, s in sorted(plan.maps.items()) if s.native]
    if not eligible:
        lines.append("native-eligible maps: (none)")
    for storage in eligible:
        lines.append(
            f"map {storage.name}: native-eligible ({storage.native_reason})"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The executor lane
# ---------------------------------------------------------------------------


class NativeExecutor(CompiledExecutor):
    """The compiled executor with kernel-backed columnar maps.

    Identical generated triggers, two differences: native-eligible maps
    are attached to the C kernel at every (re)bind, and full-map loops
    over them are rendered as fused column scans (a ``scan_columns``
    zip) instead of ``items()`` iteration.  With no toolchain the
    attach step is skipped (``native_active`` False) and the lane runs
    the pure columnar fallback — the scan rendering is still valid
    because ``scan_columns`` is part of the ColumnarMap API, so the
    generated module depends only on the mode, not the host.
    """

    mode = "native"

    def __init__(
        self,
        program: CompiledProgram,
        maps=None,
        use_indexes: bool = True,
        optimize: bool = True,
        second_order: bool = True,
        columnar: bool = True,
    ):
        kernel, note = (
            load_kernel(program)
            if columnar
            else (None, "columnar storage disabled")
        )
        self.kernel = kernel
        self.native_note = note
        names = native_map_names(program) if columnar else frozenset()
        self._native_names = names if kernel is not None else frozenset()
        super().__init__(
            program,
            maps,
            use_indexes=use_indexes,
            optimize=optimize,
            second_order=second_order,
            columnar=columnar,
            native_maps=names,
            native_note=note,
        )

    @property
    def native_active(self) -> bool:
        return self.kernel is not None

    def bind(self, maps) -> None:
        super().bind(maps)
        kernel = self.kernel
        if kernel is None:
            return
        for name in self._native_names:
            contents = maps.get(name)
            if contents is not None:
                kernel.attach(contents)
