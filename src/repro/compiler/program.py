"""Data structures describing a compiled delta-processing program.

A :class:`CompiledProgram` is the compiler's output and the runtime's input:

* :class:`MapDef` — an in-memory map (generalised multiset relation) with a
  canonical defining query over base relations;
* :class:`Statement` — one ``map[key...] += expr`` update whose right-hand
  side references only maps, event parameters and constants;
* :class:`Trigger` — the ordered statements to run for one
  (relation, insert/delete) event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CompilationError
from repro.algebra.expr import Expr, maps_in
from repro.algebra.schema import output_vars
from repro.algebra.translate import TranslatedQuery


@dataclass
class CompileOptions:
    """Compiler knobs (also the levers for the ablation benchmarks).

    ``derived_maps=False`` disables the paper's recursive materialisation:
    deltas are evaluated directly over base-relation occurrence maps, which
    is exactly classical first-order IVM (the "today's VM algorithms" the
    introduction compares against).
    """

    derived_maps: bool = True
    share_maps: bool = True
    deletions: bool = True  # also generate delete triggers


@dataclass
class MapDef:
    """One maintained in-memory map.

    ``keys`` are the canonical key variable names (``__k0``, ``__k1``, ...);
    ``defn`` is the closed defining query ``AggSum(keys, body)`` over base
    relations, with exactly ``keys`` free.  ``role`` distinguishes root maps
    (aggregate slots of user queries) from derived maps introduced by the
    recursive compilation (including base-relation occurrence maps).
    """

    name: str
    keys: tuple[str, ...]
    defn: Expr
    role: str = "derived"  # "root" | "derived" | "occurrence" | "auxiliary"
    description: str = ""
    #: recursion depth: 0 for roots, parent+1 for maps materialised while
    #: compiling the parent's deltas (the "level" column of Figure 2).
    level: int = 0

    @property
    def arity(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:
        return f"{self.name}[{','.join(self.keys)}] := {self.defn!r}"


@dataclass
class Statement:
    """``target[args...] += rhs`` (with implied loops over unbound keys).

    ``args[i]`` is an expression over event parameters/constants when the
    key position is fixed by the event, or ``Var(loop_var)`` when the
    position iterates; iterated variables are bound by evaluating ``rhs``
    (they are outputs of map references inside it).
    """

    target: str
    args: tuple[Expr, ...]
    rhs: Expr
    loop_vars: tuple[str, ...] = ()

    def reads(self) -> set[str]:
        """Names of maps the right-hand side reads."""
        return maps_in(self.rhs)

    def __repr__(self) -> str:
        inner = ",".join(repr(a) for a in self.args)
        loop = f" (foreach {','.join(self.loop_vars)})" if self.loop_vars else ""
        return f"{self.target}[{inner}] += {self.rhs!r}{loop}"


@dataclass(frozen=True)
class FinalizeSpec:
    """A non-linear auxiliary map derived from one occurrence map.

    Occurrence maps are keyed ``(group..., value) → multiplicity``; the
    auxiliary map caches, per group key, the current extreme value
    (``kind`` ``"min"``/``"max"``) or the number of distinct present
    values (``"distinct"``).  There is no closed-form delta for these
    aggregates — after the occurrence map's linear delta is applied, a
    *finalize* step updates the auxiliary from the changed keys, falling
    back to re-deriving a group from occurrence state when its current
    extremum is deleted (the eviction path).  The lowering emits one
    :class:`repro.ir.nodes.Finalize` statement per spec at the end of
    every trigger that writes the occurrence map.
    """

    aux: str  # auxiliary map name
    kind: str  # "min" | "max" | "distinct"
    group_arity: int  # group-key prefix width of the occurrence keys


@dataclass
class Trigger:
    """All statements to execute for one (relation, sign) event."""

    relation: str
    sign: int  # +1 insert, -1 delete
    params: tuple[str, ...]
    statements: list[Statement] = field(default_factory=list)

    @property
    def name(self) -> str:
        kind = "insert" if self.sign == 1 else "delete"
        return f"on_{kind}_{self.relation.lower()}"

    def __repr__(self) -> str:
        head = f"{self.name}({', '.join(self.params)}):"
        body = "\n".join(f"  {s!r}" for s in self.statements) or "  pass"
        return f"{head}\n{body}"


@dataclass
class CompiledProgram:
    """The full compiled artifact for a set of standing queries."""

    queries: list[TranslatedQuery]
    maps: dict[str, MapDef]
    triggers: dict[tuple[str, int], Trigger]
    slot_maps: dict[str, list[str]]  # query name -> root map name per slot
    options: CompileOptions = field(default_factory=CompileOptions)
    #: relations declared as static tables: they must be fully loaded
    #: before the first stream event (the engine enforces this).
    static_relations: set[str] = field(default_factory=set)
    #: relations with at least one FLOAT column: maps over them may carry
    #: non-integer ring values, which the partitioning analysis must keep
    #: off cross-shard summation (float addition is order-sensitive).
    float_relations: frozenset[str] = frozenset()
    #: FLOAT column positions per relation (a refinement of
    #: ``float_relations``): the storage analysis uses it to type variables
    #: bound by base-relation atoms when proving map values always-float.
    float_columns: dict[str, frozenset[int]] = field(default_factory=dict)
    #: non-linear auxiliary maps: occurrence map name → the FinalizeSpecs
    #: maintained from it (MIN/MAX extremum caches, DISTINCT counters).
    finalizers: dict[str, tuple[FinalizeSpec, ...]] = field(default_factory=dict)
    #: query name → {slot index: auxiliary map name} for min/max/distinct
    #: slots — the view layer reads these instead of scanning occurrences.
    slot_aux: dict[str, dict[int, str]] = field(default_factory=dict)

    def trigger_for(self, relation: str, sign: int) -> Optional[Trigger]:
        return self.triggers.get((relation, sign))

    @property
    def relations(self) -> tuple[str, ...]:
        return tuple(sorted({rel for rel, _ in self.triggers}))

    def statements_count(self) -> int:
        return sum(len(t.statements) for t in self.triggers.values())

    def describe(self) -> str:
        """Human-readable dump (used by the Figure 2 reproduction)."""
        lines: list[str] = ["== maps =="]
        for map_def in self.maps.values():
            role = f" ({map_def.role})" if map_def.role != "derived" else ""
            lines.append(f"{map_def!r}{role}")
        lines.append("")
        lines.append("== triggers ==")
        for key in sorted(self.triggers, key=lambda k: (k[0], -k[1])):
            lines.append(repr(self.triggers[key]))
            lines.append("")
        return "\n".join(lines)


def order_statements(statements: list[Statement]) -> list[Statement]:
    """Order a trigger's statements so every read sees pre-event state.

    A statement reading map X must run before the statement(s) writing X.
    Cycles (mutual read/write, or self-reference) fall back to keeping the
    original order; the runtime then buffers those statements' deltas in a
    two-phase apply (see ``needs_buffering``).
    """
    n = len(statements)
    if n <= 1:
        return list(statements)
    # edges[i] -> j means i must run before j.
    edges: dict[int, set[int]] = {i: set() for i in range(n)}
    indegree = [0] * n
    for i, reader in enumerate(statements):
        reads = reader.reads()
        for j, writer in enumerate(statements):
            if i == j:
                continue
            if writer.target in reads:
                if j not in edges[i]:
                    edges[i].add(j)
                    indegree[j] += 1
    ready = sorted(i for i in range(n) if indegree[i] == 0)
    ordered: list[int] = []
    while ready:
        i = ready.pop(0)
        ordered.append(i)
        for j in sorted(edges[i]):
            indegree[j] -= 1
            if indegree[j] == 0:
                ready.append(j)
        ready.sort()
    if len(ordered) != n:
        # A dependency cycle: preserve input order for the remainder; the
        # executor buffers all updates, so correctness is unaffected.
        ordered.extend(i for i in range(n) if i not in ordered)
    return [statements[i] for i in ordered]


def needs_buffering(statements: list[Statement]) -> bool:
    """True when the (ordered) statements still conflict.

    That happens when a statement reads a map that an *earlier* statement
    wrote (a cycle survived ordering) or reads its own target.
    """
    written: set[str] = set()
    for statement in statements:
        if statement.target in statement.reads():
            return True
        if written & statement.reads():
            return True
        written.add(statement.target)
    return False


def validate_statement(statement: Statement) -> None:
    """Sanity checks used by tests and the code generators."""
    arg_loop_vars = {
        a.name
        for a in statement.args
        if hasattr(a, "name") and a.name in statement.loop_vars
    }
    rhs_outputs = set(output_vars(statement.rhs))
    missing = set(statement.loop_vars) - rhs_outputs
    if missing:
        raise CompilationError(
            f"loop variables {sorted(missing)} of {statement!r} are not bound "
            "by the right-hand side"
        )
    if arg_loop_vars - set(statement.loop_vars):
        raise CompilationError(f"inconsistent loop variables in {statement!r}")
