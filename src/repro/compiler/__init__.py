"""The recursive delta compiler: the paper's core contribution.

Given translated queries, the compiler derives delta expressions for every
(relation, insert/delete) event, materialises the stream-dependent pieces of
each delta as in-memory *maps*, and recursively compiles maintenance
triggers for those maps — deltas of deltas — until every trigger is a
straight-line update over previously-maintained maps (Figure 2 of the
paper).  Structurally identical map definitions are shared across triggers
and queries.
"""

from repro.compiler.program import (
    CompiledProgram,
    CompileOptions,
    MapDef,
    Statement,
    Trigger,
)
from repro.compiler.compile import compile_queries, compile_sql
from repro.compiler.partition import PartitionSpec, analyze_partitioning
from repro.compiler.storage import MapStorage, StoragePlan, analyze_storage

__all__ = [
    "CompiledProgram",
    "CompileOptions",
    "MapDef",
    "MapStorage",
    "Statement",
    "StoragePlan",
    "Trigger",
    "PartitionSpec",
    "analyze_partitioning",
    "analyze_storage",
    "compile_queries",
    "compile_sql",
]
