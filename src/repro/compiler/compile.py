"""The recursive compilation driver.

Starting from the root maps (one per aggregate slot of each query), the
driver repeatedly takes a map definition, derives its delta for every
(relation, insert/delete) event, simplifies, materialises the stream-
dependent pieces as new maps, and emits one update statement per monomial.
Newly created maps join the work queue — the recursion of the paper — until
every maintained map has triggers.  Finally the statements for each event
are dependency-ordered into triggers.
"""

from __future__ import annotations

import re
from collections import defaultdict, deque
from typing import Iterable, Optional

from repro.errors import CompilationError
from repro.algebra.delta import delta, event_for
from repro.algebra.expr import (
    AggSum,
    Const,
    Expr,
    Lift,
    Var,
    ZERO,
    mul,
    relations_in,
)
from repro.algebra.simplify import monomials, simplify
from repro.algebra.translate import TranslatedQuery, translate_sql
from repro.sql.catalog import Catalog
from repro.compiler.materialize import Materializer, MapRegistry
from repro.compiler.program import (
    CompiledProgram,
    CompileOptions,
    FinalizeSpec,
    MapDef,
    Statement,
    Trigger,
    order_statements,
    validate_statement,
)

_NAME_RE = re.compile(r"[^A-Za-z0-9_]+")


def _sanitize(name: str) -> str:
    return _NAME_RE.sub("_", name)


def compile_sql(
    sql: str,
    catalog: Catalog,
    name: str = "q",
    options: Optional[CompileOptions] = None,
) -> CompiledProgram:
    """Compile one SQL query end to end."""
    return compile_queries([translate_sql(sql, catalog, name=name)], catalog, options)


def compile_queries(
    queries: Iterable[TranslatedQuery],
    catalog: Catalog,
    options: Optional[CompileOptions] = None,
) -> CompiledProgram:
    """Compile a set of standing queries into one delta-processing program.

    Maps are shared across queries: two aggregate slots with structurally
    identical definitions are maintained once.
    """
    queries = list(queries)
    options = options or CompileOptions()
    registry = MapRegistry(share=options.share_maps)

    slot_maps: dict[str, list[str]] = {}
    # (query, slot index, occurrence map, kind) for non-linear slots;
    # their auxiliary maps are registered once triggers are final.
    aux_requests: list[tuple[str, int, str, str]] = []
    for query in queries:
        names: list[str] = []
        for index, spec in enumerate(query.aggregates):
            defn = spec.expr
            if not isinstance(defn, AggSum):
                raise CompilationError(
                    f"aggregate slot {spec.name!r} is not an AggSum: {defn!r}"
                )
            root_name = _sanitize(f"q_{query.name}_{spec.name}")
            map_def = registry.register_root(
                root_name,
                defn.group,
                defn.body,
                description=f"{query.name}.{spec.name}",
            )
            names.append(map_def.name)
            if spec.kind in ("min", "max", "distinct"):
                aux_requests.append((query.name, index, map_def.name, spec.kind))
        slot_maps[query.name] = names

    statements: dict[tuple[str, int], list[Statement]] = defaultdict(list)
    compiled: set[str] = set()
    queue: deque[MapDef] = deque(registry.take_pending())
    signs = (1, -1) if options.deletions else (1,)

    while queue:
        map_def = queue.popleft()
        if map_def.name in compiled:
            continue
        compiled.add(map_def.name)
        map_relations = relations_in(map_def.defn)
        static_only = all(not catalog.get(r).is_stream for r in map_relations)
        for rel_name in sorted(map_relations):
            relation = catalog.get(rel_name)
            if not relation.is_stream and not static_only:
                # Static tables are loaded before any stream event arrives;
                # while loading, every stream-dependent map is identically
                # zero, so mixed maps need no static-table triggers.  Only
                # maps defined purely over static tables are maintained
                # during the load phase.
                continue
            rel_signs = signs if relation.is_stream else (1,)
            for sign in rel_signs:
                event = event_for(rel_name, relation.column_names, sign)
                d = simplify(delta(map_def.defn, event), bound=event.params)
                if d == ZERO:
                    continue
                materializer = Materializer(
                    registry,
                    bound=event.params,
                    derived_maps=options.derived_maps,
                )
                for coeff, factors in monomials(d):
                    statement = _build_statement(
                        map_def, coeff, factors, materializer
                    )
                    statements[(relation.name, sign)].append(statement)
                for new_map in registry.take_pending():
                    new_map.level = map_def.level + 1
                    queue.append(new_map)

    triggers: dict[tuple[str, int], Trigger] = {}
    all_relations = {rel for query in queries for rel in query.relations}
    static_relations = {
        rel for rel in all_relations if not catalog.get(rel).is_stream
    }
    for rel_name in sorted(all_relations):
        relation = catalog.get(rel_name)
        rel_signs = signs if relation.is_stream else (1,)
        for sign in rel_signs:
            event = event_for(relation.name, relation.column_names, sign)
            merged = _merge_statements(
                statements.get((relation.name, sign), [])
            )
            ordered = order_statements(merged)
            triggers[(relation.name, sign)] = Trigger(
                relation=relation.name,
                sign=sign,
                params=event.params,
                statements=ordered,
            )

    from repro.sql.catalog import SqlType

    float_columns = {
        rel: frozenset(
            position
            for position, column in enumerate(catalog.get(rel).columns)
            if column.type is SqlType.FLOAT
        )
        for rel in all_relations
    }
    float_relations = frozenset(
        rel for rel, positions in float_columns.items() if positions
    )

    # Non-linear auxiliary maps: one per (occurrence map, kind), shared
    # across queries.  They carry no delta triggers of their own — the IR
    # lowering appends a Finalize step to every trigger that writes the
    # occurrence map, and the engines treat them as ordinary state
    # (snapshotted, WAL-replayed, merged by rebuild after sharding).
    maps = dict(registry.maps)
    finalizers: dict[str, tuple[FinalizeSpec, ...]] = {}
    slot_aux: dict[str, dict[int, str]] = {}
    for query_name, slot_index, occ_name, kind in aux_requests:
        aux_name = f"{occ_name}__{kind}"
        if aux_name not in maps:
            occ_def = maps[occ_name]
            group_arity = len(occ_def.keys) - 1
            maps[aux_name] = MapDef(
                name=aux_name,
                keys=occ_def.keys[:group_arity],
                defn=occ_def.defn,
                role="auxiliary",
                description=f"{kind} cache over {occ_name}",
                level=occ_def.level,
            )
            finalizers[occ_name] = finalizers.get(occ_name, ()) + (
                FinalizeSpec(aux=aux_name, kind=kind, group_arity=group_arity),
            )
        slot_aux.setdefault(query_name, {})[slot_index] = aux_name

    return CompiledProgram(
        queries=queries,
        maps=maps,
        triggers=triggers,
        slot_maps=slot_maps,
        options=options,
        static_relations=static_relations,
        float_relations=float_relations,
        float_columns={
            rel: positions
            for rel, positions in float_columns.items()
            if positions
        },
        finalizers=finalizers,
        slot_aux=slot_aux,
    )


def _merge_statements(statements: list[Statement]) -> list[Statement]:
    """Combine identical statements into one with a scaled coefficient.

    Symmetric delta terms of self-joins produce structurally identical
    updates (``dB*B`` and ``B*dB``); executing one statement with a
    coefficient halves the per-event work.
    """
    counts: dict[tuple, int] = {}
    order: list[tuple] = []
    originals: dict[tuple, Statement] = {}
    for statement in statements:
        key = (
            statement.target,
            statement.args,
            statement.rhs,
            statement.loop_vars,
        )
        if key not in counts:
            counts[key] = 0
            order.append(key)
            originals[key] = statement
        counts[key] += 1
    merged = []
    for key in order:
        statement = originals[key]
        n = counts[key]
        if n == 1:
            merged.append(statement)
        else:
            merged.append(
                Statement(
                    target=statement.target,
                    args=statement.args,
                    rhs=mul(Const(n), statement.rhs),
                    loop_vars=statement.loop_vars,
                )
            )
    return merged


def _build_statement(
    map_def: MapDef,
    coeff: object,
    factors: tuple[Expr, ...],
    materializer: Materializer,
) -> Statement:
    """Turn one delta monomial into a ``target[args] += rhs`` statement.

    Lifts that bind the target map's key variables become fixed key
    arguments; keys without a lift iterate (bound by evaluating the RHS).
    """
    from repro.algebra.expr import Cmp, substitute
    from repro.algebra.schema import output_vars

    key_args: dict[str, Expr] = {}
    bound = set(materializer.bound)
    subst: dict[str, Expr] = {}
    rhs_parts: list[Expr] = []
    if coeff != 1:
        rhs_parts.append(Const(coeff))
    for factor in factors:
        if subst:
            factor = substitute(factor, subst)
        if (
            isinstance(factor, Lift)
            and factor.var in map_def.keys
            and factor.var not in key_args
        ):
            body = materializer.rewrite(factor.body, frozenset(bound))
            if isinstance(body, (Var, Const)):
                # The key value flows into every later occurrence of the
                # key variable (e.g. correlated map references).
                key_args[factor.var] = body
                subst[factor.var] = body
            else:
                # Complex key expression: keep the lift in the RHS (it
                # binds the variable there) and loop over its single row.
                rhs_parts.append(Lift(factor.var, body))
            bound.add(factor.var)
        else:
            rhs_parts.append(materializer.rewrite(factor, frozenset(bound)))
            bound.update(output_vars(factor))

    # Loop-key equality filters become direct key arguments: a factor
    # {k = t} with k an unfixed key and t over event parameters turns the
    # foreach-and-filter scan into an O(1) keyed update.
    changed = True
    while changed:
        changed = False
        for index, part in enumerate(rhs_parts):
            if not isinstance(part, Cmp) or part.op != "=":
                continue
            for var_side, term_side in (
                (part.left, part.right),
                (part.right, part.left),
            ):
                if not isinstance(var_side, Var):
                    continue
                key = var_side.name
                if key not in map_def.keys or key in key_args:
                    continue
                if not isinstance(term_side, (Var, Const)):
                    continue
                if (
                    isinstance(term_side, Var)
                    and term_side.name not in materializer.bound
                ):
                    continue
                key_args[key] = term_side
                rhs_parts.pop(index)
                rhs_parts = [
                    substitute(p, {key: term_side}) for p in rhs_parts
                ]
                changed = True
                break
            if changed:
                break

    loop_keys = tuple(k for k in map_def.keys if k not in key_args)
    rhs = mul(*rhs_parts)

    args = tuple(key_args.get(k, Var(k)) for k in map_def.keys)
    statement = Statement(
        target=map_def.name, args=args, rhs=rhs, loop_vars=loop_keys
    )
    validate_statement(statement)
    return statement
