"""Map materialisation: turning stream-dependent expressions into map lookups.

Given a (simplified) delta expression, the materialiser replaces every piece
that references base relations with references to maintained maps:

* a **pure aggregate** whose context-bound variables are all *data-bound*
  (they appear as relation arguments or lift targets inside the definition,
  so the map's key domain is finite and maintainable) becomes a standalone
  map — this is the paper's ``q_D[b]``/``q_A[c]`` step;
* a bare **relation atom** becomes an *occurrence map* (tuple -> multiplicity
  count), the paper's ``q_1[b,c]``;
* anything whose event-parameter dependence cannot be keyed (e.g. a nested
  aggregate compared against arithmetic over the event values, as in VWAP)
  keeps its structure inline and only its pure sub-parts are materialised —
  the trigger then loops over the materialised maps, which is DBToaster's
  documented re-evaluation fallback for non-linear deltas.

Structurally identical definitions share one map: definitions are renamed to
canonical variables and looked up in a registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import CompilationError
from repro.algebra.expr import (
    AggSum,
    Const,
    Expr,
    Lift,
    MapRef,
    Mul,
    Rel,
    Var,
    contains_relation,
    mul,
    rename_vars,
    walk,
)
from repro.algebra.schema import output_vars
from repro.compiler.program import MapDef


def ordered_vars(expr: Expr) -> list[str]:
    """Variable names in deterministic first-occurrence (pre-order) order."""
    seen: list[str] = []
    seen_set: set[str] = set()

    def note(name: str) -> None:
        if name not in seen_set:
            seen_set.add(name)
            seen.append(name)

    for node in walk(expr):
        if isinstance(node, Var):
            note(node.name)
        elif isinstance(node, (Rel, MapRef)):
            for arg in node.args:
                if isinstance(arg, Var):
                    note(arg.name)
        elif isinstance(node, Lift):
            note(node.var)
        elif isinstance(node, AggSum):
            for g in node.group:
                note(g)
    return seen


def canonicalize(keys: tuple[str, ...], body: Expr) -> tuple[Expr, tuple[str, ...]]:
    """Rename a definition to canonical variables for structural sharing.

    Keys become ``__k0..`` positionally; all other variables become
    ``__i0..`` in first-occurrence order.  Returns the canonical
    ``AggSum(keys, body)`` and the canonical key names.
    """
    mapping: dict[str, str] = {}
    for index, key in enumerate(keys):
        mapping[key] = f"__k{index}"
    counter = 0
    for name in ordered_vars(body):
        if name not in mapping:
            mapping[name] = f"__i{counter}"
            counter += 1
    canon_keys = tuple(mapping[k] for k in keys)
    return AggSum(canon_keys, rename_vars(body, mapping)), canon_keys


def is_data_bound(var: str, body: Expr) -> bool:
    """True when ``var``'s domain is derived from the data.

    A key variable is maintainable when it appears as a relation-atom
    argument (active domain) or as a lift target (computed from data rows).
    Variables used only inside comparisons or arithmetic would require
    enumerating an unbounded domain.
    """
    for node in walk(body):
        if isinstance(node, Rel):
            if any(isinstance(a, Var) and a.name == var for a in node.args):
                return True
        elif isinstance(node, Lift) and node.var == var:
            return True
    return False


@dataclass
class MapRegistry:
    """Names, definitions and structural sharing of maintained maps."""

    share: bool = True
    maps: dict[str, MapDef] = field(default_factory=dict)
    pending: list[MapDef] = field(default_factory=list)
    _canonical: dict[Expr, str] = field(default_factory=dict)
    _counter: int = 0

    def register_root(
        self, name: str, keys: tuple[str, ...], defn_body: Expr, description: str = ""
    ) -> MapDef:
        """Register a query's root map under a fixed name.

        If an identical definition already exists, the existing map is
        reused (cross-query sharing) and no new map is created.
        """
        canon, canon_keys = canonicalize(keys, defn_body)
        if self.share and canon in self._canonical:
            return self.maps[self._canonical[canon]]
        if name in self.maps:
            raise CompilationError(f"duplicate map name {name!r}")
        map_def = MapDef(
            name=name, keys=canon_keys, defn=canon, role="root",
            description=description,
        )
        self.maps[name] = map_def
        self._canonical[canon] = name
        self.pending.append(map_def)
        return map_def

    def get_or_create(
        self, keys: tuple[str, ...], defn_body: Expr, hint: str, role: str = "derived"
    ) -> MapDef:
        canon, canon_keys = canonicalize(keys, defn_body)
        if self.share and canon in self._canonical:
            return self.maps[self._canonical[canon]]
        self._counter += 1
        name = f"m{self._counter}_{hint}" if hint else f"m{self._counter}"
        map_def = MapDef(name=name, keys=canon_keys, defn=canon, role=role)
        self.maps[name] = map_def
        self._canonical[canon] = name
        self.pending.append(map_def)
        return map_def

    @classmethod
    def seeded(cls, maps: dict[str, MapDef], share: bool = True) -> "MapRegistry":
        """A registry pre-populated with already-maintained maps.

        Structural sharing resolves against the existing definitions
        (re-canonicalised here, so the invariant lives with the code that
        owns it); callers that must not *create* maps treat a non-empty
        ``pending`` after rewriting as "a new map would be needed".
        """
        registry = cls(share=share)
        registry.maps = dict(maps)
        for name, map_def in maps.items():
            if map_def.role == "auxiliary":
                # Auxiliary extremum/distinct caches borrow their source
                # occurrence map's defining query with a truncated key
                # list; canonicalising that pair would register a bogus
                # sharing entry, and nothing materialises against them.
                continue
            defn = map_def.defn
            if isinstance(defn, AggSum):
                canon, _keys = canonicalize(map_def.keys, defn.body)
                registry._canonical[canon] = name
        return registry

    def occurrence_map(self, relation: str, arity: int) -> MapDef:
        """The tuple-multiplicity map of a base relation."""
        vars_ = tuple(Var(f"c{i}") for i in range(arity))
        body = Rel(relation, vars_)
        keys = tuple(v.name for v in vars_)
        return self.get_or_create(
            keys, body, hint=f"base_{relation.lower()}", role="occurrence"
        )

    def take_pending(self) -> list[MapDef]:
        pending, self.pending = self.pending, []
        return pending


class Materializer:
    """Rewrites one trigger expression, creating maps as needed.

    The binding context is threaded through the traversal: a variable bound
    by an *enclosing or preceding* factor (an event parameter, a map-loop
    output, a lift) correlates with occurrences inside nested aggregates,
    so it must become a key of any map materialised beneath it.
    """

    def __init__(
        self,
        registry: MapRegistry,
        bound: Iterable[str],
        derived_maps: bool = True,
    ) -> None:
        self.registry = registry
        self.bound = frozenset(bound)
        self.derived_maps = derived_maps

    def rewrite(self, expr: Expr, bound: Optional[frozenset] = None) -> Expr:
        """Replace all base-relation dependence with map references."""
        if bound is None:
            bound = self.bound
        if not contains_relation(expr):
            return expr

        if isinstance(expr, Rel):
            map_def = self.registry.occurrence_map(expr.name, len(expr.args))
            return MapRef(map_def.name, expr.args)

        if isinstance(expr, Mul):
            running = set(bound)
            new_factors = []
            for factor in expr.factors:
                new_factors.append(self.rewrite(factor, frozenset(running)))
                running.update(output_vars(factor))
            return mul(*new_factors)

        if isinstance(expr, AggSum):
            materialized = self._materialize_aggsum(expr, bound)
            if materialized is not None:
                return materialized
            return AggSum(expr.group, self.rewrite(expr.body, bound))

        if isinstance(expr, Lift):
            return Lift(expr.var, self.rewrite(expr.body, bound))

        children = tuple(self.rewrite(c, bound) for c in expr.children())
        return expr.rebuild(children)

    def _materialize_aggsum(
        self, expr: AggSum, bound: frozenset
    ) -> Optional[Expr]:
        """Materialise a whole aggregate as one map, if maintainable."""
        if not self.derived_maps:
            return None
        ctx_keys = [
            v
            for v in ordered_vars(expr.body)
            if v in bound and v not in expr.group
        ]
        keys = tuple(ctx_keys) + tuple(expr.group)
        if not all(is_data_bound(k, expr.body) for k in keys):
            return None
        hint = "_".join(
            sorted({n.name.lower() for n in walk(expr) if isinstance(n, Rel)})
        )
        map_def = self.registry.get_or_create(keys, expr.body, hint=hint)
        return MapRef(map_def.name, tuple(Var(k) for k in keys))
