"""Partitioning analysis: which triggers can run on parallel shards.

Delta programs over generalised multiset relations parallelise naturally
when every map access of a trigger is keyed on one event attribute (the
per-group independence of ``AggSum`` maps): hash-partitioning the event
stream by that attribute gives each shard exclusive ownership of a key
subset of every map it reads, so shards never observe each other's state
and merged shard maps equal a single-engine run.

The analysis answers, per program:

* for each relation, which event column (if any) every map read *and*
  write of its triggers is keyed on — the **partition column** used to
  hash-route batches (``relation_columns``);
* for each map that some trigger reads, the key position that carries the
  partition value (``map_positions``) — shards own disjoint slices of
  these maps and a merge is a disjoint union;
* which maps are **additive**: written but never read by any trigger.
  Their per-event deltas depend only on correctly partitioned reads, so
  each lane may accumulate a partial map and the merge sums values
  key-wise (this is what makes scalar query results shardable even though
  the result map itself has no keys).  Cross-shard summation re-associates
  additions, which is exact over the integer ring only — additive maps
  that may hold floats (FLOAT columns or division in their definition)
  and are not keyed on the partition column force their writers serial,
  preserving the bit-identity-with-a-single-engine contract;
* which relations fall back to the **serial lane** (``serial_relations``)
  because no column works — e.g. a trigger reading a zero-key map
  (``psp``'s running sums) or joining on several different columns (SSB's
  star joins).  Read maps touched by any serial trigger are owned by the
  serial lane outright, and sharded relations touching a serial-owned map
  are demoted until the two lanes share nothing (the fixpoint below).

The resulting :class:`PartitionSpec` is pure compiler metadata: the
runtime (:class:`repro.runtime.engine.ShardedEngine`) routes batches with
it, and the code generator stamps it into the generated module header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.algebra.expr import Div, MapRef, Rel, Var, walk
from repro.compiler.program import CompiledProgram, Trigger

#: Backtracking-node budget for the (tiny) column-assignment search; real
#: programs have a handful of relations with at most a few feasible
#: columns each, so the budget only guards pathological inputs.
_SEARCH_BUDGET = 10_000


@dataclass(frozen=True)
class PartitionSpec:
    """The shard-routing metadata for one compiled program.

    ``relation_columns`` maps a relation to the event-tuple index whose
    hash routes its rows; relations absent from it are listed in
    ``serial_relations`` and run on the serial lane.  ``map_positions``
    gives, for every read map owned by the shard lanes, the key position
    holding the partition value; ``serial_maps`` are read maps owned by
    the serial lane; ``additive_maps`` are write-only maps merged by
    key-wise summation across all lanes.
    """

    relation_columns: dict[str, int]
    map_positions: dict[str, int]
    serial_relations: frozenset[str]
    serial_maps: frozenset[str]
    additive_maps: frozenset[str]

    @property
    def partitionable(self) -> bool:
        """True when at least one relation can be hash-routed to shards."""
        return bool(self.relation_columns)

    def column_for(self, relation: str) -> Optional[int]:
        """The routing column of a relation (None → serial lane)."""
        return self.relation_columns.get(relation)

    def describe(self) -> str:
        """Human-readable summary (the CLI's compilation trace)."""
        lines = ["== partitioning =="]
        if not self.relation_columns:
            lines.append("(no partitionable relations: serial execution)")
        for rel in sorted(self.relation_columns):
            lines.append(
                f"{rel}: hash-route by column {self.relation_columns[rel]}"
            )
        for rel in sorted(self.serial_relations):
            lines.append(f"{rel}: serial lane")
        for name in sorted(self.map_positions):
            lines.append(
                f"map {name}: sharded on key position {self.map_positions[name]}"
            )
        if self.serial_maps:
            lines.append("serial-lane maps: " + ", ".join(sorted(self.serial_maps)))
        if self.additive_maps:
            lines.append(
                "additive (sum-merged) maps: "
                + ", ".join(sorted(self.additive_maps))
            )
        return "\n".join(lines)


def _read_map_names(program: CompiledProgram) -> set[str]:
    """Maps read by any trigger statement (nested references included)."""
    reads: set[str] = set()
    for trigger in program.triggers.values():
        for statement in trigger.statements:
            reads |= statement.reads()
    return reads


def _var_positions(args: Iterable, param: str) -> set[int]:
    """Argument positions holding exactly ``Var(param)``."""
    return {
        i
        for i, arg in enumerate(args)
        if isinstance(arg, Var) and arg.name == param
    }


def _trigger_constraints(
    trigger: Trigger, param: str, read_maps: set[str]
) -> Optional[dict[str, set[int]]]:
    """Key-position constraints if ``trigger`` partitions by ``param``.

    Returns ``{map: feasible positions}`` covering every read map the
    trigger touches, or ``None`` when some access cannot be keyed on the
    parameter (a read with the parameter absent from the key, a write to a
    read map without the parameter as a key argument, or any zero-key read).
    """
    constraints: dict[str, set[int]] = {}

    def constrain(name: str, positions: set[int]) -> bool:
        if not positions:
            return False
        merged = constraints.get(name)
        constraints[name] = positions if merged is None else merged & positions
        return bool(constraints[name])

    for statement in trigger.statements:
        if statement.target in read_maps:
            if not constrain(
                statement.target, _var_positions(statement.args, param)
            ):
                return None
        for node in walk(statement.rhs):
            if isinstance(node, MapRef):
                if not constrain(node.name, _var_positions(node.args, param)):
                    return None
    return constraints


def _relation_candidates(
    triggers: list[Trigger], read_maps: set[str]
) -> list[tuple[int, dict[str, set[int]]]]:
    """Feasible (column index, constraints) choices for one relation.

    Insert and delete triggers share the relation's column list, so a
    candidate column must satisfy both; their per-map constraints are
    intersected.
    """
    params = triggers[0].params
    candidates: list[tuple[int, dict[str, set[int]]]] = []
    for index, param in enumerate(params):
        merged: dict[str, set[int]] = {}
        feasible = True
        for trigger in triggers:
            constraints = _trigger_constraints(trigger, param, read_maps)
            if constraints is None:
                feasible = False
                break
            for name, positions in constraints.items():
                if name in merged:
                    merged[name] &= positions
                    if not merged[name]:
                        feasible = False
                        break
                else:
                    merged[name] = set(positions)
            if not feasible:
                break
        if feasible:
            candidates.append((index, merged))
    return candidates


@dataclass
class _Search:
    """Backtracking over per-relation column choices.

    Maximises the number of partitionable relations subject to a single
    consistent key position per read map; a small node budget keeps the
    worst case bounded (on exhaustion the best assignment found so far
    wins — for every real program the search completes).
    """

    relations: list[str]
    candidates: dict[str, list[tuple[int, dict[str, set[int]]]]]
    nodes: int = 0
    best_assign: dict[str, int] = field(default_factory=dict)
    best_store: dict[str, set[int]] = field(default_factory=dict)

    def run(self) -> tuple[dict[str, int], dict[str, set[int]]]:
        self._recurse(0, {}, {})
        return self.best_assign, self.best_store

    def _recurse(
        self,
        index: int,
        store: dict[str, set[int]],
        assign: dict[str, int],
    ) -> None:
        self.nodes += 1
        if self.nodes > _SEARCH_BUDGET:
            return
        if index == len(self.relations):
            if len(assign) > len(self.best_assign):
                self.best_assign = dict(assign)
                self.best_store = {k: set(v) for k, v in store.items()}
            return
        relation = self.relations[index]
        for column, constraints in self.candidates[relation]:
            merged = {k: set(v) for k, v in store.items()}
            feasible = True
            for name, positions in constraints.items():
                if name in merged:
                    merged[name] &= positions
                    if not merged[name]:
                        feasible = False
                        break
                else:
                    merged[name] = set(positions)
            if feasible:
                assign[relation] = column
                self._recurse(index + 1, merged, assign)
                del assign[relation]
        # The serial-lane branch for this relation.
        self._recurse(index + 1, store, assign)


def _may_hold_floats(program: CompiledProgram, map_name: str) -> bool:
    """Whether a map's ring values can be non-integer.

    True when its defining query touches a relation with FLOAT columns or
    contains a division (``_div`` produces floats even on integer input).
    """
    defn = program.maps[map_name].defn
    for node in walk(defn):
        if isinstance(node, Rel) and node.name in program.float_relations:
            return True
        if isinstance(node, Div):
            return True
    return False


def analyze_partitioning(program: CompiledProgram) -> PartitionSpec:
    """Compute the shard-routing spec for a compiled program.

    The spec is memoised on the program object: the engine, the code
    generator and the CLI all ask for it, and the answer is a pure
    function of the (immutable-after-compile) program.
    """
    cached = getattr(program, "_partition_spec", None)
    if cached is not None:
        return cached
    spec = _analyze_partitioning(program)
    program._partition_spec = spec
    return spec


def _analyze_partitioning(program: CompiledProgram) -> PartitionSpec:
    read_maps = _read_map_names(program)

    by_relation: dict[str, list[Trigger]] = {}
    for (relation, _sign), trigger in sorted(program.triggers.items()):
        by_relation.setdefault(relation, []).append(trigger)

    candidates: dict[str, list[tuple[int, dict[str, set[int]]]]] = {}
    unconstrained: set[str] = set()
    for relation, triggers in by_relation.items():
        if not any(trigger.statements for trigger in triggers):
            # No-op triggers touch nothing; route them to the serial lane.
            unconstrained.add(relation)
            continue
        candidates[relation] = _relation_candidates(triggers, read_maps)

    # Relations with fewer feasible columns first: prunes the search early.
    ordered = sorted(candidates, key=lambda rel: (len(candidates[rel]), rel))
    assign, store = _Search(relations=ordered, candidates=candidates).run()
    serial = (set(candidates) - set(assign)) | unconstrained

    # Exactness guard: an additive map written by several shards under the
    # *same* key merges by re-associated summation.  Over the integer ring
    # that is exact; float addition rounds differently per association, so
    # it would break the engine's bit-identity-with-a-serial-run contract.
    # Writes that key on the partition column stay disjoint across shards
    # (no re-association) and are always allowed.
    for relation in sorted(assign):
        demote = False
        for trigger in by_relation[relation]:
            param = trigger.params[assign[relation]]
            for statement in trigger.statements:
                if statement.target in read_maps:
                    continue
                if _var_positions(statement.args, param):
                    continue
                if _may_hold_floats(program, statement.target):
                    demote = True
                    break
            if demote:
                break
        if demote:
            del assign[relation]
            serial.add(relation)

    # Fixpoint demotion: a read map touched by any serial trigger is owned
    # by the serial lane; sharded relations touching such a map cannot
    # co-locate their accesses with it, so they fall back too.
    touched: dict[str, set[str]] = {}
    for relation, triggers in by_relation.items():
        names: set[str] = set()
        for trigger in triggers:
            for statement in trigger.statements:
                names |= {statement.target} | statement.reads()
        touched[relation] = names & read_maps
    changed = True
    while changed:
        changed = False
        serial_owned = set()
        for relation in serial:
            serial_owned |= touched.get(relation, set())
        for relation in sorted(assign):
            if touched[relation] & serial_owned:
                del assign[relation]
                serial.add(relation)
                changed = True

    sharded_read_maps: set[str] = set()
    for relation in assign:
        sharded_read_maps |= touched[relation]
    map_positions = {
        name: min(store[name])
        for name in sharded_read_maps
        if name in store
    }
    serial_maps = read_maps - sharded_read_maps
    additive = {
        name
        for trigger in program.triggers.values()
        for statement in trigger.statements
        if (name := statement.target) not in read_maps
    }

    return PartitionSpec(
        relation_columns=dict(sorted(assign.items())),
        map_positions=dict(sorted(map_positions.items())),
        serial_relations=frozenset(serial),
        serial_maps=frozenset(serial_maps),
        additive_maps=frozenset(additive),
    )
