"""Storage-plan analysis: which maps can live in packed columnar storage.

The paper's premise is that compiled delta programs win by keeping their
maintained state resident and cheap to touch.  Python's default
``dict[tuple, number]`` layout spends most of its bytes on boxing — a
hash-table slot, a key tuple and a boxed ring value per entry — so the
runtime offers a packed alternative
(:class:`repro.runtime.storage.ColumnarMap`: one array per key position
plus a packed value column behind the plain mapping protocol).  This
module is the *compiler side* of that storage choice: a per-map type
analysis, extending the exact-integer ring proofs the optimiser and the
sharding analysis already rely on, that classifies every maintained map:

* **key arity** — fixed by construction (every :class:`MapDef` declares
  its canonical key tuple), which is what makes a struct-of-arrays
  layout possible at all;
* **value class** — ``int`` when the map's ring values are provably
  exact integers (:func:`repro.ir.optimize.exact_value_maps`, plus
  occurrence maps, whose values are tuple multiplicities whatever the
  key columns hold), ``float`` when every monomial of the defining query
  provably carries a float factor (a float literal, a division, a
  variable bound to a FLOAT column, or a reference to an always-float
  map — computed as a fixpoint), and ``object`` otherwise (the packed
  key columns still apply; only the value column stays boxed).

Scalar (zero-key) maps keep plain dict storage — there is nothing to
pack.  The resulting :class:`StoragePlan` is pure compiler metadata:
engines construct their map storage from it, ``ir/lower`` stamps it on
the lowered map declarations (``compile --dump-ir``), and the code
generator records it in the generated-module header.

The plan is a *hint*, not a soundness obligation: the runtime map
promotes any column to boxed storage before storing a value the packed
representation could not round-trip exactly, so maps stay bit-identical
to dict storage even where the proofs are conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expr import (
    Add,
    AggSum,
    Const,
    Div,
    Expr,
    MapRef,
    Mul,
    Neg,
    Rel,
    Var,
    walk,
)
from repro.algebra.simplify import monomials
from repro.compiler.program import CompiledProgram

#: value-class -> ColumnarMap value-column kind.
_VALUE_KINDS = {"int": "q", "float": "d", "object": "o"}

#: Widest key tuple the generated C kernel supports (``cm_add_{n}_*``
#: entry points are emitted per arity; see ``codegen/native.py``).
NATIVE_MAX_ARITY = 8


@dataclass(frozen=True)
class MapStorage:
    """The storage decision for one maintained map."""

    name: str
    kind: str  # "columnar" | "dict"
    #: value type proof: "int" / "float" from the ring fixpoints (held by
    #: dict-stored scalar maps too — the native reduce fusion gates on
    #: it), "object" (columnar, unproven) or "any" (dict, unproven).
    value_class: str
    arity: int
    reason: str
    #: per-key-position type class ("int" | "float" | "any"), in key order.
    key_classes: tuple[str, ...] = ()
    #: whether the native C kernel can own this map (int64 keys, numeric
    #: values, arity within the generated entry-point range).
    native: bool = False
    native_reason: str = ""

    @property
    def columnar(self) -> bool:
        return self.kind == "columnar"

    @property
    def label(self) -> str:
        """Compact tag for IR dumps and generated-module headers."""
        if not self.columnar:
            return "dict"
        return f"columnar[{self.value_class}]"

    def create(self):
        """Fresh empty storage for this map."""
        if not self.columnar:
            return {}
        from repro.runtime.storage import ColumnarMap

        return ColumnarMap(self.arity, _VALUE_KINDS[self.value_class])


@dataclass(frozen=True)
class StoragePlan:
    """The per-map storage plan of one compiled program."""

    maps: dict[str, MapStorage]

    def storage_for(self, name: str) -> MapStorage:
        return self.maps[name]

    def create(self, name: str):
        """Fresh empty storage for one map."""
        return self.maps[name].create()

    def create_maps(self) -> dict:
        """Fresh storage for every map (what engines construct from)."""
        return {name: storage.create() for name, storage in self.maps.items()}

    @property
    def columnar_maps(self) -> tuple[str, ...]:
        return tuple(
            sorted(name for name, s in self.maps.items() if s.columnar)
        )

    @property
    def native_maps(self) -> tuple[str, ...]:
        """Maps the generated C kernel can own (see ``codegen/native.py``)."""
        return tuple(
            sorted(name for name, s in self.maps.items() if s.native)
        )

    def describe(self) -> str:
        """Human-readable summary (compile trace / generated header)."""
        lines = ["== storage plan =="]
        for name in sorted(self.maps):
            storage = self.maps[name]
            native = " [native-eligible]" if storage.native else ""
            lines.append(
                f"map {name}: {storage.label}{native} ({storage.reason})"
            )
        return "\n".join(lines)


def _float_capable_vars(defn: Expr, program: CompiledProgram) -> frozenset[str]:
    """Variables that *may* carry FLOAT column values.

    The complement of this set is integer-typed: every base-relation atom
    binding such a variable does so at a non-FLOAT column.
    """
    float_positions = program.float_columns
    out: set[str] = set()
    for node in walk(defn):
        if not isinstance(node, Rel):
            continue
        floats = float_positions.get(node.name, frozenset())
        for position in floats:
            arg = node.args[position]
            if isinstance(arg, Var):
                out.add(arg.name)
    return frozenset(out)


def _int_factor(
    factor: Expr, float_capable: frozenset[str], int_maps: frozenset[str]
) -> bool:
    """Whether this value-position factor is provably an exact integer.

    Comparisons, lifts, EXISTS tests and relation atoms always are
    (0/1 values and tuple multiplicities); constants, variables and map
    references are checked, divisions never qualify.
    """
    from repro.algebra.expr import Cmp, Exists, Lift

    if isinstance(factor, (Cmp, Exists, Lift, Rel)):
        return True
    if isinstance(factor, Const):
        return isinstance(factor.value, int)
    if isinstance(factor, Var):
        return factor.name not in float_capable
    if isinstance(factor, MapRef):
        return factor.name in int_maps
    if isinstance(factor, Neg):
        return _int_factor(factor.body, float_capable, int_maps)
    if isinstance(factor, (Mul, Add)):
        return all(
            _int_factor(child, float_capable, int_maps)
            for child in factor.children()
        )
    if isinstance(factor, AggSum):
        return _always_int_body(factor.body, float_capable, int_maps)
    return False


def _always_int_body(
    body: Expr, float_capable: frozenset[str], int_maps: frozenset[str]
) -> bool:
    """True when every monomial of ``body`` is built from int factors."""
    try:
        expanded = monomials(body)
    except Exception:
        return False
    for coeff, factors in expanded:
        if isinstance(coeff, float):
            return False
        if not all(
            _int_factor(factor, float_capable, int_maps)
            for factor in factors
        ):
            return False
    return True


def _always_int(
    map_def, program: CompiledProgram, int_maps: frozenset[str]
) -> bool:
    """Whether every ring value of the map is provably an exact integer.

    Sharper than :func:`repro.ir.optimize.exact_value_maps` (which
    excludes any map whose definition *touches* a FLOAT relation): here a
    FLOAT column only taints the maps whose value position actually
    carries it, so group-by ``count`` slots over float streams still
    prove integer.  Used for storage planning only — the optimiser's
    reorder gates keep the conservative proof.
    """
    defn = map_def.defn
    body = defn.body if isinstance(defn, AggSum) else defn
    float_capable = _float_capable_vars(defn, program)
    return _always_int_body(body, float_capable, int_maps)


def _float_typed_vars(defn: Expr, program: CompiledProgram) -> frozenset[str]:
    """Variables provably bound to FLOAT column values.

    A variable qualifies when every base-relation atom binding it does so
    at a FLOAT column position (a variable equated across a FLOAT and an
    INT column may carry the int side's value, so it is dropped).
    """
    float_positions = program.float_columns
    candidates: set[str] = set()
    demoted: set[str] = set()
    for node in walk(defn):
        if not isinstance(node, Rel):
            continue
        floats = float_positions.get(node.name, frozenset())
        for position, arg in enumerate(node.args):
            if not isinstance(arg, Var):
                continue
            if position in floats:
                candidates.add(arg.name)
            else:
                demoted.add(arg.name)
    return frozenset(candidates - demoted)


def _float_factor(
    factor: Expr, float_vars: frozenset[str], float_maps: frozenset[str]
) -> bool:
    """Whether this value-position factor is provably a float.

    Comparisons, lifts, EXISTS and relation atoms yield 0/1/multiplicity
    integers and never qualify; the proof only fires on float literals,
    divisions, FLOAT-column variables and always-float map references.
    """
    if isinstance(factor, Div):
        return True
    if isinstance(factor, Const):
        return isinstance(factor.value, float)
    if isinstance(factor, Var):
        return factor.name in float_vars
    if isinstance(factor, MapRef):
        return factor.name in float_maps
    if isinstance(factor, Neg):
        return _float_factor(factor.body, float_vars, float_maps)
    if isinstance(factor, Mul):
        return any(
            _float_factor(child, float_vars, float_maps)
            for child in factor.factors
        )
    if isinstance(factor, Add):
        return all(
            _float_factor(term, float_vars, float_maps)
            for term in factor.terms
        )
    if isinstance(factor, AggSum):
        return _always_float_body(factor.body, float_vars, float_maps)
    return False


def _always_float_body(
    body: Expr, float_vars: frozenset[str], float_maps: frozenset[str]
) -> bool:
    """True when every monomial of ``body`` carries a float factor."""
    try:
        expanded = monomials(body)
    except Exception:
        return False
    if not expanded:
        return False  # identically zero: nothing to type
    for coeff, factors in expanded:
        if isinstance(coeff, float):
            continue
        if not any(
            _float_factor(factor, float_vars, float_maps)
            for factor in factors
        ):
            return False
    return True


def _always_float(
    map_def, program: CompiledProgram, float_maps: frozenset[str]
) -> bool:
    """Whether every ring value of the map is provably a Python float."""
    defn = map_def.defn
    body = defn.body if isinstance(defn, AggSum) else defn
    float_vars = _float_typed_vars(defn, program)
    return _always_float_body(body, float_vars, float_maps)


def _key_classes(map_def, program: CompiledProgram) -> tuple[str, ...]:
    """Per-key-position type classes ("int" | "float" | "any").

    A key variable is class "int" when every base-relation atom binding
    it does so at a non-FLOAT column and it is never Lift-bound (a lift
    body is an arbitrary computed scalar, so its Python type is
    unproven); "float" when it is FLOAT-column-bound only; "any"
    otherwise.  The "int" class is what licenses the native C kernel:
    those key columns are provably int64-packable by the same evidence
    that backs :func:`_float_capable_vars`.
    """
    from repro.algebra.expr import Lift

    defn = map_def.defn
    float_positions = program.float_columns
    int_bound: set[str] = set()
    float_bound: set[str] = set()
    unproven: set[str] = set()
    for node in walk(defn):
        if isinstance(node, Lift):
            unproven.add(node.var)
            continue
        if not isinstance(node, Rel):
            continue
        floats = float_positions.get(node.name, frozenset())
        for position, arg in enumerate(node.args):
            if not isinstance(arg, Var):
                continue
            if position in floats:
                float_bound.add(arg.name)
            else:
                int_bound.add(arg.name)

    def classify(var: str) -> str:
        if var in unproven:
            return "any"
        if var in int_bound:
            return "int" if var not in float_bound else "any"
        if var in float_bound:
            return "float"
        return "any"

    return tuple(classify(var) for var in map_def.keys)


def _native_eligibility(
    kind: str, value_class: str, arity: int, key_classes: tuple[str, ...]
) -> tuple[bool, str]:
    """Whether the generated C kernel can own this map, and why (not)."""
    if kind != "columnar":
        return False, "dict storage"
    if not 1 <= arity <= NATIVE_MAX_ARITY:
        return False, f"arity {arity} outside generated range 1..{NATIVE_MAX_ARITY}"
    if value_class not in ("int", "float"):
        return False, "boxed value column"
    bad = [
        f"key[{position}]: {cls}"
        for position, cls in enumerate(key_classes)
        if cls != "int"
    ]
    if bad:
        return False, "non-int64 key columns (" + ", ".join(bad) + ")"
    return True, f"int64 keys, {value_class} values"


def analyze_storage(program: CompiledProgram) -> StoragePlan:
    """Compute (and memoise) the storage plan for a compiled program.

    Like the partitioning spec, the plan is a pure function of the
    immutable-after-compile program, so it is cached on the program
    object — the engine, the lowering, the code generator and the CLI
    all share one analysis.
    """
    cached = getattr(program, "_storage_plan", None)
    if cached is not None:
        return cached
    plan = _analyze_storage(program)
    program._storage_plan = plan
    return plan


def _analyze_storage(program: CompiledProgram) -> StoragePlan:
    from repro.ir.optimize import exact_value_maps

    # Int fixpoint, seeded with the optimiser's exact-integer proof and
    # the occurrence maps (their values are tuple multiplicities whatever
    # the key columns hold), then widened by the per-value-position proof
    # above; map references resolve against the previous round's verdicts.
    int_maps: set[str] = set(exact_value_maps(program))
    int_maps.update(
        name
        for name, map_def in program.maps.items()
        if map_def.role == "occurrence"
    )
    changed = True
    while changed:
        changed = False
        for name, map_def in program.maps.items():
            if name in int_maps:
                continue
            if _always_int(map_def, program, frozenset(int_maps)):
                int_maps.add(name)
                changed = True

    # Float fixpoint over the remainder: a map whose every defining
    # monomial carries a float factor is always-float.
    float_maps: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, map_def in program.maps.items():
            if name in int_maps or name in float_maps:
                continue
            if _always_float(map_def, program, frozenset(float_maps)):
                float_maps.add(name)
                changed = True

    decisions: dict[str, MapStorage] = {}
    for name, map_def in program.maps.items():
        arity = map_def.arity
        if map_def.role == "auxiliary":
            # Extremum/distinct caches are maintained by Finalize steps
            # (pop/re-derive writes, column values rather than ring sums):
            # plain dicts, never native.
            decisions[name] = MapStorage(
                name, "dict", "any", arity,
                "auxiliary extremum/distinct cache (Finalize-maintained)",
                native=False,
                native_reason="Finalize-maintained auxiliary cache",
            )
            continue
        if arity == 0:
            if name in int_maps:
                scalar_class = "int"
            elif name in float_maps:
                scalar_class = "float"
            else:
                scalar_class = "any"
            decisions[name] = MapStorage(
                name, "dict", scalar_class, 0, "scalar map: nothing to pack"
            )
            continue
        if name in int_maps:
            kind, value_class, reason = (
                "columnar", "int", "exact-integer ring proof"
            )
        elif name in float_maps:
            kind, value_class, reason = (
                "columnar", "float",
                "every defining monomial carries a float factor",
            )
        else:
            kind, value_class, reason = (
                "columnar", "object",
                "packed keys, boxed values (value type unproven)",
            )
        key_classes = _key_classes(map_def, program)
        native, native_reason = _native_eligibility(
            kind, value_class, arity, key_classes
        )
        if native and name in program.finalizers:
            # The C kernel applies updates itself and would bypass the
            # Finalize step maintaining this map's auxiliary caches —
            # decline up front rather than eject mid-stream.
            native = False
            native_reason = (
                "feeds a Finalize-maintained auxiliary cache"
            )
        decisions[name] = MapStorage(
            name, kind, value_class, arity, reason,
            key_classes=key_classes,
            native=native,
            native_reason=native_reason,
        )
    return StoragePlan(maps=decisions)
