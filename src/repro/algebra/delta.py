"""Delta derivation: how a calculus expression changes under a single update.

Given a formal event ±R(p1, ..., pn) — an insert or delete of one tuple,
whose component values are named by fresh *event parameters* — this module
produces an expression for the change of any query: the **delta invariant**

    eval(Q, db_after) == eval(Q, db_before) + eval(delta(Q, event), db_before)

holds with the event parameters bound to the affected tuple's values (the
property tests in ``tests/algebra/test_delta.py`` check exactly this).

The rules are the paper's: deltas of sums are sums of deltas, deltas of
products expand by the discrete product rule (including the second-order
cross term), and the delta of the updated relation atom is a singleton
(written as lifts binding the atom's variables to the event parameters).
Non-linear nodes (Lift, Exists, Cmp, Div over stream-dependent bodies) use
the finite-difference form ``f(e + delta e) - f(e)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AlgebraError
from repro.algebra.expr import (
    Add,
    AggSum,
    Cmp,
    Const,
    Div,
    Exists,
    Expr,
    Lift,
    MapRef,
    Mul,
    Neg,
    Rel,
    Var,
    ZERO,
    add,
    contains_relation,
    mul,
    neg,
    walk,
)


@dataclass(frozen=True)
class Event:
    """A formal single-tuple update event on a base relation.

    ``params`` are the names of the trigger's formal parameters, one per
    column of the relation; ``sign`` is +1 for an insert and -1 for a
    delete.
    """

    relation: str
    sign: int
    params: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise AlgebraError(f"event sign must be +1 or -1, got {self.sign}")

    @property
    def is_insert(self) -> bool:
        return self.sign == 1

    @property
    def name(self) -> str:
        kind = "insert" if self.is_insert else "delete"
        return f"on_{kind}_{self.relation}"

    def __repr__(self) -> str:
        symbol = "+" if self.is_insert else "-"
        return f"{symbol}{self.relation}({', '.join(self.params)})"


def delta(expr: Expr, event: Event) -> Expr:
    """The (unsimplified) delta of ``expr`` with respect to ``event``."""
    if not contains_relation(expr, event.relation):
        return ZERO
    if any(isinstance(node, MapRef) for node in walk(expr)):
        raise AlgebraError(
            "cannot take the delta of an expression mixing base relations "
            "with map references; deltas apply to map *definitions*"
        )

    if isinstance(expr, Rel):
        if expr.name != event.relation:
            return ZERO
        return _singleton_delta(expr, event)

    if isinstance(expr, (Const, Var)):
        return ZERO

    if isinstance(expr, Add):
        return add(*(delta(t, event) for t in expr.terms))

    if isinstance(expr, Neg):
        return neg(delta(expr.body, event))

    if isinstance(expr, Mul):
        return _product_delta(expr.factors, event)

    if isinstance(expr, AggSum):
        return AggSum(expr.group, delta(expr.body, event))

    if isinstance(expr, Lift):
        d = delta(expr.body, event)
        if d == ZERO:
            return ZERO
        return add(Lift(expr.var, add(expr.body, d)), neg(Lift(expr.var, expr.body)))

    if isinstance(expr, Exists):
        d = delta(expr.body, event)
        if d == ZERO:
            return ZERO
        return add(Exists(add(expr.body, d)), neg(Exists(expr.body)))

    if isinstance(expr, Cmp):
        dl = delta(expr.left, event)
        dr = delta(expr.right, event)
        if dl == ZERO and dr == ZERO:
            return ZERO
        return add(
            Cmp(expr.op, add(expr.left, dl), add(expr.right, dr)),
            neg(expr),
        )

    if isinstance(expr, Div):
        dl = delta(expr.left, event)
        dr = delta(expr.right, event)
        if dl == ZERO and dr == ZERO:
            return ZERO
        return add(
            Div(add(expr.left, dl), add(expr.right, dr)),
            neg(expr),
        )

    raise AlgebraError(f"cannot take delta of node {type(expr).__name__}")


def _singleton_delta(atom: Rel, event: Event) -> Expr:
    """Delta of the updated relation atom: a ±1 singleton.

    Variable arguments become lifts binding them to the event parameters
    (equality tests if already bound); constant arguments become equality
    predicates on the parameters.
    """
    if len(atom.args) != len(event.params):
        raise AlgebraError(
            f"event {event!r} arity does not match atom {atom!r}"
        )
    factors: list[Expr] = []
    for arg, param in zip(atom.args, event.params):
        if isinstance(arg, Var):
            factors.append(Lift(arg.name, Var(param)))
        else:
            factors.append(Cmp("=", Var(param), arg))
    body = mul(*factors)
    return body if event.is_insert else neg(body)


def _product_delta(factors: tuple[Expr, ...], event: Event) -> Expr:
    """Discrete product rule, applied right-associatively.

    delta(e1 * rest) = delta(e1)*rest + e1*delta(rest) + delta(e1)*delta(rest)
    """
    if len(factors) == 1:
        return delta(factors[0], event)
    head, tail = factors[0], factors[1:]
    d_head = delta(head, event)
    rest = mul(*tail)
    d_rest = _product_delta(tail, event)
    terms: list[Expr] = []
    if d_head != ZERO:
        terms.append(mul(d_head, rest))
    if d_rest != ZERO:
        terms.append(mul(head, d_rest))
    if d_head != ZERO and d_rest != ZERO:
        terms.append(mul(d_head, d_rest))
    return add(*terms)


def second_order_delta(defn: Expr, first: Event, second: Event) -> Expr:
    """The delta-of-delta: how ``defn``'s *delta* changes under another event.

    ``delta(defn, first)`` is the per-event maintenance work for ``first``;
    its delta with respect to ``second`` measures how that work shifts once
    another tuple of the batch has been applied — the higher-order delta of
    Ahmad et al. (and the nested incrementalisation DBSP formalises).  The
    result drives the batch-sink classification (:func:`batch_delta_order`):
    a vanishing second-order delta means per-row deltas are independent of
    batch position and may be summed (first-order accumulation); a
    non-vanishing one means the batch must carry a correction term.

    Both events must carry distinct parameter names (the second event's
    tuple is formally different from the first's).
    """
    if set(first.params) & set(second.params):
        raise AlgebraError(
            "second_order_delta requires disjoint event parameters, got "
            f"{first!r} and {second!r}"
        )
    from repro.algebra.simplify import simplify

    inner = simplify(delta(defn, first), bound=first.params)
    if inner == ZERO:
        return ZERO
    return simplify(
        delta(inner, second), bound=first.params + second.params
    )


def batch_delta_order(defn: Expr, event: Event) -> int:
    """How a map's delta behaves across a batch of same-``(relation, sign)``
    events: the order of the lowest non-vanishing delta beyond which all
    higher deltas are irrelevant to batch absorption.

    * ``0`` — the map does not change under this event at all;
    * ``1`` — the per-event delta is *state-independent with respect to this
      batch*: applying other batch rows first does not change it, so the
      batch delta is the plain sum of per-row deltas (Z-set accumulation);
    * ``2`` — the per-event delta itself shifts as the batch applies
      (non-linear shapes: nested aggregates, Exists, comparisons against
      stream-derived thresholds); absorbing the batch needs a second-order
      correction.
    """
    twin = Event(
        event.relation,
        event.sign,
        tuple(f"{param}__o2" for param in event.params),
    )
    from repro.algebra.simplify import simplify

    first = simplify(delta(defn, event), bound=event.params)
    if first == ZERO:
        return 0
    second = simplify(
        delta(first, twin), bound=event.params + twin.params
    )
    return 1 if second == ZERO else 2


def event_for(relation: str, columns: tuple[str, ...], sign: int) -> Event:
    """Build a formal event whose parameters embed the relation name.

    Parameter names are chosen to be unlikely to collide with query
    variables (``compiler`` additionally renames query variables apart).
    """
    params = tuple(f"ev_{relation.lower()}_{c.lower()}" for c in columns)
    return Event(relation, sign, params)
