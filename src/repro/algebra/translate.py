"""Translation from bound SQL to the map algebra.

The output of translation is a :class:`TranslatedQuery`: one calculus
expression per *aggregate slot* plus a small result-expression tree that the
view layer evaluates to produce final rows.  Design decisions that matter:

* **Equijoin unification** — conjunctive ``a.x = b.y`` predicates unify the
  two column variables into one (and ``a.x = 3`` pins the variable to a
  constant inside the relation atom).  This is what makes the compiler's
  materialised maps keyed for O(1) lookups instead of scans, reproducing the
  map shapes of the paper's Figure 2.
* **Aggregate expansion** — ``avg`` becomes a sum slot and a count slot
  divided in the view layer; ``min``/``max`` become occurrence-count maps
  keyed by (group, value), from which the view extracts the extreme value
  (exactly how production DBToaster handles non-invertible aggregates).
* **Hidden count slot** — every grouped query gets an implicit ``count(*)``
  slot so group existence under deletions is exact (a group vanishes when
  its row count reaches zero, even if visible sums happen to be zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import TranslationError
from repro.algebra.expr import (
    AggSum,
    Cmp,
    Const,
    Div,
    Exists,
    Expr,
    FreshNamer,
    Lift,
    Rel,
    Var,
    ONE,
    ZERO,
    add,
    mul,
    neg,
)
from repro.sql.ast import (
    AggregateCall,
    Arith,
    BetweenExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    ExistsExpr,
    InExpr,
    Literal,
    Not,
    ScalarSubquery,
    SelectQuery,
    SqlExpr,
    Star,
    UnaryMinus,
)
from repro.sql.binder import BoundQuery, bind_query
from repro.sql.catalog import Catalog


# ---------------------------------------------------------------------------
# Result expressions (evaluated by the view layer over the maintained maps)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RSlot:
    """The value of aggregate slot ``index`` for the current group."""

    index: int


@dataclass(frozen=True)
class RGroup:
    """The value of group-by column ``index`` of the current group key."""

    index: int


@dataclass(frozen=True)
class RConst:
    value: Union[int, float, str]


@dataclass(frozen=True)
class RBin:
    op: str  # + - * /
    left: "ResultExpr"
    right: "ResultExpr"


@dataclass(frozen=True)
class RNeg:
    operand: "ResultExpr"


ResultExpr = Union[RSlot, RGroup, RConst, RBin, RNeg]


def eval_result(expr: ResultExpr, group_key: tuple, slot_values: list) -> object:
    """Evaluate a result expression given a group key and slot values."""
    if isinstance(expr, RSlot):
        return slot_values[expr.index]
    if isinstance(expr, RGroup):
        return group_key[expr.index]
    if isinstance(expr, RConst):
        return expr.value
    if isinstance(expr, RNeg):
        return -eval_result(expr.operand, group_key, slot_values)  # type: ignore
    left = eval_result(expr.left, group_key, slot_values)
    right = eval_result(expr.right, group_key, slot_values)
    if expr.op == "+":
        return left + right  # type: ignore[operator]
    if expr.op == "-":
        return left - right  # type: ignore[operator]
    if expr.op == "*":
        return left * right  # type: ignore[operator]
    if expr.op == "/":
        return 0 if right == 0 else left / right  # type: ignore[operator]
    raise TranslationError(f"unknown result operator {expr.op!r}")


# ---------------------------------------------------------------------------
# Aggregate slots
# ---------------------------------------------------------------------------


@dataclass
class AggregateSpec:
    """One maintained aggregate: a closed calculus query.

    ``kind`` is ``"sum"`` for invertible aggregates (sum/count and the
    components of avg) whose map directly stores the aggregate value, or
    ``"min"``/``"max"``/``"distinct"`` for occurrence-count maps keyed by
    ``group_vars + (value_var,)`` from which the extreme value (min/max)
    or the number of distinct present values (count-distinct) is derived.
    """

    name: str
    kind: str  # "sum" | "min" | "max" | "distinct"
    expr: Expr
    group_vars: tuple[str, ...]
    value_var: Optional[str] = None  # non-sum kinds: the lifted value variable


@dataclass
class TranslatedItem:
    name: str
    result: ResultExpr


@dataclass
class TranslatedQuery:
    """Everything the engines need to maintain and render one SQL query."""

    name: str
    group_names: tuple[str, ...]
    group_vars: tuple[str, ...]
    items: list[TranslatedItem]
    aggregates: list[AggregateSpec]
    relations: tuple[str, ...]
    count_slot: Optional[int]  # count(*) slot index; None for scalar queries
    sql: Optional[str] = None

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(item.name for item in self.items)

    @property
    def is_grouped(self) -> bool:
        return bool(self.group_vars)


def translate_sql(
    sql: str, catalog: Catalog, name: str = "q"
) -> TranslatedQuery:
    """Parse, bind and translate a SQL string in one step."""
    from repro.sql.parser import parse_query

    bound = bind_query(parse_query(sql), catalog)
    translated = translate_query(bound, name=name)
    translated.sql = sql
    return translated


def translate_query(bound: BoundQuery, name: str = "q") -> TranslatedQuery:
    """Translate a bound query into aggregate slots + result expressions."""
    translator = _Translator(bound)
    return translator.translate(name)


# ---------------------------------------------------------------------------
# Implementation
# ---------------------------------------------------------------------------


class _UnionFind:
    """Union-find over column variables, tracking pinned constants."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._constant: dict[str, Const] = {}
        self._rank: dict[str, int] = {}

    def add(self, var: str, rank: int = 0) -> None:
        if var not in self._parent:
            self._parent[var] = var
            self._rank[var] = rank

    def find(self, var: str) -> str:
        root = var
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[var] != root:
            self._parent[var], var = root, self._parent[var]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        # The higher-ranked variable (outer scope) becomes the representative.
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        const = self._constant.pop(rb, None)
        if const is not None:
            self.pin(ra, const)

    def pin(self, var: str, value: Const) -> bool:
        """Pin a class to a constant; returns False on contradiction."""
        root = self.find(var)
        existing = self._constant.get(root)
        if existing is not None and existing != value:
            return False
        self._constant[root] = value
        return True

    def term_for(self, var: str) -> Expr:
        root = self.find(var)
        return self._constant.get(root, Var(root))


@dataclass
class _Scope:
    """Variable bindings for one query level."""

    vars: dict[tuple[str, str], str]  # (binding, column-lower) -> variable
    parent: Optional["_Scope"] = None

    def lookup(self, binding: str, column: str, depth: int) -> str:
        scope: Optional[_Scope] = self
        for _ in range(depth):
            if scope is None:
                break
            scope = scope.parent
        if scope is None:
            raise TranslationError(f"no scope at depth {depth} for {binding}.{column}")
        try:
            return scope.vars[(binding, column.lower())]
        except KeyError:
            raise TranslationError(
                f"unresolved column {binding}.{column}"
            ) from None


class _Translator:
    def __init__(self, bound: BoundQuery) -> None:
        self.bound = bound
        self.namer = FreshNamer("t")
        self.uf = _UnionFind()
        self.contradiction = False

    def translate(self, name: str) -> TranslatedQuery:
        query = self.bound.query
        body, scope = self._translate_from_where(query, parent_scope=None, depth_rank=1)

        # Group-by columns resolve to representative variables.
        group_vars: list[str] = []
        group_names: list[str] = []
        group_index_of: dict[tuple[str, str], int] = {}
        for col in query.group_by:
            resolution = self.bound.resolve(col)
            var = scope.lookup(resolution.binding, resolution.column, resolution.depth)
            term = self.uf.term_for(var)
            if not isinstance(term, Var):
                # Pinned to a constant: the group column is constant; keep a
                # variable lifted to the constant so the key column survives.
                fresh = self.namer.fresh(var)
                body = mul(body, Lift(fresh, term))
                term = Var(fresh)
            if term.name not in group_vars:
                group_vars.append(term.name)
            group_index_of[(resolution.binding, resolution.column.lower())] = (
                group_vars.index(term.name)
            )
            group_names.append(col.column.lower())

        specs: list[AggregateSpec] = []
        items: list[TranslatedItem] = []
        used_names: set[str] = set()

        def add_spec(spec: AggregateSpec) -> int:
            if spec.name in used_names:
                suffix = 2
                while f"{spec.name}_{suffix}" in used_names:
                    suffix += 1
                spec.name = f"{spec.name}_{suffix}"
            used_names.add(spec.name)
            specs.append(spec)
            return len(specs) - 1

        gv = tuple(group_vars)

        def finalize(value: Expr) -> Expr:
            inner = body if value == ONE else mul(body, value)
            return AggSum(gv, inner)

        for info, item in zip(self.bound.item_info, query.items):
            if not info.is_aggregate:
                resolution = self.bound.resolve(item.expr)  # type: ignore[arg-type]
                index = group_index_of[
                    (resolution.binding, resolution.column.lower())
                ]
                items.append(TranslatedItem(info.name, RGroup(index)))
                continue
            result = self._translate_item_expr(
                item.expr, scope, add_spec, finalize, gv, info.name
            )
            items.append(TranslatedItem(info.name, result))

        # Hidden count(*) slot: grouped queries need exact group existence
        # under deletions.  Scalar queries always have exactly one result row,
        # so no extra map is maintained for them (an existing count is reused
        # either way).
        count_slot = None
        for index, spec in enumerate(specs):
            if spec.kind == "sum" and spec.expr == finalize(ONE):
                count_slot = index
                break
        if count_slot is None and gv:
            count_slot = add_spec(
                AggregateSpec(
                    name="__count", kind="sum", expr=finalize(ONE), group_vars=gv
                )
            )

        if self.contradiction:
            # An always-false equality: every slot is the empty aggregate.
            for spec in specs:
                spec.expr = AggSum(gv, ZERO) if gv else AggSum((), ZERO)

        return TranslatedQuery(
            name=name,
            group_names=tuple(group_names),
            group_vars=gv,
            items=items,
            aggregates=specs,
            relations=tuple(sorted(self.bound.relations_used)),
            count_slot=count_slot,
        )

    # -- FROM/WHERE -------------------------------------------------------

    def _translate_from_where(
        self,
        query: SelectQuery,
        parent_scope: Optional[_Scope],
        depth_rank: int,
    ) -> tuple[Expr, _Scope]:
        """Build the join body for one query level.

        ``depth_rank`` orders union-find representatives so outer-scope
        variables win over inner (correlated) ones.
        """
        scope_vars: dict[tuple[str, str], str] = {}
        for table in query.tables:
            relation = self.bound.catalog.get(table.name)
            binding = table.binding.lower()
            for column in relation.columns:
                var = self.namer.fresh(f"{binding}_{column.name.lower()}")
                scope_vars[(binding, column.name.lower())] = var
                self.uf.add(var, rank=depth_rank)
        scope = _Scope(vars=scope_vars, parent=parent_scope)

        conjuncts = _split_conjuncts(query.where)
        residual: list[SqlExpr] = []
        for conjunct in conjuncts:
            if not self._try_unify(conjunct, scope):
                residual.append(conjunct)

        atoms: list[Expr] = []
        for table in query.tables:
            relation = self.bound.catalog.get(table.name)
            binding = table.binding.lower()
            args = tuple(
                self.uf.term_for(scope_vars[(binding, column.name.lower())])
                for column in relation.columns
            )
            atoms.append(Rel(relation.name, args))

        predicates = [self._translate_predicate(p, scope) for p in residual]
        return mul(*atoms, *predicates), scope

    def _try_unify(self, conjunct: SqlExpr, scope: _Scope) -> bool:
        """Absorb ``col = col`` and ``col = literal`` equalities.

        Only columns of the *current* scope participate: correlated
        equalities stay as residual comparison factors (the simplifier's
        equality propagation later pushes them into atoms where legal),
        because outer-scope atoms are already built when subqueries
        translate.
        """
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return False
        left, right = conjunct.left, conjunct.right

        def var_of(node: SqlExpr) -> Optional[str]:
            if not isinstance(node, ColumnRef):
                return None
            resolution = self.bound.resolve(node)
            if resolution.depth != 0:
                return None
            return scope.lookup(resolution.binding, resolution.column, resolution.depth)

        lvar, rvar = var_of(left), var_of(right)
        if lvar is not None and rvar is not None:
            self.uf.union(lvar, rvar)
            return True
        if lvar is not None and isinstance(right, Literal):
            if not self.uf.pin(lvar, Const(right.value)):
                self.contradiction = True
            return True
        if rvar is not None and isinstance(left, Literal):
            if not self.uf.pin(rvar, Const(left.value)):
                self.contradiction = True
            return True
        return False

    # -- predicates ---------------------------------------------------------

    def _translate_predicate(self, expr: SqlExpr, scope: _Scope) -> Expr:
        """Translate a boolean SQL expression to a 0/1-valued factor."""
        if isinstance(expr, Comparison):
            return Cmp(
                expr.op,
                self._translate_scalar(expr.left, scope),
                self._translate_scalar(expr.right, scope),
            )
        if isinstance(expr, BetweenExpr):
            operand = self._translate_scalar(expr.operand, scope)
            return mul(
                Cmp(">=", operand, self._translate_scalar(expr.low, scope)),
                Cmp("<=", operand, self._translate_scalar(expr.high, scope)),
            )
        if isinstance(expr, BoolOp) and expr.op == "AND":
            factors = []
            for operand in expr.operands:
                factors.append(self._translate_predicate(operand, scope))
            return mul(*factors)
        if isinstance(expr, BoolOp) and expr.op == "OR":
            return Exists(add(*(self._translate_predicate(o, scope) for o in expr.operands)))
        if isinstance(expr, Not):
            inner = self._translate_predicate(expr.operand, scope)
            return add(ONE, neg(inner))
        if isinstance(expr, ExistsExpr):
            sub_body, _ = self._translate_from_where(
                expr.query, parent_scope=scope, depth_rank=0
            )
            return Exists(AggSum((), sub_body))
        if isinstance(expr, InExpr):
            sub_body, sub_scope = self._translate_from_where(
                expr.query, parent_scope=scope, depth_rank=0
            )
            item = expr.query.items[0].expr
            member = self._translate_scalar(item, sub_scope)
            needle = self._translate_scalar(expr.needle, scope)
            return Exists(AggSum((), mul(sub_body, Cmp("=", member, needle))))
        raise TranslationError(f"unsupported predicate {expr!r}")

    # -- scalars ------------------------------------------------------------

    def _translate_scalar(self, expr: SqlExpr, scope: _Scope) -> Expr:
        if isinstance(expr, Literal):
            return Const(expr.value)
        if isinstance(expr, ColumnRef):
            resolution = self.bound.resolve(expr)
            var = scope.lookup(resolution.binding, resolution.column, resolution.depth)
            return self.uf.term_for(var)
        if isinstance(expr, UnaryMinus):
            return neg(self._translate_scalar(expr.operand, scope))
        if isinstance(expr, Arith):
            left = self._translate_scalar(expr.left, scope)
            right = self._translate_scalar(expr.right, scope)
            if expr.op == "+":
                return add(left, right)
            if expr.op == "-":
                return add(left, neg(right))
            if expr.op == "*":
                return mul(left, right)
            if expr.op == "/":
                return Div(left, right)
            raise TranslationError(f"unknown arithmetic operator {expr.op!r}")
        if isinstance(expr, ScalarSubquery):
            sub = expr.query
            sub_body, sub_scope = self._translate_from_where(
                sub, parent_scope=scope, depth_rank=0
            )
            agg = sub.items[0].expr
            if not isinstance(agg, AggregateCall):
                raise TranslationError(
                    "scalar subqueries must select a single aggregate"
                )
            if agg.func not in ("SUM", "COUNT"):
                raise TranslationError(
                    f"only sum/count scalar subqueries are supported, got {agg.func}"
                )
            if isinstance(agg.argument, Star):
                value: Expr = ONE
            else:
                value = self._translate_scalar(agg.argument, sub_scope)
            inner = sub_body if value == ONE else mul(sub_body, value)
            return AggSum((), inner)
        raise TranslationError(f"unsupported scalar expression {expr!r}")

    # -- select items ---------------------------------------------------------

    def _translate_item_expr(
        self, expr: SqlExpr, scope, add_spec, finalize, gv, item_name: str
    ) -> ResultExpr:
        """Translate a select item over aggregates into a result tree."""
        if isinstance(expr, Literal):
            return RConst(expr.value)
        if isinstance(expr, UnaryMinus):
            return RNeg(self._translate_item_expr(expr.operand, scope, add_spec, finalize, gv, item_name))
        if isinstance(expr, Arith):
            left = self._translate_item_expr(expr.left, scope, add_spec, finalize, gv, item_name)
            right = self._translate_item_expr(expr.right, scope, add_spec, finalize, gv, item_name)
            return RBin(expr.op, left, right)
        if isinstance(expr, AggregateCall):
            func = expr.func
            slot_base = (
                item_name
                if isinstance(expr, AggregateCall) and item_name
                else func.lower()
            )
            if expr.distinct:
                # COUNT(DISTINCT x): the same occurrence-map shape as
                # min/max — keyed (group..., value) → multiplicity — with
                # the distinct count derived from it (the number of keys
                # with non-zero multiplicity per group).  Structural map
                # sharing makes MIN(x)/MAX(x)/COUNT(DISTINCT x) over the
                # same body maintain one shared occurrence map.
                value = self._translate_scalar(expr.argument, scope)
                value_var = self.namer.fresh("dval")
                occ = AggSum(
                    gv + (value_var,),
                    mul(finalize_body_of(finalize), Lift(value_var, value)),
                )
                index = add_spec(
                    AggregateSpec(
                        name=slot_base,
                        kind="distinct",
                        expr=occ,
                        group_vars=gv,
                        value_var=value_var,
                    )
                )
                return RSlot(index)
            if func in ("SUM", "COUNT"):
                if isinstance(expr.argument, Star):
                    value: Expr = ONE
                else:
                    value = self._translate_scalar(expr.argument, scope)
                index = add_spec(
                    AggregateSpec(
                        name=slot_base, kind="sum", expr=finalize(value), group_vars=gv
                    )
                )
                return RSlot(index)
            if func == "AVG":
                value = self._translate_scalar(expr.argument, scope)
                sum_index = add_spec(
                    AggregateSpec(
                        name=f"{slot_base}_sum",
                        kind="sum",
                        expr=finalize(value),
                        group_vars=gv,
                    )
                )
                count_index = add_spec(
                    AggregateSpec(
                        name=f"{slot_base}_cnt",
                        kind="sum",
                        expr=finalize(ONE),
                        group_vars=gv,
                    )
                )
                return RBin("/", RSlot(sum_index), RSlot(count_index))
            if func in ("MIN", "MAX"):
                value = self._translate_scalar(expr.argument, scope)
                value_var = self.namer.fresh("mval")
                occ = AggSum(
                    gv + (value_var,),
                    mul(finalize_body_of(finalize), Lift(value_var, value)),
                )
                index = add_spec(
                    AggregateSpec(
                        name=slot_base,
                        kind=func.lower(),
                        expr=occ,
                        group_vars=gv,
                        value_var=value_var,
                    )
                )
                return RSlot(index)
            raise TranslationError(
                f"unsupported aggregate {func}; supported aggregates are "
                "SUM, COUNT, AVG, MIN, MAX and COUNT(DISTINCT ...)"
            )
        if isinstance(expr, ColumnRef):
            resolution = self.bound.resolve(expr)
            var = scope.lookup(resolution.binding, resolution.column, resolution.depth)
            rep = self.uf.find(var)
            if rep in gv:
                return RGroup(gv.index(rep))
            raise TranslationError(f"non-grouped column {expr!r} in select item")
        raise TranslationError(f"unsupported select item {expr!r}")


def finalize_body_of(finalize) -> Expr:
    """Recover the bare join body from a ``finalize`` closure.

    ``finalize(ONE)`` is ``AggSum(gv, body)``; min/max occurrence maps need
    the body itself so they can append the value lift inside the aggregate.
    """
    aggregate = finalize(ONE)
    return aggregate.body


def _split_conjuncts(expr: Optional[SqlExpr]) -> list[SqlExpr]:
    if expr is None:
        return []
    if isinstance(expr, BoolOp) and expr.op == "AND":
        out: list[SqlExpr] = []
        for operand in expr.operands:
            out.extend(_split_conjuncts(operand))
        return out
    return [expr]
