"""Reference evaluator: calculus expressions over generalised multiset relations.

This module defines the *meaning* of the map algebra and serves as the
correctness oracle for the whole system: the recursive compiler, the code
generator and every baseline engine are tested against it.

A GMR is a ``dict`` mapping tuples of values to ring values; a database maps
relation (or map) names to GMRs.  Evaluating an expression in an environment
of bound variables yields ``(columns, rows)`` where ``columns`` names the
expression's unbound output variables in order and ``rows`` maps bindings of
those columns to ring values.  Zero-valued rows are pruned, so two GMRs are
semantically equal iff their pruned dictionaries are equal.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import AlgebraError, SchemaError
from repro.algebra.expr import (
    Add,
    AggSum,
    Cmp,
    Const,
    Div,
    Exists,
    Expr,
    Lift,
    MapRef,
    Mul,
    Neg,
    Rel,
    Var,
)
from repro.algebra.schema import output_vars

GMR = dict[tuple, object]
Database = Mapping[str, Mapping]

_NUMERIC = (int, float)


def _is_true(op: str, left: object, right: object) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    lnum = isinstance(left, _NUMERIC) and not isinstance(left, bool)
    rnum = isinstance(right, _NUMERIC) and not isinstance(right, bool)
    if lnum != rnum:
        raise AlgebraError(
            f"ordered comparison between {type(left).__name__} and "
            f"{type(right).__name__}"
        )
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise AlgebraError(f"unknown comparison operator {op!r}")


def prune_zeros(rows: GMR) -> GMR:
    """Drop zero-valued entries; the canonical form of a GMR."""
    return {k: v for k, v in rows.items() if v != 0}


def eval_expr(
    expr: Expr, env: Mapping[str, object], db: Database
) -> tuple[tuple[str, ...], GMR]:
    """Evaluate ``expr`` under ``env`` against ``db``.

    Returns the ordered unbound output columns and the result GMR keyed by
    bindings of those columns.
    """
    cols, rows = _eval(expr, dict(env), db)
    return cols, prune_zeros(rows)


def eval_scalar(expr: Expr, env: Mapping[str, object], db: Database) -> object:
    """Evaluate a contextually scalar expression to a single ring value."""
    cols, rows = _eval(expr, dict(env), db)
    if cols:
        raise SchemaError(
            f"expected a scalar but {expr!r} produced columns {list(cols)}"
        )
    return rows.get((), 0)


def _eval(
    expr: Expr, env: dict[str, object], db: Database
) -> tuple[tuple[str, ...], GMR]:
    if isinstance(expr, Const):
        return (), {(): expr.value}

    if isinstance(expr, Var):
        if expr.name not in env:
            raise SchemaError(f"variable {expr.name!r} is not bound")
        return (), {(): env[expr.name]}

    if isinstance(expr, (Rel, MapRef)):
        return _eval_atom(expr, env, db)

    if isinstance(expr, Cmp):
        left = eval_scalar(expr.left, env, db)
        right = eval_scalar(expr.right, env, db)
        return (), {(): 1 if _is_true(expr.op, left, right) else 0}

    if isinstance(expr, Div):
        num = eval_scalar(expr.left, env, db)
        den = eval_scalar(expr.right, env, db)
        _require_numeric(num)
        _require_numeric(den)
        return (), {(): 0 if den == 0 else num / den}

    if isinstance(expr, Neg):
        cols, rows = _eval(expr.body, env, db)
        return cols, {k: -_require_numeric(v) for k, v in rows.items()}

    if isinstance(expr, Exists):
        cols, rows = _eval(expr.body, env, db)
        return cols, {k: (1 if v != 0 else 0) for k, v in rows.items()}

    if isinstance(expr, Lift):
        value = eval_scalar(expr.body, env, db)
        if expr.var in env:
            return (), {(): 1 if env[expr.var] == value else 0}
        return (expr.var,), {(value,): 1}

    if isinstance(expr, AggSum):
        return _eval_aggsum(expr, env, db)

    if isinstance(expr, Mul):
        return _eval_mul(expr, env, db)

    if isinstance(expr, Add):
        return _eval_add(expr, env, db)

    raise AlgebraError(f"cannot evaluate node {type(expr).__name__}")


def _require_numeric(value: object) -> object:
    if isinstance(value, bool) or not isinstance(value, _NUMERIC):
        raise AlgebraError(f"expected a numeric ring value, got {value!r}")
    return value


def _eval_atom(
    expr: Rel | MapRef, env: dict[str, object], db: Database
) -> tuple[tuple[str, ...], GMR]:
    try:
        relation = db[expr.name]
    except KeyError:
        raise AlgebraError(f"unknown relation or map {expr.name!r}") from None

    # Positions: constants and env-bound vars filter; the first occurrence of
    # an unbound var binds it and later occurrences filter against it.
    out_cols: list[str] = []
    bind_positions: list[int] = []
    filters: list[tuple[int, object]] = []
    dup_checks: list[tuple[int, int]] = []  # (position, earlier bind index)
    local_bound: dict[str, int] = {}
    for pos, arg in enumerate(expr.args):
        if isinstance(arg, Const):
            filters.append((pos, arg.value))
        elif arg.name in env:
            filters.append((pos, env[arg.name]))
        elif arg.name in local_bound:
            dup_checks.append((pos, local_bound[arg.name]))
        else:
            local_bound[arg.name] = len(bind_positions)
            bind_positions.append(pos)
            out_cols.append(arg.name)

    rows: GMR = {}
    arity = len(expr.args)
    for tup, mult in relation.items():
        if len(tup) != arity:
            raise AlgebraError(
                f"tuple arity {len(tup)} does not match atom {expr!r}"
            )
        if any(tup[pos] != val for pos, val in filters):
            continue
        key = tuple(tup[pos] for pos in bind_positions)
        if any(tup[pos] != key[idx] for pos, idx in dup_checks):
            continue
        rows[key] = rows.get(key, 0) + mult
    return tuple(out_cols), rows


def _eval_mul(
    expr: Mul, env: dict[str, object], db: Database
) -> tuple[tuple[str, ...], GMR]:
    # The contextual columns come from the static schema so that an early
    # empty factor still yields a correctly-shaped (empty) GMR.
    col_tuple = tuple(v for v in output_vars(expr) if v not in env)
    partial: list[tuple[dict[str, object], object]] = [({}, 1)]
    for factor in expr.factors:
        next_partial: list[tuple[dict[str, object], object]] = []
        for binding, value in partial:
            if value == 0:
                continue
            scoped_env = {**env, **binding}
            fcols, frows = _eval(factor, scoped_env, db)
            for fkey, fval in frows.items():
                if fval == 0:
                    continue
                new_binding = dict(binding)
                new_binding.update(zip(fcols, fkey))
                next_partial.append((new_binding, _ring_mul(value, fval)))
        partial = next_partial
        if not partial:
            return col_tuple, {}

    rows: GMR = {}
    for binding, value in partial:
        key = tuple(binding[c] for c in col_tuple)
        rows[key] = rows.get(key, 0) + value
    return col_tuple, rows


def _ring_mul(left: object, right: object) -> object:
    _require_numeric(left)
    _require_numeric(right)
    return left * right


def _eval_add(
    expr: Add, env: dict[str, object], db: Database
) -> tuple[tuple[str, ...], GMR]:
    # The contextual column set comes from the static schema so that empty
    # branches still align.
    target = tuple(v for v in output_vars(expr) if v not in env)
    rows: GMR = {}
    for term in expr.terms:
        tcols, trows = _eval(term, env, db)
        extra = [c for c in tcols if c not in target]
        if extra:
            raise SchemaError(
                f"addition branch {term!r} binds {extra} not bound by all "
                "branches"
            )
        missing = [c for c in target if c not in tcols]
        if missing and trows:
            raise SchemaError(
                f"addition branch {term!r} does not bind {missing}"
            )
        positions = [tcols.index(c) for c in target] if trows else []
        for tkey, tval in trows.items():
            key = tuple(tkey[p] for p in positions)
            rows[key] = rows.get(key, 0) + tval
    return target, rows


def _eval_aggsum(
    expr: AggSum, env: dict[str, object], db: Database
) -> tuple[tuple[str, ...], GMR]:
    bcols, brows = _eval(expr.body, env, db)
    target = tuple(g for g in expr.group if g not in env)
    missing = [g for g in target if g not in bcols]
    if missing and brows:
        raise SchemaError(
            f"AggSum group variables {missing} not produced by body columns "
            f"{list(bcols)}"
        )
    positions = [bcols.index(g) for g in target] if brows else []
    rows: GMR = {}
    for bkey, bval in brows.items():
        key = tuple(bkey[p] for p in positions)
        rows[key] = rows.get(key, 0) + bval
    return target, rows


# ---------------------------------------------------------------------------
# GMR helpers shared by engines and tests
# ---------------------------------------------------------------------------


def gmr_from_rows(rows) -> GMR:
    """Build a GMR from an iterable of tuples (each with multiplicity 1)."""
    out: GMR = {}
    for row in rows:
        key = tuple(row)
        out[key] = out.get(key, 0) + 1
    return out


def gmr_add(left: Mapping, right: Mapping) -> GMR:
    """Pointwise sum of two GMRs, pruning zeros."""
    out: GMR = dict(left)
    for key, val in right.items():
        out[key] = out.get(key, 0) + val
    return prune_zeros(out)


def gmr_equal(left: Mapping, right: Mapping) -> bool:
    """Semantic equality of two GMRs (ignoring zero entries)."""
    return prune_zeros(dict(left)) == prune_zeros(dict(right))
