"""The simplification rule set of the map algebra.

This is the reproduction of the paper's "approximately 70 simplification
rules": the rewrites that turn raw deltas into the compact forms of Figure 2.
The major rule families are:

* **structural** — flattening, constant folding, 0/1 identities, combining
  structurally identical monomials (so ``f(e+de) - f(e)`` cancels when the
  inner delta vanishes);
* **polynomial expansion** — products distribute over sums so every
  expression becomes a sum of monomials, the unit the compiler materialises;
* **lift unification** — ``(x ^= t) * e`` becomes ``e[x := t]`` when ``x`` is
  summed out anyway, which is how the event parameters flow into relation
  atoms (the paper's ``sigma_{B=b}(S)`` step);
* **aggregate factorisation** — ``AggSum`` distributes over sums, drops when
  nothing is summed, hoists scalars, and splits into connected components
  over shared summed variables (the paper's join elimination:
  ``sum_A(sigma_B(R)) * sum_D(sigma_C(T))``).

All rules preserve *contextual* semantics: evaluating the result under any
environment binding at least ``bound`` yields the same GMR as the input.
Variables that an enclosing ``AggSum`` does not group by are summed out, and
only those may be unified away; the ``keep`` discipline below enforces this.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import AlgebraError
from repro.algebra.expr import (
    Add,
    AggSum,
    Cmp,
    Const,
    Div,
    Exists,
    Expr,
    Lift,
    MapRef,
    Mul,
    Neg,
    Rel,
    Var,
    ONE,
    ZERO,
    add,
    mul,
    substitute,
)
from repro.algebra.expr import used_vars
from repro.algebra.schema import output_vars

_MAX_PASSES = 12


from dataclasses import dataclass as _dataclass


@_dataclass(frozen=True, slots=True)
class _Presimplified(Expr):
    """Queue sentinel: an already-simplified factor to emit verbatim.

    Used when an AggSum rewrite splices replacement factors back into the
    monomial queue: re-dispatching a rewritten aggregate could loop, but
    emitting it out of sequence would break binding order, so it travels
    through the queue wrapped and is unwrapped on arrival.
    """

    inner: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.inner,)

    def rebuild(self, children):
        (inner,) = children
        return _Presimplified(inner)

    def __repr__(self) -> str:  # pragma: no cover - transient only
        return f"<pre {self.inner!r}>"


Monomial = tuple[object, tuple[Expr, ...]]  # (numeric coefficient, factors)


def simplify(expr: Expr, bound: Iterable[str] = ()) -> Expr:
    """Fully simplify ``expr`` assuming the ``bound`` variables are bound.

    Runs the rule set to a fixpoint (with a safety cap; every individual
    pass is semantics-preserving, so stopping early is always sound).
    """
    ctx = frozenset(bound)
    for _ in range(_MAX_PASSES):
        new = _simplify(expr, ctx, keep=None)
        if new == expr:
            break
        expr = new
    return expr


def normalize(expr: Expr) -> Expr:
    """Structural normal form: expanded polynomial with folded constants.

    Unlike :func:`simplify` this never consults binding context, so it is
    safe on open expressions in any position.
    """
    return _rebuild(_combine(_expand(expr)))


def monomials(expr: Expr) -> list[Monomial]:
    """Expand the top level of ``expr`` into ``(coefficient, factors)`` pairs.

    Only ``Add``/``Mul``/``Neg``/``Const`` structure is expanded; all other
    nodes are kept as opaque factors.  This is the unit of work for the
    compiler's materialisation step.
    """
    return _expand(expr)


# ---------------------------------------------------------------------------
# Polynomial expansion
# ---------------------------------------------------------------------------


def _expand(expr: Expr) -> list[Monomial]:
    if isinstance(expr, Const):
        if isinstance(expr.value, str):
            raise AlgebraError(f"string constant {expr.value!r} used as a ring value")
        return [(expr.value, ())] if expr.value != 0 else []
    if isinstance(expr, Neg):
        return [(_neg_coeff(c), fs) for c, fs in _expand(expr.body)]
    if isinstance(expr, Add):
        out: list[Monomial] = []
        for term in expr.terms:
            out.extend(_expand(term))
        return out
    if isinstance(expr, Mul):
        acc: list[Monomial] = [(1, ())]
        for factor in expr.factors:
            factor_monos = _expand(factor)
            acc = [
                (_mul_coeff(c1, c2), f1 + f2)
                for c1, f1 in acc
                for c2, f2 in factor_monos
            ]
            if not acc:
                return []
        return acc
    return [(1, (expr,))]


def _neg_coeff(c: object) -> object:
    return -c  # type: ignore[operator]


def _mul_coeff(c1: object, c2: object) -> object:
    return c1 * c2  # type: ignore[operator]


def _combine(monos: list[Monomial]) -> list[Monomial]:
    """Sum coefficients of structurally identical monomials, dropping zeros."""
    grouped: dict[tuple[Expr, ...], object] = {}
    order: list[tuple[Expr, ...]] = []
    for coeff, factors in monos:
        if factors not in grouped:
            grouped[factors] = coeff
            order.append(factors)
        else:
            grouped[factors] = grouped[factors] + coeff  # type: ignore[operator]
    out = [(grouped[f], f) for f in order if grouped[f] != 0]
    return out


def _rebuild(monos: list[Monomial]) -> Expr:
    terms: list[Expr] = []
    for coeff, factors in monos:
        parts: list[Expr] = []
        if coeff != 1:
            parts.append(Const(coeff))
        parts.extend(factors)
        terms.append(mul(*parts))
    return add(*terms)


# ---------------------------------------------------------------------------
# The contextual simplification pass
# ---------------------------------------------------------------------------


def _simplify(expr: Expr, ctx: frozenset[str], keep: frozenset[str] | None) -> Expr:
    """One full pass over ``expr``.

    ``ctx`` is the set of variables bound by the surrounding context.
    ``keep`` is the set of output variables that must survive; ``None`` means
    *all* outputs must survive (we are not directly under an ``AggSum`` that
    sums the rest out).
    """
    monos = _expand(expr)
    result: list[Monomial] = []
    for coeff, factors in monos:
        simplified = _simplify_monomial(coeff, factors, ctx, keep)
        if simplified is not None:
            result.append(simplified)
    result = _combine(result)
    result = [(c, _canonical_order(f, ctx)) for c, f in result]
    result = _combine(result)
    result.sort(key=lambda m: tuple(repr(f) for f in m[1]))
    return _rebuild(result)


def _simplify_monomial(
    coeff: object,
    factors: tuple[Expr, ...],
    ctx: frozenset[str],
    keep: frozenset[str] | None,
) -> Monomial | None:
    """Simplify one monomial; returns ``None`` when it reduces to zero."""
    bound = set(ctx)
    subst: dict[str, Expr] = {}
    out: list[Expr] = []
    queue: list[Expr] = list(factors)
    while queue:
        factor = queue.pop(0)
        if subst:
            factor = substitute(factor, subst)

        if isinstance(factor, Const):
            if isinstance(factor.value, str):
                raise AlgebraError(
                    f"string constant {factor.value!r} used as a ring value"
                )
            if factor.value == 0:
                return None
            coeff = coeff * factor.value  # type: ignore[operator]
            continue

        if isinstance(factor, Mul):
            queue[:0] = factor.factors
            continue

        if isinstance(factor, Neg):
            coeff = _neg_coeff(coeff)
            queue.insert(0, factor.body)
            continue

        if isinstance(factor, Var):
            out.append(factor)
            continue

        if isinstance(factor, Cmp):
            folded = _simplify_cmp(factor, bound)
            if folded is ZERO:
                return None
            if folded is not ONE:
                out.append(folded)
            continue

        if isinstance(factor, Div):
            out.append(_simplify_div(factor, bound))
            continue

        if isinstance(factor, Lift):
            action, payload = _simplify_lift(factor, bound, keep, queue, subst)
            if action == "emit":
                out.append(payload)
            elif action == "requeue":
                queue.insert(0, payload)
            # "drop": nothing to do, subst/bound were updated in place.
            continue

        if isinstance(factor, Exists):
            rewritten = _simplify_exists(factor, bound)
            if rewritten is ZERO:
                return None
            if rewritten is ONE:
                continue
            if isinstance(rewritten, Exists):
                out.append(rewritten)
                bound.update(output_vars(rewritten))
            else:
                queue.insert(0, rewritten)
            continue

        if isinstance(factor, _Presimplified):
            out.append(factor.inner)
            bound.update(output_vars(factor.inner))
            continue

        if isinstance(factor, AggSum):
            spliced = _simplify_aggsum(factor, bound)
            if spliced is None:
                return None
            new_factors, hoisted_coeff = spliced
            coeff = coeff * hoisted_coeff  # type: ignore[operator]
            # Splice replacements back *in order*: rewritten aggregates are
            # wrapped so they are emitted verbatim (no re-dispatch loops),
            # while other factors go through the normal dispatch.
            queue[:0] = [
                _Presimplified(nf) if isinstance(nf, AggSum) else nf
                for nf in new_factors
            ]
            continue

        if isinstance(factor, (Rel, MapRef)):
            out.append(factor)
            bound.update(
                a.name
                for a in factor.args
                if isinstance(a, Var) and a.name not in bound
            )
            continue

        if isinstance(factor, Add):
            # Residual sums (e.g. a split AggSum) are re-expanded next pass.
            out.append(factor)
            bound.update(output_vars(factor))
            continue

        raise AlgebraError(f"cannot simplify factor {type(factor).__name__}")

    propagated = _propagate_equalities(coeff, out, ctx, keep)
    if propagated is not None:
        return propagated
    return coeff, tuple(out)


def _propagate_equalities(
    coeff: object,
    factors: list[Expr],
    ctx: frozenset[str],
    keep: frozenset[str] | None,
) -> Monomial | None | tuple[object, tuple[Expr, ...]]:
    """Push equality predicates into the atoms that bind their variable.

    ``R(a,b) * {b = t}`` becomes ``R(a,t)`` when ``b`` is summed out at this
    level and ``t`` depends only on context variables.  This turns residual
    filters into indexed map lookups after materialisation.  Returns ``None``
    when no rewrite applies (caller keeps its own result).
    """
    if keep is None:
        return None
    for idx, factor in enumerate(factors):
        if not isinstance(factor, Cmp) or factor.op != "=":
            continue
        for var_side, term_side in ((factor.left, factor.right), (factor.right, factor.left)):
            if not isinstance(var_side, Var):
                continue
            x = var_side.name
            if x in ctx or x in keep:
                continue
            if not isinstance(term_side, (Var, Const)):
                continue
            if isinstance(term_side, Var) and term_side.name not in ctx:
                continue
            remaining = [
                substitute(f, {x: term_side})
                for i, f in enumerate(factors)
                if i != idx
            ]
            redone = _simplify_monomial(coeff, tuple(remaining), ctx, keep)
            return redone
    return None


def _simplify_scalar(expr: Expr, bound: set[str]) -> Expr:
    if isinstance(expr, (Const, Var)):
        # Scalar atoms (including string literals, which are not ring
        # values and must not reach polynomial expansion) pass through.
        return expr
    return _simplify(expr, frozenset(bound), keep=None)


def _simplify_cmp(factor: Cmp, bound: set[str]) -> Expr:
    left = _simplify_scalar(factor.left, bound)
    right = _simplify_scalar(factor.right, bound)
    if isinstance(left, Const) and isinstance(right, Const):
        from repro.algebra.eval import _is_true

        return ONE if _is_true(factor.op, left.value, right.value) else ZERO
    if left == right:
        if factor.op in ("=", "<=", ">="):
            return ONE
        if factor.op in ("!=", "<", ">"):
            return ZERO
    return Cmp(factor.op, left, right)


def _simplify_div(factor: Div, bound: set[str]) -> Expr:
    left = _simplify_scalar(factor.left, bound)
    right = _simplify_scalar(factor.right, bound)
    if isinstance(right, Const) and not isinstance(right.value, str):
        if right.value == 1:
            return left
        if right.value == 0:
            return ZERO
        if isinstance(left, Const) and not isinstance(left.value, str):
            return Const(left.value / right.value)
    return Div(left, right)


def _simplify_lift(
    factor: Lift,
    bound: set[str],
    keep: frozenset[str] | None,
    remaining: list[Expr],
    subst: dict[str, Expr],
) -> tuple[str, Expr | None]:
    """Process a lift, mutating ``bound``/``subst`` in place.

    Returns one of:

    * ``("requeue", expr)`` — the lift degenerated to another factor kind
      that must go through the main dispatch (an equality test);
    * ``("emit", expr)`` — the (simplified) lift stands and its variable is
      now bound;
    * ``("drop", None)`` — the lift was consumed by unification or by the
      sum-of-an-indicator rule.
    """
    body = _simplify_scalar(factor.body, bound)
    var = factor.var
    if var in bound:
        # Already bound: the lift is an equality test.
        return "requeue", Cmp("=", Var(var), body)
    summed = keep is not None and var not in keep
    if summed and isinstance(body, (Var, Const)):
        # Unify: every later use of var reads the lifted value directly.
        subst[var] = body
        return "drop", None
    if summed and not any(var in used_vars(f) for f in remaining):
        # The variable is summed out and never used: summing the indicator
        # over its single binding contributes exactly 1.
        return "drop", None
    bound.add(var)
    return "emit", Lift(var, body)


def _simplify_exists(factor: Exists, bound: set[str]) -> Expr:
    body = _simplify(factor.body, frozenset(bound), keep=None)
    if body == ZERO:
        return ZERO
    if isinstance(body, Const):
        if isinstance(body.value, str):
            raise AlgebraError("Exists over a string constant")
        return ONE if body.value != 0 else ZERO
    if isinstance(body, Exists):
        return body
    if isinstance(body, Mul):
        # Strip any non-zero constant coefficient: Exists(c*e) == Exists(e).
        stripped = [
            f
            for f in body.factors
            if not (isinstance(f, Const) and not isinstance(f.value, str) and f.value != 0)
        ]
        if len(stripped) != len(body.factors):
            body = mul(*stripped)
    if _is_indicator(body):
        return body
    return Exists(body)


def _is_indicator(expr: Expr) -> bool:
    """True when ``expr`` only takes values 0 or 1."""
    if isinstance(expr, (Cmp, Exists, Lift)):
        return True
    if isinstance(expr, Const):
        return expr.value in (0, 1)
    if isinstance(expr, Mul):
        return all(_is_indicator(f) for f in expr.factors)
    return False


def _simplify_aggsum(
    factor: AggSum, bound: set[str]
) -> tuple[list[Expr], object] | None:
    """Simplify an AggSum factor.

    Returns ``(replacement factors, hoisted coefficient)`` or ``None`` when
    the whole monomial is zero.  When no rewrite applies, the returned list
    is ``[factor]`` unchanged.
    """
    group = factor.group
    ctx = frozenset(bound)
    body = _simplify(factor.body, ctx, keep=frozenset(group))
    if body == ZERO:
        return None
    if isinstance(body, Add):
        # Distribute the aggregate over the sum; the enclosing pass expands.
        return [Add(tuple(AggSum(group, t) for t in body.terms))], 1

    expanded = _expand(body)
    if not expanded:
        return None
    if len(expanded) != 1:
        return [AggSum(group, body)], 1
    coeff, parts = expanded[0]

    group_set = set(group)

    # Every used name (including names hidden inside nested aggregates) that
    # is neither bound by context nor grouped is summed out here; factors
    # sharing such a name must stay in the same aggregate.
    def summed_vars(e: Expr) -> set[str]:
        return {v for v in used_vars(e) if v not in bound and v not in group_set}

    var_component: dict[str, int] = {}
    components: list[list[int]] = []
    for idx, part in enumerate(parts):
        sv = summed_vars(part)
        if not sv:
            # Scalar given context and group bindings: its own component,
            # spliced bare below.
            components.append([idx])
            continue
        target: int | None = None
        for v in sv:
            if v in var_component:
                target = var_component[v]
                break
        if target is None:
            components.append([idx])
            target = len(components) - 1
        else:
            components[target].append(idx)
        for v in sv:
            if v in var_component and var_component[v] != target:
                # Merge components connected through this variable, and
                # redirect every variable of the absorbed component.
                src = var_component[v]
                components[target].extend(components[src])
                components[src] = []
                for other, comp in list(var_component.items()):
                    if comp == src:
                        var_component[other] = target
            var_component[v] = target

    live = [sorted(c) for c in components if c]

    # A component may *read* a (group) variable that another component
    # *binds*; emit binders before readers so the spliced sequence is a
    # valid evaluation order.  Static output claims cannot tell the two
    # apart: atoms are bind-or-filter, and the body was simplified
    # assuming its *own* factor order (e.g. a lift folded to a
    # comparison because an earlier factor bound the variable), so a
    # component that claims a shared variable as an output may in fact
    # read it.  The body order is the ground truth — a shared variable
    # is bound by the component owning the first part that can output
    # it, and every other component mentioning it is a reader.
    first_binder: dict[str, int] = {}
    for idx, part in enumerate(parts):
        for v in output_vars(part):
            first_binder.setdefault(v, idx)

    def binds_reads(comp: list[int]) -> tuple[set[str], set[str]]:
        owned = set(comp)
        binds = {
            v
            for i in comp
            for v in output_vars(parts[i])
            if first_binder.get(v) in owned
        }
        reads = {v for i in comp for v in used_vars(parts[i])} - binds
        return binds, reads

    ordered: list[list[int]] = []
    available = set(bound)
    pending = [(comp, *binds_reads(comp)) for comp in live]
    while pending:
        progressed = False
        for position, (comp, binds, reads) in enumerate(pending):
            blocked = any(
                v not in available
                and any(v in other[1] for other in pending if other[0] is not comp)
                for v in reads
            )
            if not blocked:
                ordered.append(comp)
                available.update(binds)
                pending.pop(position)
                progressed = True
                break
        if not progressed:
            # Mutually-reading components: evaluate them as one unit in
            # the original part order, which the body already validated.
            ordered.append(sorted(i for comp, _, _ in pending for i in comp))
            break

    rebuilt: list[Expr] = []
    for comp in ordered:
        comp_factors = [parts[i] for i in comp]
        inner = mul(*comp_factors)
        # Only *visible* summed outputs force an AggSum wrapper; names that
        # stay enclosed in nested scopes never surface rows to sum.
        visible_outputs = {v for v in output_vars(inner) if v not in bound}
        comp_summed = visible_outputs - group_set
        comp_group = tuple(g for g in group if g in visible_outputs)
        if comp_summed:
            rewritten: Expr = AggSum(comp_group, inner)
        else:
            rewritten = inner
        rebuilt.append(rewritten)

    # The body's constant coefficient hoists out of the aggregate; when the
    # body was *only* a constant, the whole AggSum collapses to it.
    return rebuilt, coeff


def _canonical_order(factors: tuple[Expr, ...], ctx: frozenset[str]) -> tuple[Expr, ...]:
    """Deterministically reorder a monomial's factors.

    The product is commutative as long as every factor's input variables are
    bound before it evaluates, so we greedily emit the structurally smallest
    *ready* factor.  If no factor is ready (an open expression), the original
    order is kept for the remainder.
    """
    # The input order is a valid evaluation order.  A name that was bound
    # *before* a factor in that order may be read anywhere inside the factor
    # — including correlated occurrences in nested Exists/AggSum/Lift scopes,
    # where re-binding would change the meaning — so the reordering must keep
    # every such name bound before the factor.  (Top-level join commutativity
    # still allows useful reordering of independent factors.)
    bound_before = set(ctx)
    requirements: list[frozenset[str]] = []
    for f in factors:
        requirements.append(frozenset(used_vars(f) & bound_before))
        bound_before.update(output_vars(f))

    remaining = list(range(len(factors)))
    bound = set(ctx)
    ordered: list[Expr] = []
    while remaining:
        ready = [
            (repr(factors[i]), i) for i in remaining if requirements[i] <= bound
        ]
        if not ready:  # pragma: no cover - input order always satisfiable
            ordered.extend(factors[i] for i in remaining)
            break
        _, idx = min(ready)
        remaining.remove(idx)
        ordered.append(factors[idx])
        bound.update(output_vars(factors[idx]))
    return tuple(ordered)
