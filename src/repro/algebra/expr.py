"""Expression nodes of the map algebra (ring calculus).

Every node is an immutable, hashable dataclass; structural equality is used
throughout the compiler for map sharing and cancellation.  Expressions denote
generalised multiset relations (GMRs): finite maps from tuples (bindings of
the expression's output variables) to numeric ring values.

Variable scoping follows AGCA: within a :class:`Mul`, factors bind variables
left to right.  A variable position in a :class:`Rel` binds the variable on
first occurrence and acts as an equality filter afterwards; a :class:`Lift`
binds its variable to the value of a scalar expression (or tests equality if
the variable is already bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from repro.errors import AlgebraError

#: Values that can appear in tuples and in the ring: numbers for the ring
#: proper, strings only as key/comparison values.
Value = Union[int, float, str]

_CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Expr:
    """Base class for all calculus expressions."""

    __slots__ = ()

    def children(self) -> tuple["Expr", ...]:
        """Child expressions, in evaluation order."""
        return ()

    def rebuild(self, children: Sequence["Expr"]) -> "Expr":
        """Return a copy of this node with ``children`` substituted in."""
        if children:
            raise AlgebraError(f"{type(self).__name__} takes no children")
        return self

    # -- convenience operator sugar (used heavily in tests/examples) --------

    def __add__(self, other: "Expr") -> "Expr":
        return add(self, _as_expr(other))

    def __radd__(self, other: object) -> "Expr":
        return add(_as_expr(other), self)

    def __mul__(self, other: object) -> "Expr":
        return mul(self, _as_expr(other))

    def __rmul__(self, other: object) -> "Expr":
        return mul(_as_expr(other), self)

    def __sub__(self, other: object) -> "Expr":
        return add(self, neg(_as_expr(other)))

    def __neg__(self) -> "Expr":
        return neg(self)


def _as_expr(value: object) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, str)):
        return Const(value)
    raise AlgebraError(f"cannot coerce {value!r} to a calculus expression")


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """A literal ring value (or a string used as a key/comparison literal)."""

    value: Value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """A reference to a bound variable; evaluates to its value."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Rel(Expr):
    """A base-relation atom: the multiplicity of the tuple ``args``.

    ``args`` entries are :class:`Var` or :class:`Const`.  An unbound variable
    is bound by the atom (output); a bound variable or a constant filters.
    """

    name: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        for arg in self.args:
            if not isinstance(arg, (Var, Const)):
                raise AlgebraError(
                    f"relation argument must be Var or Const, got {arg!r}"
                )

    def __repr__(self) -> str:
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True, slots=True)
class MapRef(Expr):
    """A reference to a materialised map, used like a relation atom.

    The map's contents form a GMR keyed by its arguments; bound arguments act
    as lookups, unbound ones iterate the map.
    """

    name: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        for arg in self.args:
            if not isinstance(arg, (Var, Const)):
                raise AlgebraError(
                    f"map argument must be Var or Const, got {arg!r}"
                )

    def __repr__(self) -> str:
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.name}[{inner}]"


@dataclass(frozen=True, slots=True)
class Cmp(Expr):
    """A comparison predicate; evaluates to 1 (true) or 0 (false).

    Both operands must be scalar expressions whose variables are bound by the
    surrounding context.
    """

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise AlgebraError(f"unknown comparison operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Sequence[Expr]) -> "Cmp":
        left, right = children
        return Cmp(self.op, left, right)

    def __repr__(self) -> str:
        return f"{{{self.left!r} {self.op} {self.right!r}}}"


@dataclass(frozen=True, slots=True)
class Add(Expr):
    """Ring addition (bag union) of the operand GMRs."""

    terms: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.terms

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return add(*children)

    def __repr__(self) -> str:
        return "(" + " + ".join(repr(t) for t in self.terms) + ")"


@dataclass(frozen=True, slots=True)
class Mul(Expr):
    """Ring multiplication (natural join); factors bind variables left-to-right."""

    factors: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.factors

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        return mul(*children)

    def __repr__(self) -> str:
        return " * ".join(
            f"({f!r})" if isinstance(f, Add) else repr(f) for f in self.factors
        )


@dataclass(frozen=True, slots=True)
class Neg(Expr):
    """Ring negation of every value of the operand GMR."""

    body: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.body,)

    def rebuild(self, children: Sequence[Expr]) -> Expr:
        (body,) = children
        return neg(body)

    def __repr__(self) -> str:
        return f"-({self.body!r})"


@dataclass(frozen=True, slots=True)
class AggSum(Expr):
    """Sum the body GMR's values, grouping by ``group`` variables.

    ``AggSum((), e)`` is a full aggregate producing a scalar; with group
    variables it is a SQL ``GROUP BY`` aggregate.
    """

    group: tuple[str, ...]
    body: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.body,)

    def rebuild(self, children: Sequence[Expr]) -> "AggSum":
        (body,) = children
        return AggSum(self.group, body)

    def __repr__(self) -> str:
        gv = ",".join(self.group)
        return f"AggSum([{gv}], {self.body!r})"


@dataclass(frozen=True, slots=True)
class Lift(Expr):
    """Variable assignment ``var ^= body`` (multiplicity 1).

    Binds ``var`` to the scalar value of ``body``; if ``var`` is already
    bound, acts as the equality predicate ``{var = body}`` instead.
    """

    var: str
    body: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.body,)

    def rebuild(self, children: Sequence[Expr]) -> "Lift":
        (body,) = children
        return Lift(self.var, body)

    def __repr__(self) -> str:
        return f"({self.var} ^= {self.body!r})"


@dataclass(frozen=True, slots=True)
class Exists(Expr):
    """Domain predicate: maps every non-zero value of the body to 1."""

    body: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.body,)

    def rebuild(self, children: Sequence[Expr]) -> "Exists":
        (body,) = children
        return Exists(body)

    def __repr__(self) -> str:
        return f"Exists({self.body!r})"


@dataclass(frozen=True, slots=True)
class Div(Expr):
    """Scalar division, with the convention ``x / 0 == 0``.

    Division is a value-level function (not a ring operation): both operands
    must be scalars.  It appears in translated SQL arithmetic and in the view
    layer's ``avg`` expansion.
    """

    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def rebuild(self, children: Sequence[Expr]) -> "Div":
        left, right = children
        return Div(left, right)

    def __repr__(self) -> str:
        return f"({self.left!r} / {self.right!r})"


ZERO = Const(0)
ONE = Const(1)


# ---------------------------------------------------------------------------
# Smart constructors: flatten nesting and drop trivial identities.  These are
# *structural* conveniences only; full algebraic rewriting lives in
# :mod:`repro.algebra.simplify`.
# ---------------------------------------------------------------------------


def add(*terms: Expr) -> Expr:
    """N-ary addition; flattens nested Adds and drops literal zeros."""
    flat: list[Expr] = []
    for term in terms:
        term = _as_expr(term)
        if isinstance(term, Add):
            flat.extend(term.terms)
        elif isinstance(term, Const) and term.value == 0:
            continue
        else:
            flat.append(term)
    if not flat:
        return ZERO
    if len(flat) == 1:
        return flat[0]
    return Add(tuple(flat))


def mul(*factors: Expr) -> Expr:
    """N-ary multiplication; flattens nested Muls and applies 0/1 identities."""
    flat: list[Expr] = []
    for factor in factors:
        factor = _as_expr(factor)
        if isinstance(factor, Mul):
            flat.extend(factor.factors)
        elif isinstance(factor, Const) and factor.value == 1:
            continue
        elif isinstance(factor, Const) and factor.value == 0:
            return ZERO
        else:
            flat.append(factor)
    if not flat:
        return ONE
    if len(flat) == 1:
        return flat[0]
    return Mul(tuple(flat))


def neg(body: Expr) -> Expr:
    """Negation, folding constants and double negations."""
    body = _as_expr(body)
    if isinstance(body, Const) and not isinstance(body.value, str):
        return Const(-body.value)
    if isinstance(body, Neg):
        return body.body
    return Neg(body)


# ---------------------------------------------------------------------------
# Traversal and rewriting utilities
# ---------------------------------------------------------------------------


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every descendant, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def relations_in(expr: Expr) -> set[str]:
    """Names of all base relations referenced anywhere in ``expr``."""
    return {node.name for node in walk(expr) if isinstance(node, Rel)}


def maps_in(expr: Expr) -> set[str]:
    """Names of all materialised maps referenced anywhere in ``expr``."""
    return {node.name for node in walk(expr) if isinstance(node, MapRef)}


def contains_relation(expr: Expr, name: str | None = None) -> bool:
    """True if ``expr`` references any base relation (or the named one)."""
    for node in walk(expr):
        if isinstance(node, Rel) and (name is None or node.name == name):
            return True
    return False


def used_vars(expr: Expr) -> frozenset[str]:
    """Every variable name occurring anywhere in ``expr``.

    Unlike the static schema in :mod:`repro.algebra.schema`, this includes
    variables hidden inside nested aggregates and lift bodies.  A name bound
    in the surrounding context *correlates* with any occurrence here, so
    rewrites that move factors around must treat all used names as potential
    dependencies.
    """
    names: set[str] = set()
    for node in walk(expr):
        if isinstance(node, Var):
            names.add(node.name)
        elif isinstance(node, (Rel, MapRef)):
            names.update(a.name for a in node.args if isinstance(a, Var))
        elif isinstance(node, Lift):
            names.add(node.var)
        elif isinstance(node, AggSum):
            names.update(node.group)
    return frozenset(names)


def rename_vars(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Consistently rename variables (binders and uses alike)."""
    if not mapping:
        return expr

    def rn(name: str) -> str:
        return mapping.get(name, name)

    if isinstance(expr, Var):
        return Var(rn(expr.name))
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, (Rel, MapRef)):
        args = tuple(rename_vars(a, mapping) for a in expr.args)
        return type(expr)(expr.name, args)
    if isinstance(expr, Lift):
        return Lift(rn(expr.var), rename_vars(expr.body, mapping))
    if isinstance(expr, AggSum):
        group = tuple(rn(g) for g in expr.group)
        return AggSum(group, rename_vars(expr.body, mapping))
    children = tuple(rename_vars(c, mapping) for c in expr.children())
    return expr.rebuild(children)


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Replace variable *uses* by Var/Const terms.

    Unlike :func:`rename_vars`, substitution only applies where a variable is
    used as a value.  Substituting a constant for a variable that appears as
    a relation argument or an AggSum group variable is supported because both
    positions accept constants (a pinned group variable simply stops being
    part of the group).
    """
    if not mapping:
        return expr

    def term_for(name: str) -> Expr | None:
        return mapping.get(name)

    if isinstance(expr, Var):
        replacement = term_for(expr.name)
        return replacement if replacement is not None else expr
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, (Rel, MapRef)):
        new_args: list[Expr] = []
        for arg in expr.args:
            if isinstance(arg, Var):
                replacement = term_for(arg.name)
                new_args.append(replacement if replacement is not None else arg)
            else:
                new_args.append(arg)
        return type(expr)(expr.name, tuple(new_args))
    if isinstance(expr, Lift):
        replacement = term_for(expr.var)
        body = substitute(
            expr.body, {k: v for k, v in mapping.items() if k != expr.var}
        )
        if replacement is not None:
            # The lifted variable is pinned to a value: the assignment
            # degenerates to the equality test {value = body}.
            return Cmp("=", replacement, body)
        return Lift(expr.var, body)
    if isinstance(expr, AggSum):
        new_group: list[str] = []
        for g in expr.group:
            replacement = term_for(g)
            if replacement is None:
                new_group.append(g)
            elif isinstance(replacement, Var):
                new_group.append(replacement.name)
            # A constant replacement pins the column: drop it from the group.
        return AggSum(tuple(new_group), substitute(expr.body, mapping))
    children = tuple(substitute(c, mapping) for c in expr.children())
    return expr.rebuild(children)


def fresh_namer(prefix: str = "v") -> "FreshNamer":
    """Create a generator of fresh variable names with the given prefix."""
    return FreshNamer(prefix)


class FreshNamer:
    """Deterministic fresh-name source used by translation and compilation."""

    def __init__(self, prefix: str = "v") -> None:
        self._prefix = prefix
        self._counter = 0
        self._reserved: set[str] = set()

    def fresh(self, hint: str | None = None) -> str:
        base = hint if hint else self._prefix
        while True:
            self._counter += 1
            name = f"{base}_{self._counter}"
            if name not in self._reserved:
                self._reserved.add(name)
                return name

    def reserve(self, names: Iterable[str]) -> None:
        """Mark names as taken so :meth:`fresh` never returns them."""
        self._reserved.update(names)
