"""Input/output variable analysis for calculus expressions.

Every expression has a *schema* ``(input_vars, output_vars)``:

* **output variables** are bound by the expression and form the columns of
  the GMR it produces (relation/map arguments, lifted variables, AggSum
  group variables);
* **input variables** must be bound by the surrounding context before the
  expression can be evaluated (comparison operands, bare value variables,
  lift bodies).

Variable order is meaningful (it determines the column order of evaluation
results), so schemas are ordered tuples without duplicates rather than sets.
The rules follow AGCA; ``Mul`` propagates bindings left to right, so a
variable that is an output of an earlier factor turns later potential
outputs of the same name into join constraints instead.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SchemaError
from repro.algebra.expr import (
    Add,
    AggSum,
    Cmp,
    Const,
    Div,
    Exists,
    Expr,
    Lift,
    MapRef,
    Mul,
    Neg,
    Rel,
    Var,
)


def _ordered_unique(names: Iterable[str]) -> tuple[str, ...]:
    seen: set[str] = set()
    out: list[str] = []
    for name in names:
        if name not in seen:
            seen.add(name)
            out.append(name)
    return tuple(out)


def _merge(*groups: Iterable[str]) -> tuple[str, ...]:
    merged: list[str] = []
    for group in groups:
        merged.extend(group)
    return _ordered_unique(merged)


def schema_of(expr: Expr) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Return ``(input_vars, output_vars)`` of ``expr``, each ordered."""
    if isinstance(expr, Const):
        return (), ()
    if isinstance(expr, Var):
        return (expr.name,), ()
    if isinstance(expr, (Rel, MapRef)):
        outs = _ordered_unique(a.name for a in expr.args if isinstance(a, Var))
        return (), outs
    if isinstance(expr, (Cmp, Div)):
        li, lo = schema_of(expr.left)
        ri, ro = schema_of(expr.right)
        return _merge(li, lo, ri, ro), ()
    if isinstance(expr, Neg):
        return schema_of(expr.body)
    if isinstance(expr, Exists):
        return schema_of(expr.body)
    if isinstance(expr, Lift):
        bi, bo = schema_of(expr.body)
        return _merge(bi, bo), (expr.var,)
    if isinstance(expr, AggSum):
        bi, bo = schema_of(expr.body)
        missing = [g for g in expr.group if g not in bo and g not in bi]
        if missing:
            raise SchemaError(
                f"AggSum group variables {missing} are not produced by the "
                f"body (outputs {list(bo)})"
            )
        # Group variables the body only *reads* stay inputs.
        group_outs = tuple(g for g in expr.group if g in bo)
        return bi, group_outs
    if isinstance(expr, Mul):
        inputs: list[str] = []
        outputs: list[str] = []
        bound: set[str] = set()
        for factor in expr.factors:
            fi, fo = schema_of(factor)
            inputs.extend(v for v in fi if v not in bound)
            for v in fo:
                if v not in bound:
                    bound.add(v)
                    outputs.append(v)
                # Re-binding an already bound variable is a join constraint;
                # it adds neither an input nor an output.
        return _ordered_unique(inputs), tuple(outputs)
    if isinstance(expr, Add):
        term_schemas = [schema_of(t) for t in expr.terms]
        out_sets = [set(o) for _, o in term_schemas]
        common = set.intersection(*out_sets) if out_sets else set()
        # Preserve the order of the first term's outputs.
        outputs = tuple(
            v for v in (term_schemas[0][1] if term_schemas else ()) if v in common
        )
        inputs: list[str] = []
        for (ti, to) in term_schemas:
            inputs.extend(ti)
            inputs.extend(v for v in to if v not in common)
        return _ordered_unique(n for n in inputs if n not in common), outputs
    raise SchemaError(f"unknown expression node {type(expr).__name__}")


def input_vars(expr: Expr) -> tuple[str, ...]:
    """Variables that must be bound by context before evaluating ``expr``."""
    return schema_of(expr)[0]


def output_vars(expr: Expr) -> tuple[str, ...]:
    """Variables bound by ``expr`` (the columns of its result GMR)."""
    return schema_of(expr)[1]


def free_vars(expr: Expr) -> tuple[str, ...]:
    """All schema variables of ``expr`` (inputs followed by outputs)."""
    ins, outs = schema_of(expr)
    return _merge(ins, outs)


def is_scalar(expr: Expr, bound: Iterable[str] = ()) -> bool:
    """True if ``expr`` produces a single value given ``bound`` context vars.

    An expression is scalar in context when all of its output variables are
    already bound (every potential binding collapses to an equality test)
    and its inputs are available.
    """
    bound_set = set(bound)
    ins, outs = schema_of(expr)
    return all(v in bound_set for v in ins) and all(v in bound_set for v in outs)


def validate_closed(expr: Expr, allowed: Iterable[str] = ()) -> None:
    """Raise :class:`SchemaError` unless all inputs of ``expr`` are allowed.

    Map definitions must be closed queries: their only free inputs are the
    map's own key variables.
    """
    allowed_set = set(allowed)
    ins, _ = schema_of(expr)
    stray = [v for v in ins if v not in allowed_set]
    if stray:
        raise SchemaError(
            f"expression has unbound input variables {stray}; allowed: "
            f"{sorted(allowed_set)}"
        )
