"""The map algebra: ring expressions over generalised multiset relations.

This package implements the paper's "custom query algebra" (Section 3): an
AGCA-style calculus whose expressions denote *generalised multiset relations*
(GMRs) — finite mappings from tuples to ring values.  Relational operations
become ring operations:

* union / bag-sum        -> :class:`~repro.algebra.expr.Add`
* natural join           -> :class:`~repro.algebra.expr.Mul`
* selection predicates   -> :class:`~repro.algebra.expr.Cmp` (0/1 valued)
* aggregation / group-by -> :class:`~repro.algebra.expr.AggSum`
* variable assignment    -> :class:`~repro.algebra.expr.Lift`

The three pillars the compiler builds on live here:

* :mod:`repro.algebra.schema` — input/output variable analysis,
* :mod:`repro.algebra.eval` — a reference evaluator (the correctness oracle),
* :mod:`repro.algebra.delta` — delta derivation for insert/delete events,
* :mod:`repro.algebra.simplify` — the simplification rule set that turns
  deltas into the "asymptotically simpler" forms the paper advertises.
"""

from repro.algebra.expr import (
    Add,
    AggSum,
    Cmp,
    Const,
    Div,
    Exists,
    Expr,
    Lift,
    MapRef,
    Mul,
    Neg,
    Rel,
    Var,
    ONE,
    ZERO,
    add,
    mul,
    neg,
)
from repro.algebra.schema import free_vars, input_vars, output_vars, schema_of
from repro.algebra.eval import eval_expr, eval_scalar
from repro.algebra.delta import Event, delta
from repro.algebra.simplify import normalize, simplify

__all__ = [
    "Add",
    "AggSum",
    "Cmp",
    "Const",
    "Div",
    "Exists",
    "Expr",
    "Lift",
    "MapRef",
    "Mul",
    "Neg",
    "Rel",
    "Var",
    "ONE",
    "ZERO",
    "add",
    "mul",
    "neg",
    "free_vars",
    "input_vars",
    "output_vars",
    "schema_of",
    "eval_expr",
    "eval_scalar",
    "Event",
    "delta",
    "normalize",
    "simplify",
]
