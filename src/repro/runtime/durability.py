"""Durability: Z-set write-ahead log, engine snapshots and crash recovery.

The engine's maintained maps are main-memory state: without this module
they die with the process.  Durability follows directly from the delta
architecture — a maintained view is a *function of the update stream's
prefix* (the higher-order delta compilation replays deltas; DBSP makes
the same point formally), so persisting the stream is persisting the
views.  Three pieces:

* :class:`WriteAheadLog` — an append-only log of LSN-prefixed,
  CRC-checksummed event-batch frames.  A frame serialises one
  :class:`~repro.runtime.events.EventBatch` *column-packed* (the batch is
  already struct-of-arrays: int64/float64 columns write as packed arrays,
  string columns as length-prefixed UTF-8, anything else pickles), so the
  log layout mirrors the runtime layout.  Frames append to segment files
  (``wal-<first_lsn>.log``) rotated at a size threshold; the fsync policy
  (``"always"`` / ``"batch"`` / ``"none"``) trades durability latency for
  throughput; a torn tail — the partial frame a crash leaves behind — is
  detected by CRC on open and truncated away.

* :class:`SnapshotStore` — whole-engine snapshots
  ``(lsn_watermark, maps, counters)`` written atomically (tmp file,
  fsync, rename, directory fsync) with a CRC trailer, taken manually
  (:meth:`DurableEngine.snapshot`) or every N events.  Invalid or torn
  snapshots are skipped at load time, falling back to the previous one.

* **recovery** (:func:`recover_engine`, :meth:`DurableEngine.__init__`,
  :meth:`repro.runtime.engine.DeltaEngine.recover`) — load the latest
  valid snapshot, replay the WAL suffix ``lsn > watermark`` through the
  normal batch path, resume logging at the right LSN.  The recovery
  invariant (pinned by the hypothesis suite in
  ``tests/runtime/test_fault_injection.py``): *snapshot + WAL-suffix
  replay lands on a state identical to an uninterrupted engine that
  processed the same logged prefix*, and replaying any WAL prefix twice
  is idempotent because frames at or below the watermark are skipped by
  LSN, never re-applied.

:class:`DurableEngine` wraps a :class:`~repro.runtime.engine.DeltaEngine`
(or, with ``shards > 1``, a :class:`~repro.runtime.engine.ShardedEngine`)
and logs every batch *before* applying it — pre-partition, in the router,
so one log serves any future shard count: the same directory can be
recovered into a single engine or any shard fan-out.

Fault injection hooks: the WAL, the snapshot store and the durable engine
call a *probe* callable (when installed) at the labelled points listed in
:data:`PROBE_POINTS`.  :class:`CrashPoint` is the standard probe — it
counts occurrences of one label and fires an action (SIGKILL by default)
on the Nth, which is how ``tests/runtime/fault_injection.py`` kills real
subprocesses mid-frame-write, between append and apply, or mid-snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence

from repro.compiler.program import CompiledProgram
from repro.errors import (
    DurabilityError,
    EventError,
    RecoveryError,
    ResumeGapError,
    WalCorruptionError,
)
from repro.runtime.engine import DEFAULT_BATCH_SIZE
from repro.runtime.events import EventBatch, StreamEvent, batches

#: Labels at which the durability layer calls its fault-injection probe.
PROBE_POINTS = (
    "wal.mid_frame",         # half a flush written to the segment fd
    "engine.after_append",   # frame durable per policy, not yet applied
    "engine.after_apply",    # frame applied, snapshot check not yet run
    "snapshot.mid_write",    # half the snapshot body written to the tmp
    "snapshot.before_rename",  # tmp complete + fsynced, not yet renamed
)

#: Accepted WAL fsync policies.
FSYNC_POLICIES = ("always", "batch", "none")

#: Rotate to a fresh segment once the current one exceeds this.
DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024

#: ``batch``/``none`` appends buffer in memory up to this many bytes
#: before being written out (bounds loss *and* memory, not durability —
#: only ``sync()`` establishes a durability barrier).
DEFAULT_FLUSH_BYTES = 256 * 1024

_FORMAT_VERSION = 1
_SEGMENT_MAGIC = b"RWAL"
_SNAPSHOT_MAGIC = b"RSNP"
_SEGMENT_HEADER = struct.Struct("<4sHQ")   # magic, version, first_lsn
_FRAME_HEADER = struct.Struct("<QI")       # lsn, payload length
_FRAME_CRC = struct.Struct("<I")           # crc32(header + payload)
_PAYLOAD_HEADER = struct.Struct("<HbIH")   # relation len, sign, rows, cols
_COLUMN_HEADER = struct.Struct("<cI")      # type tag, encoded length
_SNAPSHOT_HEADER = struct.Struct("<4sHQI")  # magic, version, lsn, body len

#: Frames larger than this are rejected as corruption rather than
#: allocated (a torn length field can claim gigabytes).
_MAX_PAYLOAD_BYTES = 1 << 31

#: Batches at or below this many rows skip the per-column packing and
#: pickle their row list in one call — interleaved streams degenerate
#: into one/two-row runs where per-column dispatch costs more than the
#: data (pickle round-trips values and types exactly, like the ``P``
#: column tag).  The column count field carries the sentinel below.
_SMALL_BATCH_ROWS = 4

#: ``cols`` value in the payload header marking a pickled-rows payload.
_ROWS_SENTINEL = 0xFFFF

# Bound once: the append path runs per frame, and interleaved streams
# degenerate to one/two-row frames, so attribute lookups show up.
_pack_payload_header = _PAYLOAD_HEADER.pack
_pack_frame_header = _FRAME_HEADER.pack
_pack_crc = _FRAME_CRC.pack
_crc32 = zlib.crc32
_dumps = pickle.dumps
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

_NAME_CACHE: dict[str, bytes] = {}


def _encoded_name(relation: str) -> bytes:
    """UTF-8 relation name, cached (relation sets are small and fixed)."""
    name = _NAME_CACHE.get(relation)
    if name is None:
        name = _NAME_CACHE[relation] = relation.encode("utf-8")
    return name

_META_FILE = "durable.json"


# ---------------------------------------------------------------------------
# Column-packed frame codec
# ---------------------------------------------------------------------------


def _pack_numeric(kind: str, values: Sequence) -> bytes:
    packed = array(kind, values)
    if sys.byteorder == "big":  # frames are little-endian on disk
        packed.byteswap()
    return packed.tobytes()


def _unpack_numeric(kind: str, data: bytes) -> list:
    unpacked = array(kind)
    unpacked.frombytes(data)
    if sys.byteorder == "big":
        unpacked.byteswap()
    return unpacked.tolist()


def _encode_column(values: Sequence) -> tuple[bytes, bytes]:
    """One column as ``(type tag, packed bytes)``.

    Tags mirror the runtime's column kinds: ``q`` all-int64, ``d``
    all-float, ``U`` all-str (length-prefixed UTF-8), ``P`` pickled
    fallback for mixed/boxed columns.  Type sets are checked strictly
    (``bool`` is not ``int``, ``2`` is not ``2.0``) so decoding
    round-trips values *and their types* exactly.
    """
    kinds = {type(value) for value in values}
    if not kinds or kinds == {int}:
        try:
            return b"q", _pack_numeric("q", values)
        except OverflowError:  # a value outside int64: box the column
            return b"P", pickle.dumps(list(values), pickle.HIGHEST_PROTOCOL)
    if kinds == {float}:
        return b"d", _pack_numeric("d", values)
    if kinds == {str}:
        encoded = [value.encode("utf-8") for value in values]
        lengths = _pack_numeric("I", [len(item) for item in encoded])
        return b"U", lengths + b"".join(encoded)
    return b"P", pickle.dumps(list(values), pickle.HIGHEST_PROTOCOL)


def _decode_column(tag: bytes, data: bytes, rows: int) -> list:
    if tag == b"q":
        return _unpack_numeric("q", data)
    if tag == b"d":
        return _unpack_numeric("d", data)
    if tag == b"U":
        lengths = _unpack_numeric("I", data[: 4 * rows])
        out, offset = [], 4 * rows
        for length in lengths:
            out.append(data[offset:offset + length].decode("utf-8"))
            offset += length
        return out
    if tag == b"P":
        return pickle.loads(data)
    raise WalCorruptionError(f"unknown WAL column tag {tag!r}")


def encode_batch_payload(
    relation: str, sign: int, columns: Sequence[Sequence], rows: int
) -> bytes:
    """Serialise one batch column-packed (the WAL frame payload)."""
    name = relation.encode("utf-8")
    parts = [_PAYLOAD_HEADER.pack(len(name), sign, rows, len(columns)), name]
    for column in columns:
        tag, data = _encode_column(column)
        parts.append(_COLUMN_HEADER.pack(tag, len(data)))
        parts.append(data)
    return b"".join(parts)


def encode_rows_payload(relation: str, sign: int, rows: Sequence) -> bytes:
    """The small-batch payload: one pickled row list, no column dispatch.

    Same frame envelope and header as :func:`encode_batch_payload` with
    ``cols`` set to :data:`_ROWS_SENTINEL`; :func:`decode_batch_payload`
    transposes back to columns, so readers see one format.
    """
    name = _encoded_name(relation)
    return (
        _pack_payload_header(len(name), sign, len(rows), _ROWS_SENTINEL)
        + name
        + _dumps(list(rows), _PICKLE_PROTOCOL)
    )


def decode_batch_payload(payload: bytes) -> tuple[str, int, tuple[list, ...]]:
    """Inverse of the payload encoders (columns in either layout)."""
    name_len, sign, rows, n_columns = _PAYLOAD_HEADER.unpack_from(payload, 0)
    offset = _PAYLOAD_HEADER.size
    relation = payload[offset:offset + name_len].decode("utf-8")
    offset += name_len
    if n_columns == _ROWS_SENTINEL:
        row_list = pickle.loads(payload[offset:])
        if not row_list:
            return relation, sign, ()
        return relation, sign, tuple(map(list, zip(*row_list)))
    columns = []
    for _ in range(n_columns):
        tag, data_len = _COLUMN_HEADER.unpack_from(payload, offset)
        offset += _COLUMN_HEADER.size
        columns.append(_decode_column(tag, payload[offset:offset + data_len], rows))
        offset += data_len
    return relation, sign, tuple(columns)


def encode_frame(lsn: int, payload: bytes) -> bytes:
    """An LSN-prefixed, CRC-trailed WAL frame."""
    header = _FRAME_HEADER.pack(lsn, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(header))
    return header + payload + _FRAME_CRC.pack(crc)


def _walk_frames(data: bytes) -> Iterator[tuple[int, int, bytes, int]]:
    """Yield ``(offset, lsn, payload, end_offset)`` for each *valid* frame.

    Stops (without raising) at the first frame that is truncated or fails
    its CRC — the caller decides whether that is a torn tail (last
    segment: truncate) or corruption (interior segment: raise).
    """
    offset, size = 0, len(data)
    while offset + _FRAME_HEADER.size + _FRAME_CRC.size <= size:
        lsn, payload_len = _FRAME_HEADER.unpack_from(data, offset)
        if payload_len > _MAX_PAYLOAD_BYTES:
            return
        end = offset + _FRAME_HEADER.size + payload_len + _FRAME_CRC.size
        if end > size:
            return
        payload_start = offset + _FRAME_HEADER.size
        payload = data[payload_start:payload_start + payload_len]
        (stored_crc,) = _FRAME_CRC.unpack_from(data, end - _FRAME_CRC.size)
        crc = zlib.crc32(payload, zlib.crc32(data[offset:payload_start]))
        if crc != stored_crc:
            return
        yield offset, lsn, payload, end
        offset = end


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


def _sigkill_self() -> None:
    """The default crash action: die as uncleanly as the OS allows."""
    os.kill(os.getpid(), signal.SIGKILL)


class CrashPoint:
    """A fault-injection probe: fire ``action`` at the Nth hit of a label.

    Install as the ``probe=`` argument of :class:`DurableEngine` (it is
    threaded through to the WAL and the snapshot store).  Every call with
    a matching label increments the counter; on hit number ``hits`` the
    action runs — by default ``SIGKILL`` to the calling process, which is
    how the fault-injection harness produces real unclean deaths at
    deterministic points.  See :data:`PROBE_POINTS` for the labels.
    """

    def __init__(
        self,
        label: str,
        hits: int = 1,
        action: Callable[[], None] = _sigkill_self,
    ) -> None:
        if label not in PROBE_POINTS:
            raise DurabilityError(
                f"unknown probe label {label!r}; known points: "
                + ", ".join(PROBE_POINTS)
            )
        if hits < 1:
            raise DurabilityError(f"CrashPoint hits must be >= 1, got {hits!r}")
        self.label = label
        self.hits = hits
        self.action = action
        self.count = 0
        self.fired = False

    def __call__(self, label: str) -> None:
        if label != self.label:
            return
        self.count += 1
        if self.count == self.hits:
            self.fired = True
            self.action()


# ---------------------------------------------------------------------------
# Write-ahead log
# ---------------------------------------------------------------------------


def _segment_path(directory: Path, first_lsn: int) -> Path:
    return directory / f"wal-{first_lsn:016d}.log"


def _segment_files(directory: Path) -> list[Path]:
    return sorted(directory.glob("wal-*.log"))


def _segment_first_lsn(path: Path) -> Optional[int]:
    """The segment header's first LSN, or None for a torn/foreign header."""
    try:
        with open(path, "rb") as handle:
            header = handle.read(_SEGMENT_HEADER.size)
    except OSError:
        return None
    if len(header) < _SEGMENT_HEADER.size:
        return None
    magic, version, first_lsn = _SEGMENT_HEADER.unpack(header)
    if magic != _SEGMENT_MAGIC or version != _FORMAT_VERSION:
        return None
    return first_lsn


def _oldest_replayable_lsn(directory: Path) -> Optional[int]:
    """The LSN of the oldest frame still on disk, or None for no frames.

    The first *valid frame* of the first readable segment, not the
    segment header's first LSN: an ``ensure_lsn`` forward gap can leave
    a segment whose header claims an LSN no frame carries.  Falls back
    to the header LSN for a frameless (freshly rotated) segment so the
    answer still bounds what :meth:`WriteAheadLog.replay` could serve.
    """
    fallback: Optional[int] = None
    for path in _segment_files(directory):
        first_lsn = _segment_first_lsn(path)
        if first_lsn is None:
            continue
        for _, lsn, _, _ in _walk_frames(
            path.read_bytes()[_SEGMENT_HEADER.size:]
        ):
            return lsn
        if fallback is None:
            fallback = first_lsn
    return fallback


class WriteAheadLog:
    """An append-only, segmented log of column-packed event batches.

    Each :meth:`append` assigns the batch the next LSN and encodes it as
    one CRC-checksummed frame.  The fsync policy controls when frames
    reach disk:

    * ``"always"`` — every append is written *and* fsynced before it
      returns (durable on return; the slowest policy);
    * ``"batch"`` — appends buffer in memory and are written + fsynced
      together at :meth:`sync` barriers, segment rotation, close, or when
      the buffer exceeds ``flush_bytes`` (the default; amortises fsync
      across a batch of frames);
    * ``"none"`` — like ``"batch"`` but never fsyncs: the OS decides when
      pages hit disk.  Survives process crashes after a :meth:`sync` (the
      data reached the kernel), not power loss.

    Opening a directory that already holds a log *resumes* it: the last
    segment is scanned, a torn tail (truncated frame or CRC mismatch left
    by a crash) is truncated away, and appends continue at the next LSN.
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "batch",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
        probe: Optional[Callable[[str], None]] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {fsync!r}; choose from "
                + ", ".join(FSYNC_POLICIES)
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.flush_bytes = flush_bytes
        self.probe = probe
        self._pending = bytearray()
        self._fd: Optional[int] = None
        self._segment_size = 0
        self._next_lsn = 1
        self._open_tail()

    # -- opening / tail repair ---------------------------------------------

    def _open_tail(self) -> None:
        """Resume the newest segment, truncating any torn tail."""
        segments = _segment_files(self.directory)
        while segments:
            tail = segments[-1]
            first_lsn = _segment_first_lsn(tail)
            if first_lsn is None:
                # The crash tore the segment header itself: the file holds
                # no recoverable frame, so drop it and fall back.
                tail.unlink()
                segments.pop()
                continue
            data = tail.read_bytes()
            valid_end = _SEGMENT_HEADER.size
            last_lsn = first_lsn - 1
            for _, lsn, _, end in _walk_frames(data[_SEGMENT_HEADER.size:]):
                last_lsn = lsn
                valid_end = _SEGMENT_HEADER.size + end
            if valid_end < len(data):
                os.truncate(tail, valid_end)
            self._next_lsn = last_lsn + 1
            self._fd = os.open(tail, os.O_WRONLY | os.O_APPEND)
            self._segment_size = valid_end
            return
        self._start_segment(self._next_lsn)

    def _start_segment(self, first_lsn: int) -> None:
        path = _segment_path(self.directory, first_lsn)
        self._fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC)
        header = _SEGMENT_HEADER.pack(_SEGMENT_MAGIC, _FORMAT_VERSION, first_lsn)
        os.write(self._fd, header)
        if self.fsync != "none":
            os.fsync(self._fd)
        self._segment_size = len(header)
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- appending ----------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended (not necessarily durable)
        frame; 0 for an empty log."""
        return self._next_lsn - 1

    def ensure_lsn(self, watermark: int) -> None:
        """Never re-issue LSNs at or below ``watermark``.

        Recovery calls this with the snapshot watermark: if the log tail
        was lost (``fsync="none"``/``"batch"`` crash after a snapshot),
        the next append must still get a fresh LSN, leaving a forward gap
        in the log rather than a duplicate.  Replay tolerates gaps — LSNs
        must only be strictly increasing.
        """
        if watermark >= self._next_lsn:
            self._next_lsn = watermark + 1

    def oldest_replayable_lsn(self) -> Optional[int]:
        """The oldest LSN :meth:`replay` can still produce — a frameless
        (fresh or fully rotated) log answers its next LSN, and ``None``
        means a directory with no segments at all.

        This is the watermark :meth:`truncate_before` has advanced to:
        ``replay(after_lsn=A)`` succeeds iff ``A + 1 >= `` this value (a
        smaller ``A`` asks for truncated frames and raises
        :class:`~repro.errors.ResumeGapError`).  Buffered appends are
        written out first so the answer covers every assigned LSN.
        """
        if self._fd is None:
            raise DurabilityError("write-ahead log is closed")
        self._flush(fsync=False)
        return _oldest_replayable_lsn(self.directory)

    def append(
        self, relation: str, sign: int, columns: Sequence[Sequence], rows: int
    ) -> int:
        """Log one batch; returns its LSN.

        Durability on return depends on the fsync policy (see the class
        docstring); :meth:`sync` is the explicit barrier.
        """
        return self._append_payload(
            encode_batch_payload(relation, sign, columns, rows)
        )

    def append_batch(self, batch: EventBatch) -> int:
        """Log one :class:`~repro.runtime.events.EventBatch`; returns its
        LSN.

        Small batches (<= ``_SMALL_BATCH_ROWS`` rows — the degenerate runs
        an interleaved stream produces even at large batch sizes) take the
        pickled-rows payload, skipping the per-column packing and the
        rows->columns transpose; everything else writes column-packed.
        """
        if len(batch) <= _SMALL_BATCH_ROWS:
            payload = encode_rows_payload(batch.relation, batch.sign, batch.rows)
        else:
            payload = encode_batch_payload(
                batch.relation, batch.sign, batch.columns, len(batch)
            )
        return self._append_payload(payload)

    def _append_payload(self, payload: bytes) -> int:
        if self._fd is None:
            raise DurabilityError("write-ahead log is closed")
        lsn = self._next_lsn
        header = _pack_frame_header(lsn, len(payload))
        pending = self._pending
        if (
            self._segment_size + len(pending) + len(header) + len(payload)
            + _FRAME_CRC.size > self.segment_bytes
            and self._segment_size + len(pending) > _SEGMENT_HEADER.size
        ):
            self._rotate(lsn)
            pending = self._pending
        pending += header
        pending += payload
        pending += _pack_crc(_crc32(payload, _crc32(header)))
        self._next_lsn = lsn + 1
        if self.fsync == "always":
            self._flush(fsync=True)
        elif len(pending) >= self.flush_bytes:
            self._flush(fsync=self.fsync == "batch")
        return lsn

    def _rotate(self, next_lsn: int) -> None:
        self._flush(fsync=self.fsync != "none")
        os.close(self._fd)
        self._start_segment(next_lsn)

    def _flush(self, fsync: bool) -> None:
        if self._pending:
            data = bytes(self._pending)
            self._pending.clear()
            if self.probe is not None and len(data) > 1:
                # Fault injection: let a crash land between the two halves
                # of one write, producing a genuinely torn frame on disk.
                half = len(data) // 2
                os.write(self._fd, data[:half])
                self.probe("wal.mid_frame")
                os.write(self._fd, data[half:])
            else:
                os.write(self._fd, data)
            self._segment_size += len(data)
        if fsync:
            os.fsync(self._fd)

    def sync(self) -> None:
        """Durability barrier: buffered frames reach disk before return
        (written, and fsynced unless the policy is ``"none"``)."""
        if self._fd is None:
            raise DurabilityError("write-ahead log is closed")
        self._flush(fsync=self.fsync != "none")

    def truncate_before(self, watermark: int) -> list[Path]:
        """Remove log segments every frame of which is ``<= watermark``.

        The caller asserts the watermark is covered by a durable snapshot
        recovery can start from, so frames at or below it will never be
        replayed.  Segment boundaries make coverage checkable without
        scanning: segment ``i`` (other than the active tail, which is
        never removed) only holds frames below segment ``i+1``'s first
        LSN, so it is removable exactly when ``starts[i+1] <= watermark +
        1``.  The directory is fsynced after the unlinks, and the first
        surviving segment still satisfies ``first_lsn <= watermark + 1``
        — :meth:`replay` from the watermark sees an intact log.

        Returns the removed segment paths (empty when nothing is
        covered).
        """
        if self._fd is None:
            raise DurabilityError("write-ahead log is closed")
        segments = _segment_files(self.directory)
        removed: list[Path] = []
        for index in range(len(segments) - 1):
            next_first = _segment_first_lsn(segments[index + 1])
            if next_first is None or next_first > watermark + 1:
                break
            segments[index].unlink()
            removed.append(segments[index])
        if removed:
            self._fsync_directory()
        return removed

    def close(self) -> None:
        """Flush and close (idempotent)."""
        if self._fd is None:
            return
        self._flush(fsync=self.fsync != "none")
        os.close(self._fd)
        self._fd = None

    def abandon(self) -> None:
        """Drop buffered frames and close *without* flushing.

        This is the fault-injection escape hatch: it leaves the on-disk
        state exactly as a SIGKILL would — everything written so far
        survives, everything still buffered in memory is lost.
        """
        self._pending.clear()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- replay -------------------------------------------------------------

    @staticmethod
    def replay(
        directory: str | Path, after_lsn: int = 0
    ) -> Iterator[tuple[int, str, int, tuple[list, ...]]]:
        """Yield ``(lsn, relation, sign, columns)`` for every frame with
        ``lsn > after_lsn``, in LSN order.

        Read-only: a torn tail on the *last* segment simply ends the
        iteration (the opener truncates it later); a bad frame in any
        earlier segment — or a non-increasing LSN — is real corruption
        and raises :class:`~repro.errors.WalCorruptionError`.

        The suffix is guaranteed *complete*: if the log's oldest
        surviving frame sits beyond ``after_lsn + 1`` (checkpoint
        truncation removed the prefix, or an ``ensure_lsn`` forward gap
        means it was never logged), the request raises
        :class:`~repro.errors.ResumeGapError` instead of silently
        yielding a stream with missing deltas — the caller must restart
        from a snapshot at or below ``after_lsn``.
        """
        directory = Path(directory)
        segments = _segment_files(directory)
        # Segments strictly after the watermark's segment still need their
        # predecessor scanned (the watermark may sit mid-segment).
        starts = [_segment_first_lsn(path) for path in segments]
        keep_from = 0
        for index, first_lsn in enumerate(starts):
            if first_lsn is not None and first_lsn <= after_lsn + 1:
                keep_from = index
        previous_lsn = after_lsn
        oldest_seen: Optional[int] = None
        for index in range(keep_from, len(segments)):
            path = segments[index]
            is_last = index == len(segments) - 1
            first_lsn = starts[index]
            if first_lsn is None:
                if is_last:
                    break  # torn header: nothing recoverable in the tail
                raise WalCorruptionError(
                    f"{path.name}: unreadable segment header in the middle "
                    "of the log"
                )
            data = path.read_bytes()
            valid_end = _SEGMENT_HEADER.size
            for _, lsn, payload, end in _walk_frames(data[_SEGMENT_HEADER.size:]):
                if oldest_seen is None:
                    oldest_seen = lsn
                    if lsn > after_lsn + 1:
                        raise ResumeGapError(after_lsn, lsn)
                if lsn <= previous_lsn and lsn > after_lsn:
                    raise WalCorruptionError(
                        f"{path.name}: LSN {lsn} after {previous_lsn} — "
                        "log sequence must be strictly increasing"
                    )
                valid_end = _SEGMENT_HEADER.size + end
                if lsn > after_lsn:
                    previous_lsn = lsn
                    relation, sign, columns = decode_batch_payload(payload)
                    yield lsn, relation, sign, columns
            if valid_end < len(data) and not is_last:
                raise WalCorruptionError(
                    f"{path.name}: corrupt frame in the middle of the log "
                    f"(byte {valid_end})"
                )
        if oldest_seen is None:
            # A frameless log (fresh tail after full truncation, or empty
            # directory) can still witness a gap through its header LSN.
            for first_lsn in starts[keep_from:]:
                if first_lsn is not None:
                    if first_lsn > after_lsn + 1:
                        raise ResumeGapError(after_lsn, first_lsn)
                    break


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


class SnapshotStore:
    """Atomic whole-engine snapshots, newest-first on load.

    A snapshot file is ``header + pickled state + crc32`` written to a
    temporary file, fsynced, then renamed into place (followed by a
    directory fsync) — a crash leaves either the previous snapshot set or
    the previous set plus one complete new file, never a half-written
    visible snapshot.  ``keep`` bounds how many snapshots are retained;
    older ones (and stray tmp files) are pruned after each save.
    """

    def __init__(
        self,
        directory: str | Path,
        keep: int = 2,
        probe: Optional[Callable[[str], None]] = None,
    ) -> None:
        if keep < 1:
            raise DurabilityError(f"snapshot keep must be >= 1, got {keep!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.probe = probe

    def _path(self, lsn: int) -> Path:
        return self.directory / f"snapshot-{lsn:016d}.snap"

    def paths(self) -> list[Path]:
        """Snapshot files, oldest first."""
        return sorted(self.directory.glob("snapshot-*.snap"))

    def retained_watermark(self) -> Optional[int]:
        """The *oldest* retained snapshot's LSN, or ``None`` if empty.

        This is the safe WAL-truncation watermark: recovery may fall back
        past a corrupt newest snapshot to any older retained one, so the
        log must keep every frame those older snapshots still need —
        truncating to the newest snapshot's LSN would strand them.
        """
        lsns = []
        for path in self.paths():
            try:
                lsns.append(int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return min(lsns) if lsns else None

    def save(self, lsn: int, state: dict) -> Path:
        """Write one snapshot atomically and prune old ones."""
        body = pickle.dumps(dict(state, lsn=lsn), pickle.HIGHEST_PROTOCOL)
        header = _SNAPSHOT_HEADER.pack(
            _SNAPSHOT_MAGIC, _FORMAT_VERSION, lsn, len(body)
        )
        final = self._path(lsn)
        tmp = final.with_suffix(".snap.tmp")
        with open(tmp, "wb") as handle:
            handle.write(header)
            if self.probe is not None:
                half = len(body) // 2
                handle.write(body[:half])
                handle.flush()
                self.probe("snapshot.mid_write")
                handle.write(body[half:])
            else:
                handle.write(body)
            handle.write(_FRAME_CRC.pack(zlib.crc32(body)))
            handle.flush()
            os.fsync(handle.fileno())
        if self.probe is not None:
            self.probe("snapshot.before_rename")
        os.replace(tmp, final)
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        self.prune()
        return final

    def prune(self) -> None:
        for stray in self.directory.glob("snapshot-*.snap.tmp"):
            stray.unlink(missing_ok=True)
        snapshots = self.paths()
        for old in snapshots[: max(0, len(snapshots) - self.keep)]:
            old.unlink(missing_ok=True)

    def _load(self, path: Path) -> Optional[dict]:
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if len(data) < _SNAPSHOT_HEADER.size + _FRAME_CRC.size:
            return None
        magic, version, lsn, body_len = _SNAPSHOT_HEADER.unpack_from(data, 0)
        if magic != _SNAPSHOT_MAGIC or version != _FORMAT_VERSION:
            return None
        start = _SNAPSHOT_HEADER.size
        end = start + body_len
        if end + _FRAME_CRC.size > len(data):
            return None
        body = data[start:end]
        (stored_crc,) = _FRAME_CRC.unpack_from(data, end)
        if zlib.crc32(body) != stored_crc:
            return None
        try:
            state = pickle.loads(body)
        except Exception:
            return None
        if not isinstance(state, dict) or state.get("lsn") != lsn:
            return None
        return state

    def load_latest(self, max_lsn: Optional[int] = None) -> Optional[dict]:
        """The newest snapshot that validates, or None.

        Invalid files (torn writes that somehow became visible, bad CRCs,
        foreign formats) are skipped, falling back to the next older
        snapshot — the load-side half of snapshot atomicity.

        ``max_lsn`` bounds the search to snapshots at or below that LSN —
        the resume-from-LSN path needs a *basis* no newer than the
        subscriber's position, so WAL replay from it passes through the
        requested LSN instead of starting beyond it.
        """
        for path in reversed(self.paths()):
            if max_lsn is not None:
                try:
                    lsn = int(path.stem.split("-", 1)[1])
                except (IndexError, ValueError):
                    continue
                if lsn > max_lsn:
                    continue
            state = self._load(path)
            if state is not None:
                return state
        return None


# ---------------------------------------------------------------------------
# Program identity
# ---------------------------------------------------------------------------


def program_fingerprint(program: CompiledProgram) -> str:
    """A stable digest of the program shape a durable directory serves.

    Recovery refuses to replay a log into a *different* program (other
    maps, other triggers): the WAL records deltas, and deltas only mean
    anything against the program that produced them.  The fingerprint
    covers the trigger set, the maintained maps (name + key arity) and
    the query names — the parts replay depends on.
    """
    digest = hashlib.sha256()
    for relation, sign in sorted(program.triggers):
        digest.update(f"trigger:{relation}/{sign};".encode())
    for name in sorted(program.maps):
        digest.update(f"map:{name}/{program.maps[name].arity};".encode())
    for query in program.queries:
        digest.update(f"query:{query.name};".encode())
    for relation in sorted(program.static_relations):
        digest.update(f"static:{relation};".encode())
    return digest.hexdigest()[:16]


def _check_meta(directory: Path, fingerprint: str, create: bool) -> None:
    meta_path = directory / _META_FILE
    if meta_path.exists():
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise RecoveryError(
                f"{meta_path}: unreadable durability metadata: {exc}"
            ) from exc
        stored = meta.get("fingerprint")
        if stored != fingerprint:
            raise RecoveryError(
                f"{directory} was written by a different program "
                f"(fingerprint {stored!r}, this program {fingerprint!r}); "
                "recover it with the original query/schema or point the "
                "engine at a fresh directory"
            )
        return
    if create:
        tmp = meta_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps({"format": _FORMAT_VERSION, "fingerprint": fingerprint})
        )
        os.replace(tmp, meta_path)


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


def recover_engine(
    program: CompiledProgram,
    directory: str | Path,
    shards: int = 1,
    parallel: bool = False,
    **engine_kwargs,
):
    """Rebuild an engine from a durable directory.

    Loads the latest valid snapshot (if any) into a fresh engine via
    ``restore_state`` and replays the WAL suffix ``lsn > watermark``
    through the normal batch path.  Returns ``(engine, lsn)`` where
    ``lsn`` is the last applied frame's LSN (the watermark a resumed log
    must not re-issue).  With ``shards > 1`` the engine is a
    :class:`~repro.runtime.engine.ShardedEngine` — the log is written
    pre-partition, so any shard count can recover the same directory.

    Replay is idempotent by construction: every frame at or below the
    watermark is filtered out by LSN, so recovering twice (or recovering
    an already-recovered directory) reaches the identical state.
    """
    from repro.runtime.engine import DeltaEngine, ShardedEngine

    directory = Path(directory)
    fingerprint = program_fingerprint(program)
    _check_meta(directory, fingerprint, create=False)
    if shards > 1:
        engine = ShardedEngine(
            program, shards=shards, parallel=parallel, **engine_kwargs
        )
    else:
        engine = DeltaEngine(program, **engine_kwargs)
    watermark = 0
    snapshot = SnapshotStore(directory).load_latest() if directory.exists() else None
    if snapshot is not None:
        stored = snapshot.get("fingerprint")
        if stored is not None and stored != fingerprint:
            raise RecoveryError(
                f"snapshot in {directory} was written by a different "
                f"program (fingerprint {stored!r}, this program "
                f"{fingerprint!r})"
            )
        engine.restore_state(
            snapshot["maps"],
            events_processed=snapshot.get("events_processed", 0),
            events_skipped=snapshot.get("events_skipped", 0),
            stream_started=snapshot.get("stream_started"),
        )
        watermark = snapshot["lsn"]
    last = watermark
    try:
        for lsn, relation, sign, columns in WriteAheadLog.replay(
            directory, after_lsn=watermark
        ):
            engine.process_batch_columns(relation, sign, columns)
            last = lsn
    except ResumeGapError as exc:
        # Only reachable when every snapshot is invalid but the log was
        # already truncated past one: the lost prefix is unrecoverable,
        # and replaying the surviving suffix alone would silently build
        # the wrong state.
        raise RecoveryError(
            f"{directory}: no valid snapshot covers the truncated WAL "
            f"prefix (replay would start at LSN {exc.oldest_lsn}, needed "
            f"{exc.requested_lsn + 1}); the directory is unrecoverable"
        ) from exc
    return engine, last


# ---------------------------------------------------------------------------
# The durable engine wrapper
# ---------------------------------------------------------------------------


class DurableEngine:
    """A crash-durable engine: WAL + snapshots around the delta engine.

    Opening a directory recovers whatever state it holds (latest valid
    snapshot + WAL-suffix replay) and resumes logging at the next LSN, so
    construction doubles as restart::

        engine = DurableEngine(program, "state/")   # fresh or recovered
        engine.process_stream(events)
        engine.snapshot()                            # manual checkpoint
        engine.close()

    Every batch is logged *before* it is applied (write-ahead), in the
    router — pre-partition — so with ``shards > 1`` one log serves any
    future shard count.  ``fsync`` picks the WAL durability policy
    (:class:`WriteAheadLog`); ``snapshot_every=N`` checkpoints
    automatically every N logged events, bounding the WAL suffix a
    restart must replay.  All read/introspection methods (``results``,
    ``map_view``, ``map_sizes``...) delegate to the wrapped engine.
    """

    def __init__(
        self,
        program: CompiledProgram,
        directory: str | Path,
        shards: int = 1,
        parallel: bool = False,
        fsync: str = "batch",
        snapshot_every: Optional[int] = None,
        keep_snapshots: int = 2,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        probe: Optional[Callable[[str], None]] = None,
        **engine_kwargs,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise DurabilityError(
                f"snapshot_every must be >= 1 events, got {snapshot_every!r}"
            )
        self.program = program
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = program_fingerprint(program)
        _check_meta(self.directory, self.fingerprint, create=True)
        self._probe = probe
        self._snapshot_every = snapshot_every
        self._snapshots = SnapshotStore(
            self.directory, keep=keep_snapshots, probe=probe
        )
        self._engine, self._lsn = recover_engine(
            program, self.directory, shards=shards, parallel=parallel,
            **engine_kwargs,
        )
        self._wal = WriteAheadLog(
            self.directory, fsync=fsync, segment_bytes=segment_bytes,
            probe=probe,
        )
        # A lost tail (crash under fsync="batch"/"none" after a snapshot)
        # must not re-issue LSNs the snapshot already covers.
        self._wal.ensure_lsn(self._lsn)
        # Flush-path delta taps on the wrapped engine observe the WAL LSN:
        # every batch is appended immediately before it is applied, so at
        # tap time the log's last LSN is the applied batch's LSN — served
        # deltas carry the same sequence numbers recovery replays.
        self._engine.lsn_source = lambda: self._wal.last_lsn
        self._lsn = self._wal.last_lsn if self._wal.last_lsn > self._lsn else self._lsn
        # A supervised sharded engine rebuilds a dead worker's lane from
        # this directory (snapshot + WAL-suffix replay) instead of from
        # coordinator-side checkpoints — the WAL already journals every
        # batch, so the supervisor's in-memory journal would be redundant.
        supervisor = getattr(self._engine, "supervisor", None)
        if supervisor is not None:
            supervisor.install_rebuilder(self._rebuild_from_disk)
        self._since_snapshot = 0
        self._closed = False
        # (relation, sign) pairs _precheck has already admitted.  Strict
        # mode, the trigger set and the known relations are fixed for the
        # engine's lifetime, so a non-static pair never needs re-checking;
        # static tables stay out (their validity flips with the stream).
        self._precheck_ok: set = set()

    # -- event processing ---------------------------------------------------

    @property
    def engine(self):
        """The wrapped :class:`DeltaEngine` / :class:`ShardedEngine`."""
        return self._engine

    @property
    def lsn(self) -> int:
        """The LSN of the last applied batch (0 before any event)."""
        return self._lsn

    def _precheck(self, relation: str, sign: int) -> None:
        """Raise the engine's own validation errors *before* logging, so a
        rejected batch never poisons the log (replay would re-raise it on
        every recovery)."""
        from repro.runtime.engine import _unknown_relation_error

        inner = self._engine
        if relation in self.program.static_relations:
            if inner._stream_started:
                raise EventError(
                    f"static table {relation!r} cannot change after "
                    "stream processing has started; declare it as a STREAM "
                    "if it receives online updates"
                )
            if sign != 1:
                raise EventError(
                    f"static table {relation!r} only supports bulk-load "
                    "inserts"
                )
        elif (
            inner.strict
            and (relation, sign) not in self.program.triggers
            and relation not in inner._relations
        ):
            raise _unknown_relation_error(self.program, relation)
        else:
            self._precheck_ok.add((relation, sign))

    def _log_and_apply(self, batch: EventBatch) -> int:
        if self._closed:
            raise DurabilityError("DurableEngine is closed")
        count = len(batch)
        if not count:
            return 0
        if (batch.relation, batch.sign) not in self._precheck_ok:
            self._precheck(batch.relation, batch.sign)
        lsn = self._wal.append_batch(batch)
        if self._probe is not None:
            self._probe("engine.after_append")
        self._engine._process_batch(batch)
        self._lsn = lsn
        if self._probe is not None:
            self._probe("engine.after_apply")
        self._since_snapshot += count
        if (
            self._snapshot_every is not None
            and self._since_snapshot >= self._snapshot_every
        ):
            self.snapshot()
        return count

    def process(self, event: StreamEvent) -> None:
        """Log and apply one event (a one-row batch)."""
        self._log_and_apply(EventBatch(event.relation, event.sign, [event.values]))

    def process_batch(
        self, relation: str, sign: int, rows: Sequence[Sequence]
    ) -> int:
        rows = rows if isinstance(rows, list) else list(rows)
        if not rows:
            return 0
        return self._log_and_apply(EventBatch(relation, sign, rows))

    def process_batch_columns(
        self, relation: str, sign: int, columns: Sequence[Sequence]
    ) -> int:
        return self._log_and_apply(EventBatch.from_columns(relation, sign, columns))

    def process_stream(
        self, events, batch_size: Optional[int] = DEFAULT_BATCH_SIZE
    ) -> int:
        """Log and apply a whole stream, batch by batch (see
        :meth:`repro.runtime.engine.DeltaEngine.process_stream`)."""
        count = 0
        for batch in batches(events, batch_size):
            self._log_and_apply(batch)
            count += len(batch)
        return count

    def insert(self, relation: str, *values) -> None:
        self.process(StreamEvent(relation, 1, tuple(values)))

    def delete(self, relation: str, *values) -> None:
        self.process(StreamEvent(relation, -1, tuple(values)))

    def load(self, relation: str, rows) -> int:
        rows = [tuple(row) for row in rows]
        self.process_batch(relation, 1, rows)
        return len(rows)

    # -- durability control -------------------------------------------------

    def sync(self) -> None:
        """Durability barrier: every logged batch reaches disk (and every
        shard worker drains) before return."""
        if getattr(self._engine, "parallel", False) or hasattr(
            self._engine, "merged_maps"
        ):
            self._engine.sync()
        self._wal.sync()

    def oldest_replayable_lsn(self) -> Optional[int]:
        """The oldest LSN the WAL can still replay (see
        :meth:`WriteAheadLog.oldest_replayable_lsn`); a subscriber cannot
        resume from below it without a snapshot basis."""
        return self._wal.oldest_replayable_lsn()

    def _rebuild_from_disk(self) -> int:
        """Restore the wrapped engine from the durable directory.

        The shard supervisor calls this after respawning a dead worker:
        every lane (the fresh one and the survivors) is reset and the
        whole engine is rebuilt from the latest snapshot plus the WAL
        suffix — the same path crash recovery takes, so the supervisor
        inherits its parity guarantees.  The in-flight batch is already
        in the WAL (appended before apply), so the replay re-applies it
        and the caller must *not* re-send it.  Flush-path listeners are
        suppressed during the rebuild: subscribers already saw these
        deltas, re-rendering them would duplicate the stream.

        Returns the number of WAL frames replayed (the suffix length the
        recovery time is linear in).
        """
        self._wal.sync()
        engine = self._engine
        snapshot = self._snapshots.load_latest()
        listeners, engine._batch_listeners = engine._batch_listeners, []
        try:
            watermark = 0
            if snapshot is not None:
                engine.restore_state(
                    snapshot["maps"],
                    events_processed=snapshot.get("events_processed", 0),
                    events_skipped=snapshot.get("events_skipped", 0),
                    stream_started=snapshot.get("stream_started"),
                )
                watermark = snapshot["lsn"]
            else:
                engine.restore_state({})
            replayed = 0
            for lsn, relation, sign, columns in WriteAheadLog.replay(
                self.directory, after_lsn=watermark
            ):
                engine.process_batch_columns(relation, sign, columns)
                replayed += 1
            return replayed
        finally:
            engine._batch_listeners = listeners

    def snapshot(self) -> Path:
        """Checkpoint the whole engine state at the current LSN.

        Syncs the WAL first so the snapshot never claims a watermark the
        log has not durably reached, then writes atomically via
        :class:`SnapshotStore`.  Restart replays only frames past this
        watermark.
        """
        if self._closed:
            raise DurabilityError("DurableEngine is closed")
        self._wal.sync()
        engine = self._engine
        if hasattr(engine, "merged_maps"):
            maps = engine.merged_maps()
            events_processed = engine.events_processed
        else:
            maps = engine.maps
            events_processed = engine.events_processed
        state = {
            # Plain dicts: storage-agnostic (a columnar engine's snapshot
            # restores into a dict engine and vice versa), insertion order
            # preserved either way.
            "maps": {name: dict(contents) for name, contents in maps.items()},
            "events_processed": events_processed,
            "events_skipped": engine.events_skipped,
            "stream_started": engine._stream_started,
            "fingerprint": self.fingerprint,
        }
        path = self._snapshots.save(self._lsn, state)
        self._since_snapshot = 0
        # Snapshots retire log prefixes: segments recovery can no longer
        # replay (fully covered by the oldest *retained* snapshot, so the
        # corrupt-newest fallback path keeps working) are removed.
        watermark = self._snapshots.retained_watermark()
        if watermark is not None:
            self._wal.truncate_before(watermark)
        return path

    def close(self) -> None:
        """Flush the WAL and release resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._wal.close()
        if hasattr(self._engine, "merged_maps"):
            # Keep the sharded engine open for reads?  No: its contract is
            # close-discards; the durable state is on disk.
            self._engine.close()

    def abandon(self) -> None:
        """Simulate a crash: drop all in-memory state without flushing.

        On-disk files are left exactly as a SIGKILL at this moment would
        leave them — used by the in-process half of the fault-injection
        suite, where a real SIGKILL would take the test runner with it.
        """
        self._closed = True
        self._wal.abandon()
        if hasattr(self._engine, "merged_maps"):
            self._engine.close()

    def __enter__(self) -> "DurableEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- reads (delegated) --------------------------------------------------

    def __getattr__(self, name: str):
        # Reads and introspection (results, map_view, map_sizes, maps,
        # events_processed...) delegate to the wrapped engine.  Only
        # called for names not defined here.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.__dict__["_engine"], name)
