"""Step-tracing debugger for delta processing (the paper's Figure 4 tool).

Wraps an engine so each event can be stepped through, printing (or
collecting) the per-statement map changes.  Implemented over the trigger
IR walked *unoptimised*, which preserves one IR block per compiled
statement — the generated compiled code (and the fused/hoisted optimised
IR) is intentionally opaque straight-line code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.compiler.program import CompiledProgram, Statement
from repro.ir.interp import run_trigger_collect
from repro.ir.lower import lower_program
from repro.runtime.events import StreamEvent


@dataclass
class StatementTrace:
    """What one statement did for one event."""

    statement: Statement
    updates: list[tuple[str, tuple, object]]

    def __repr__(self) -> str:
        changes = ", ".join(
            f"{target}[{key!r}] += {value!r}" for target, key, value in self.updates
        ) or "(no change)"
        return f"{self.statement!r}\n    -> {changes}"


@dataclass
class EventTrace:
    """The full trace of one processed event."""

    event: StreamEvent
    statements: list[StatementTrace] = field(default_factory=list)

    def __repr__(self) -> str:
        lines = [f"== {self.event!r} =="]
        lines.extend(repr(s) for s in self.statements)
        return "\n".join(lines)


class Debugger:
    """Traces delta processing over a program's maps, event by event.

    >>> debugger = Debugger(program)
    >>> trace = debugger.step(insert("R", 1, 10))
    >>> print(trace)          # statements and the map entries they touched
    """

    def __init__(
        self,
        program: CompiledProgram,
        sink: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.program = program
        self.maps: dict[str, dict] = {name: {} for name in program.maps}
        # Unoptimised IR: one block per compiled statement, so traces keep
        # statement granularity.
        self._ir = lower_program(program, optimize=False)
        self.history: list[EventTrace] = []
        self.sink = sink

    def step(self, event: StreamEvent) -> EventTrace:
        """Process one event, returning (and recording) its trace."""
        trigger_ir = self._ir.triggers.get((event.relation, event.sign))
        trace = EventTrace(event=event)
        if trigger_ir is not None:
            for block, updates in run_trigger_collect(
                trigger_ir, event.values, self.maps
            ):
                statement = block.sources[0] if block.sources else None
                trace.statements.append(StatementTrace(statement, updates))
        self.history.append(trace)
        if self.sink is not None:
            self.sink(repr(trace))
        return trace

    def run(self, events) -> list[EventTrace]:
        return [self.step(event) for event in events]

    def map_snapshot(self, name: str) -> dict:
        """A copy of one map's current contents."""
        return dict(self.maps[name])

    def watch(self, map_name: str) -> list[tuple[StreamEvent, list]]:
        """History filtered to events that touched ``map_name``."""
        out = []
        for trace in self.history:
            touched = [
                update
                for statement in trace.statements
                for update in statement.updates
                if update[0] == map_name
            ]
            if touched:
                out.append((trace.event, touched))
        return out
