"""The main-memory delta engine (the DBToaster runtime).

``DeltaEngine`` owns the maintained maps and dispatches stream events to
trigger executors:

* ``mode="compiled"`` — triggers run as generated Python functions
  (:mod:`repro.codegen.pygen`), the reproduction of the paper's compiled
  C++ executors;
* ``mode="interpreted"`` — triggers are walked block-by-block over the
  lowered trigger IR (:mod:`repro.ir`), retaining exactly the
  interpretation overhead the paper's compilation eliminates (used as a
  baseline/ablation).

The engine is *embeddable* (construct it in-process and call ``insert`` /
``delete``) and also serves standalone use via
:mod:`repro.runtime.sources` adapters.  A read-only view of the internal
maps supports ad-hoc client queries, per the paper's system model.

Events are accepted one at a time (:meth:`DeltaEngine.process`) or in
*batches* (:meth:`DeltaEngine.process_batch`): a batch is a run of rows
sharing one ``(relation, sign)``, dispatched through a single generated
``*_batch`` trigger call so the per-event Python dispatch overhead (trigger
lookup, static-table checks, profiler hooks, one call per event) is paid
once per batch.  :meth:`DeltaEngine.process_stream` groups consecutive
same-trigger events into such runs automatically; results are identical to
per-event processing because rows apply in stream order.

On top of the single engine, :class:`ShardedEngine` runs *sharded parallel*
delta processing: the compiler's partitioning analysis
(:func:`repro.compiler.partition.analyze_partitioning`) determines which
event column every map access of a trigger is keyed on, batches are
hash-routed by that column to N per-shard :class:`DeltaEngine` lanes (plus
a serial lane for non-partitionable triggers), and ``results()`` /
``map_view()`` merge the lane maps key-wise.  With ``parallel=True`` the
shard lanes are forked worker processes fed over pipes, so trigger
execution overlaps across cores; otherwise shards run in-process, which
keeps the routing/merge semantics (and the tests) identical without any
IPC.
"""

from __future__ import annotations

import signal
import time
from collections import deque
from types import MappingProxyType
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import EventError, UnknownStreamError
from repro.compiler.partition import PartitionSpec, analyze_partitioning
from repro.compiler.program import CompiledProgram, Trigger
from repro.compiler.storage import analyze_storage
from repro.runtime.events import (
    EventBatch,
    StreamEvent,
    batches,
    partition_columns,
    partition_rows,
)

#: Default rows-per-batch cap for ``process_stream``: large enough to
#: amortise dispatch, small enough that grouping an archived single-relation
#: stream stays O(batch) in memory instead of buffering the whole run.
DEFAULT_BATCH_SIZE = 1024

#: Below this run length, shard routing partitions row tuples (one hash and
#: one append per row) instead of building per-shard column gathers.
_ROW_ROUTE_THRESHOLD = 8
from repro.runtime.views import query_results, result_rows_to_dicts
from repro.ir.interp import (
    run_finalize as _run_finalize,
    run_trigger as _run_trigger,
    run_trigger_batch as _run_trigger_batch,
)


def _unknown_relation_error(
    program: CompiledProgram, relation: str
) -> UnknownStreamError:
    """A strict-mode rejection that says what *would* have been accepted."""
    known = sorted(
        {rel for rel, _ in program.triggers} | set(program.static_relations)
    )
    return UnknownStreamError(
        f"no standing query reads relation {relation!r}; "
        "known relations: " + (", ".join(known) if known else "(none)")
    )


class InterpretedExecutor:
    """Executes triggers by walking the lowered IR directly.

    This is deliberately an *interpreter*: every event re-traverses the
    IR nodes — the overhead that code generation removes.  It shares the
    loop-level lowering (and optimisation pipeline) with the compiled
    back end, so its semantics are the generated code's by construction.
    """

    mode = "interpreted"

    def __init__(
        self,
        program: CompiledProgram,
        optimize: bool = True,
        second_order: bool = True,
    ) -> None:
        from repro.ir.lower import lower_program

        self.program = program
        self.optimize = optimize
        self.second_order = second_order
        self._ir = lower_program(
            program, optimize=optimize, second_order=second_order
        )

    def execute(
        self,
        trigger: Trigger,
        values: Sequence,
        maps: dict[str, dict],
        profiler=None,
    ) -> None:
        _run_trigger(
            self._ir.triggers[(trigger.relation, trigger.sign)],
            values,
            maps,
            profiler,
        )

    def execute_batch(
        self,
        trigger: Trigger,
        columns: Sequence[Sequence],
        maps: dict[str, dict],
        profiler=None,
    ) -> None:
        """Interpret a whole columnar batch through the batch trigger IR.

        The interpreter walks the same accumulate-then-flush batch bodies
        the compiled back end renders (first-order accumulation,
        second-order restatement), still re-traversing the IR nodes per
        row — so the compiled-vs-interpreted ablation keeps isolating what
        code generation removes, at matching batch semantics.
        """
        _run_trigger_batch(
            self._ir.batch_triggers[(trigger.relation, trigger.sign)],
            columns,
            maps,
            profiler,
        )


class DeltaEngine:
    """A standing-query engine over a compiled delta program.

    The engine owns one storage object per maintained map and dispatches
    stream events to the trigger executor (generated Python functions in
    ``mode="compiled"``, the IR tree-walker in ``mode="interpreted"``).
    Typical embedded use::

        engine = DeltaEngine(compile_sql(query, catalog))
        engine.insert("bids", 1, 7, 100, 50)   # one event
        engine.process_stream(events)           # a whole (batched) feed
        engine.results()                        # current standing rows

    Map storage follows the compiler's storage plan
    (:func:`repro.compiler.storage.analyze_storage`): keyed maps with
    proven value types live in packed
    :class:`~repro.runtime.storage.ColumnarMap` columns, scalar maps in
    plain dicts.  ``columnar=False`` forces dict storage for every map
    (the storage ablation, the CLI's ``--no-columnar``); contents are
    bit-identical either way.
    """

    def __init__(
        self,
        program: CompiledProgram,
        mode: str = "compiled",
        profiler=None,
        strict: bool = False,
        use_indexes: bool = True,
        optimize: bool = True,
        second_order: bool = True,
        columnar: bool = True,
    ) -> None:
        """``strict=True`` raises on events for relations no standing query
        reads; the default silently skips them (a feed usually carries more
        streams than one query subscribes to).  ``use_indexes=False``
        disables secondary-index generation in compiled mode (the
        access-pattern ablation); ``optimize=False`` disables the IR
        optimisation pipeline in both modes (the loop-optimisation
        ablation, also the bench harness's ``--no-opt``);
        ``second_order=False`` disables the delta-of-delta batch sink, so
        self-reading triggers fall back to the per-row batch loop (the
        higher-order batching ablation); ``columnar=False`` disables
        packed columnar map storage, keeping every map a plain dict (the
        storage ablation, also the CLI's ``--no-columnar``)."""
        self.program = program
        self.columnar = columnar
        if columnar:
            self.maps: dict[str, dict] = analyze_storage(program).create_maps()
        else:
            self.maps = {name: {} for name in program.maps}
        self.profiler = profiler
        self.events_processed = 0
        self.use_indexes = use_indexes
        self.optimize = optimize
        self.second_order = second_order
        if mode == "compiled":
            from repro.codegen.pygen import CompiledExecutor

            self._executor = CompiledExecutor(
                program,
                self.maps,
                use_indexes=use_indexes,
                optimize=optimize,
                second_order=second_order,
                columnar=columnar,
            )
        elif mode == "native":
            from repro.codegen.native import NativeExecutor

            self._executor = NativeExecutor(
                program,
                self.maps,
                use_indexes=use_indexes,
                optimize=optimize,
                second_order=second_order,
                columnar=columnar,
            )
        elif mode == "interpreted":
            self._executor = InterpretedExecutor(
                program, optimize=optimize, second_order=second_order
            )
        else:
            raise EventError(f"unknown engine mode {mode!r}")
        self.mode = mode
        self.strict = strict
        self._relations = {rel for rel, _ in program.triggers}
        self._stream_started = False
        self.events_skipped = 0
        # The flush-path delta tap (see repro.runtime.serving): listeners
        # observe every batch that reached a trigger, stamped with a
        # monotonic LSN.  ``lsn_source`` overrides the local clock — the
        # durable engine points it at the WAL so delivered deltas carry
        # the durability LSN of the batch they derive from.
        self._batch_listeners: list = []
        self._tap_clock = 0
        self.lsn_source: Optional[callable] = None

    def __deepcopy__(self, memo: dict) -> "DeltaEngine":
        """Snapshot support (used by the benchmark harness).

        The compiled executor binds map dictionaries as function defaults,
        so a naive deepcopy would leave the copied engine's triggers writing
        to the *original* maps; instead the copy rebinds a fresh executor
        over copied maps (the immutable program is shared).
        """
        clone = DeltaEngine(
            self.program,
            mode=self.mode,
            profiler=None,
            strict=self.strict,
            use_indexes=self.use_indexes,
            optimize=self.optimize,
            second_order=self.second_order,
            columnar=self.columnar,
        )
        clone.maps.update(
            {
                # dict.copy / ColumnarMap.copy both preserve the storage
                # layout and insertion order of the snapshot.
                name: contents.copy()
                for name, contents in self.maps.items()
            }
        )
        if self.mode != "interpreted":
            clone._executor.bind(clone.maps)
        clone.events_processed = self.events_processed
        clone.events_skipped = self.events_skipped
        clone._stream_started = self._stream_started
        memo[id(self)] = clone
        return clone

    # -- event processing -------------------------------------------------

    def process(self, event: StreamEvent) -> None:
        """Apply one insert/delete event.

        Static tables must be fully loaded before the first stream event:
        mixed static/stream maps carry no static-table triggers, which is
        only sound while all streams are empty.
        """
        if event.relation in self.program.static_relations:
            if self._stream_started:
                raise EventError(
                    f"static table {event.relation!r} cannot change after "
                    "stream processing has started; declare it as a STREAM "
                    "if it receives online updates"
                )
            if event.sign != 1:
                raise EventError(
                    f"static table {event.relation!r} only supports bulk-load "
                    "inserts"
                )
        elif event.relation in self._relations:
            self._stream_started = True
        trigger = self.program.triggers.get((event.relation, event.sign))
        if trigger is None:
            if event.relation not in self._relations:
                if self.strict:
                    raise _unknown_relation_error(self.program, event.relation)
                self.events_skipped += 1
                return
            return  # deletions disabled at compile time, or no statements
        self._executor.execute(trigger, event.values, self.maps, self.profiler)
        self.events_processed += 1
        if self.profiler is not None:
            self.profiler.record_event(event)
        if self._batch_listeners:
            self._notify_listeners(
                EventBatch(event.relation, event.sign, [event.values])
            )

    def _process_batch(self, batch: EventBatch) -> int:
        """Dispatch one batch: per-event trigger for a degenerate one-row
        run (no loop setup, no transpose, and a second-order flush would
        restate whole maps for one row's change), the columnar ``*_batch``
        trigger otherwise.

        This is the engine's hottest dispatch path on interleaved feeds
        (runs average a handful of rows), so the static-table/strict/skip
        bookkeeping is inlined rather than factored out.
        """
        count = batch._length
        if not count:
            return 0
        relation, sign = batch.relation, batch.sign
        if relation in self.program.static_relations:
            if self._stream_started:
                raise EventError(
                    f"static table {relation!r} cannot change after "
                    "stream processing has started; declare it as a STREAM "
                    "if it receives online updates"
                )
            if sign != 1:
                raise EventError(
                    f"static table {relation!r} only supports bulk-load "
                    "inserts"
                )
        elif relation in self._relations:
            self._stream_started = True
        trigger = self.program.triggers.get((relation, sign))
        if trigger is None:
            if relation not in self._relations:
                if self.strict:
                    raise _unknown_relation_error(self.program, relation)
                self.events_skipped += count
            return 0  # or: deletions disabled / no statements
        if count == 1:
            self._executor.execute(trigger, batch.row(0), self.maps, self.profiler)
        else:
            self._executor.execute_batch(
                trigger, batch.columns, self.maps, self.profiler
            )
        self.events_processed += count
        if self.profiler is not None:
            self.profiler.record_batch(relation, sign, count)
        if self._batch_listeners:
            self._notify_listeners(batch)
        return count

    def _notify_listeners(self, batch: EventBatch) -> None:
        """Fire the flush-path tap: the batch just applied, LSN-stamped.

        Listener errors propagate — a tap that cannot keep up (or raises)
        must surface to the caller rather than silently drop deltas.
        """
        self._tap_clock += 1
        lsn = (
            self.lsn_source()
            if self.lsn_source is not None
            else self._tap_clock
        )
        for listener in list(self._batch_listeners):
            listener(lsn, batch)

    def add_batch_listener(self, listener) -> None:
        """Register a flush-path tap: ``listener(lsn, batch)`` runs after
        every batch that reached a trigger (skipped relations never fire).
        LSNs are monotonic; a :class:`~repro.runtime.durability.DurableEngine`
        substitutes the WAL LSN of the logged batch."""
        self._batch_listeners.append(listener)

    def remove_batch_listener(self, listener) -> None:
        self._batch_listeners.remove(listener)

    def process_batch(self, relation: str, sign: int, rows: Sequence[Sequence]) -> int:
        """Apply a run of same-``(relation, sign)`` rows as one batch.

        Semantically identical to ``process``-ing each row in order, but the
        per-event dispatch cost (trigger lookup, static-table checks,
        profiler hooks, one Python call per event) is paid once per batch;
        multi-row runs are transposed once into the columnar batch layout
        and run through the ``*_batch`` trigger.

        Returns the number of rows that reached a trigger (0 when the
        relation is unsubscribed and the rows were skipped).
        """
        rows = rows if isinstance(rows, list) else list(rows)
        if not rows:
            return 0
        return self._process_batch(EventBatch(relation, sign, rows))

    def process_batch_columns(
        self, relation: str, sign: int, columns: Sequence[Sequence]
    ) -> int:
        """Apply one *columnar* batch (parallel per-column lists).

        The native batch entry point — :class:`EventBatch` storage flows
        here without any row materialisation; in compiled mode the
        generated ``*_batch`` trigger iterates exactly the column lists its
        body reads.
        """
        return self._process_batch(
            EventBatch.from_columns(relation, sign, columns)
        )

    def process_stream(
        self, events: Iterable, batch_size: Optional[int] = DEFAULT_BATCH_SIZE
    ) -> int:
        """Apply a sequence of events (update pairs are flattened).

        Consecutive events sharing one ``(relation, sign)`` are grouped and
        dispatched as batches: one-row runs take the per-event trigger
        directly, longer runs the columnar ``*_batch`` trigger.
        ``batch_size`` caps the rows buffered per batch (default
        ``DEFAULT_BATCH_SIZE``, keeping memory bounded on endless
        single-relation feeds); ``None`` leaves runs unbounded — only safe
        for finite streams.

        Returns the number of events *consumed from the stream*, which
        includes events the engine skipped because no standing query reads
        their relation — see ``events_processed`` / ``events_skipped`` for
        the split.
        """
        count = 0
        for batch in batches(events, batch_size):
            self._process_batch(batch)
            count += len(batch)
        return count

    def insert(self, relation: str, *values) -> None:
        self.process(StreamEvent(relation, 1, tuple(values)))

    def delete(self, relation: str, *values) -> None:
        self.process(StreamEvent(relation, -1, tuple(values)))

    def load(self, relation: str, rows: Iterable[Sequence]) -> int:
        """Bulk-load a (static) table through the batch path.

        Returns the number of rows consumed (like :meth:`process_stream`,
        rows for unsubscribed relations count even though they are skipped).
        """
        rows = [tuple(row) for row in rows]
        self.process_batch(relation, 1, rows)
        return len(rows)

    # -- durability ---------------------------------------------------------

    def restore_state(
        self,
        maps: Mapping[str, Mapping],
        events_processed: int = 0,
        events_skipped: int = 0,
        stream_started: Optional[bool] = None,
    ) -> None:
        """Replace the engine's state with snapshot contents.

        Maps are updated *in place* — the compiled executor binds the map
        objects as function defaults, so swapping in new dicts would leave
        the triggers writing to orphans — and the executor is rebound
        afterwards so secondary indexes are rebuilt over the restored
        contents.  ``stream_started`` defaults to "any event was
        processed", which preserves the static-tables-load-first rule
        across a restart.
        """
        unknown = set(maps) - set(self.maps)
        if unknown:
            raise EventError(
                f"cannot restore unknown maps {sorted(unknown)}; this "
                f"program maintains: {sorted(self.maps)}"
            )
        for name, target in self.maps.items():
            target.clear()
            contents = maps.get(name)
            if contents:
                target.update(contents)
        if self.mode != "interpreted":
            self._executor.bind(self.maps)
        self.events_processed = events_processed
        self.events_skipped = events_skipped
        if stream_started is None:
            stream_started = events_processed > 0
        self._stream_started = stream_started

    @classmethod
    def recover(cls, program: CompiledProgram, directory, **kwargs):
        """Rebuild an engine from a durable directory (latest snapshot +
        WAL-suffix replay — see :mod:`repro.runtime.durability`).

        Returns a plain (non-logging) engine holding the recovered state;
        use :class:`~repro.runtime.durability.DurableEngine` instead when
        processing should *continue* to be logged.
        """
        from repro.runtime.durability import recover_engine

        engine, _ = recover_engine(program, directory, **kwargs)
        return engine

    # -- results ------------------------------------------------------------

    def results(self, query_name: Optional[str] = None) -> list[tuple]:
        """Current rows of a standing query."""
        return query_results(self.program, self.maps, query_name)

    def results_dict(self, query_name: Optional[str] = None) -> list[dict]:
        query = self._query(query_name)
        return result_rows_to_dicts(query, self.results(query.name))

    def result_scalar(self, query_name: Optional[str] = None):
        """The single value of a scalar (non-grouped, single-item) query."""
        rows = self.results(query_name)
        if len(rows) != 1 or len(rows[0]) != 1:
            raise EventError("result_scalar requires a scalar single-item query")
        return rows[0][0]

    def _query(self, query_name: Optional[str]):
        if query_name is None:
            if len(self.program.queries) != 1:
                raise EventError("query_name required with multiple queries")
            return self.program.queries[0]
        for query in self.program.queries:
            if query.name == query_name:
                return query
        raise EventError(f"unknown query {query_name!r}")

    # -- introspection (the read-only client interface) --------------------

    @property
    def native_active(self) -> bool:
        """True when the C column kernel is loaded and attached
        (``mode="native"`` with a working toolchain)."""
        return bool(getattr(self._executor, "native_active", False))

    @property
    def native_note(self) -> Optional[str]:
        """The toolchain probe result the native lane ran under (or the
        fallback reason); ``None`` outside ``mode="native"``."""
        return getattr(self._executor, "native_note", None)

    def map_view(self, name: str) -> Mapping:
        """Read-only view of one internal map, for ad-hoc client queries."""
        return MappingProxyType(self.maps[name])

    def index_sizes(self) -> dict[str, int]:
        """Secondary-index entries currently held, per indexed map.

        Compiled mode maintains one index dict per access pattern; their
        entries are real memory the plain ``map_sizes`` view does not show.
        Interpreted mode (and ``use_indexes=False``) holds none.
        """
        counter = getattr(self._executor, "index_entry_counts", None)
        return counter() if counter is not None else {}

    def map_sizes(self, include_indexes: bool = False) -> dict[str, int]:
        """Entries per map; with ``include_indexes`` each map's count also
        covers its secondary-index entries (the real memory footprint)."""
        sizes = {name: len(contents) for name, contents in self.maps.items()}
        if include_indexes:
            for name, entries in self.index_sizes().items():
                sizes[name] += entries
        return sizes

    def total_entries(self, include_indexes: bool = False) -> int:
        total = sum(len(contents) for contents in self.maps.values())
        if include_indexes:
            total += sum(self.index_sizes().values())
        return total


# ---------------------------------------------------------------------------
# Sharded parallel delta processing
# ---------------------------------------------------------------------------


def _shard_worker_main(
    conn, program, mode, use_indexes, optimize, second_order, columnar
) -> None:
    """One shard worker: a private :class:`DeltaEngine` fed over a pipe.

    Batches arrive columnar and apply fire-and-forget; the first trigger
    failure is remembered and surfaced on the next ``sync``/``collect``
    round-trip (subsequent batches are dropped, as the shard state is no
    longer trustworthy).
    """
    engine = DeltaEngine(
        program, mode=mode, strict=False, use_indexes=use_indexes,
        optimize=optimize, second_order=second_order, columnar=columnar,
    )
    failure = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        op = message[0]
        if op == "batch":
            if failure is None:
                try:
                    engine.process_batch_columns(
                        message[1], message[2], message[3]
                    )
                except Exception as exc:  # surfaced on the next sync
                    failure = f"{type(exc).__name__}: {exc}"
        elif op == "rows":
            # Small runs ship as row tuples: the lane transposes lazily
            # (or takes the per-event path for a single row).
            if failure is None:
                try:
                    engine.process_batch(message[1], message[2], message[3])
                except Exception as exc:  # surfaced on the next sync
                    failure = f"{type(exc).__name__}: {exc}"
        elif op == "sync":
            if failure is not None:
                conn.send(("error", failure))
            else:
                conn.send(("ok", engine.events_processed))
        elif op == "collect":
            if failure is not None:
                conn.send(("error", failure))
            else:
                conn.send(("maps", engine.maps, engine.events_processed))
        elif op == "stats":
            if failure is not None:
                conn.send(("error", failure))
            else:
                conn.send(("stats", engine.index_sizes()))
        elif op == "restore":
            # Snapshot recovery scatters a state slice into this lane; a
            # successful restore also clears any remembered failure — the
            # lane state is authoritative again.
            try:
                engine.restore_state(
                    message[1],
                    events_processed=message[2],
                    stream_started=message[3],
                )
            except Exception as exc:
                failure = f"{type(exc).__name__}: {exc}"
                conn.send(("error", failure))
            else:
                failure = None
                conn.send(("ok", None))
        else:  # "stop"
            break
    conn.close()


class _ProcessLane:
    """Coordinator-side handle of one forked shard worker."""

    #: Seconds between liveness checks while waiting on a worker reply.  A
    #: healthy worker replies as soon as it drains its queued batches, so
    #: the poll loop only spins when the pipe is genuinely idle.
    _POLL_INTERVAL = 0.2

    def __init__(
        self, ctx, program, mode, use_indexes, optimize, second_order,
        columnar, index: int = 0,
    ) -> None:
        self.index = index
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker_main,
            args=(
                child, program, mode, use_indexes, optimize, second_order,
                columnar,
            ),
            daemon=True,
        )
        self._proc.start()
        child.close()

    def send_batch(self, relation: str, sign: int, columns: tuple) -> None:
        try:
            self._conn.send(("batch", relation, sign, columns))
        except (BrokenPipeError, OSError) as exc:
            raise self._dead_worker_error() from exc

    def send_rows(self, relation: str, sign: int, rows: list) -> None:
        try:
            self._conn.send(("rows", relation, sign, rows))
        except (BrokenPipeError, OSError) as exc:
            raise self._dead_worker_error() from exc

    def _round_trip(self, request: tuple) -> tuple:
        """Send one request and wait for its reply, watching for death.

        A worker killed mid-operation (OOM, SIGKILL, crash) can leave the
        pipe open-but-silent, so a bare ``recv()`` would hang forever.
        Instead the wait polls the pipe and checks the process between
        polls: a reply already in flight when the worker dies is still
        delivered (poll is checked first), and a dead worker with an empty
        pipe raises a clear :class:`~repro.errors.EventError` naming the
        shard and how it exited.
        """
        try:
            self._conn.send(request)
            while not self._conn.poll(self._POLL_INTERVAL):
                if not self._proc.is_alive():
                    raise self._dead_worker_error()
            reply = self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise self._dead_worker_error() from exc
        if reply[0] == "error":
            raise EventError(
                f"shard worker {self.index} failed: {reply[1]}"
            )
        return reply

    def _dead_worker_error(self) -> EventError:
        exitcode = self._proc.exitcode if self._proc is not None else None
        if exitcode is None:
            how = "exit status unknown"
        elif exitcode < 0:
            try:
                name = signal.Signals(-exitcode).name
            except ValueError:
                name = f"signal {-exitcode}"
            how = f"killed by {name}"
        else:
            how = f"exit code {exitcode}"
        error = EventError(
            f"shard worker {self.index} (pid {self._pid()}) died "
            f"mid-operation ({how}); its lane state is lost — rebuild the "
            "engine, or recover from a durable directory"
        )
        # Death-vs-failure marker: a supervisor restarts on a dead worker
        # (the process is gone) but never on a trigger failure (the
        # worker is alive and answering — restarting would mask the bug).
        error.worker_died = True
        return error

    def _pid(self):
        return self._proc.pid if self._proc is not None else "?"

    def sync(self) -> None:
        self._round_trip(("sync",))

    def events_processed(self) -> int:
        return self._round_trip(("sync",))[1]

    def collect_maps(self) -> dict[str, dict]:
        return self._round_trip(("collect",))[1]

    def index_sizes(self) -> dict[str, int]:
        return self._round_trip(("stats",))[1]

    def restore(
        self, maps: dict, events_processed: int, stream_started: bool
    ) -> None:
        self._round_trip(("restore", maps, events_processed, stream_started))

    def close(self) -> None:
        if self._proc is None:
            return
        try:
            self._conn.send(("stop",))
        except (OSError, ValueError):
            pass
        self._proc.join(timeout=5)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5)
        self._conn.close()
        self._proc = None


class _LocalLane:
    """An in-process shard lane (no IPC; used by tests and small runs)."""

    def __init__(self, engine: DeltaEngine) -> None:
        self.engine = engine

    def send_batch(self, relation: str, sign: int, columns: tuple) -> None:
        self.engine.process_batch_columns(relation, sign, columns)

    def send_rows(self, relation: str, sign: int, rows: list) -> None:
        self.engine.process_batch(relation, sign, rows)

    def sync(self) -> None:
        pass

    def events_processed(self) -> int:
        return self.engine.events_processed

    def collect_maps(self) -> dict[str, dict]:
        return self.engine.maps

    def index_sizes(self) -> dict[str, int]:
        return self.engine.index_sizes()

    def restore(
        self, maps: dict, events_processed: int, stream_started: bool
    ) -> None:
        self.engine.restore_state(
            maps,
            events_processed=events_processed,
            stream_started=stream_started,
        )

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Shard worker supervision
# ---------------------------------------------------------------------------


class _BatchReplayed(Exception):
    """Internal control flow: a supervised durable rebuild replayed the
    in-flight batch from the WAL (it was logged before it was routed), so
    the router must not re-send the remaining lane slices."""


class ShardSupervisor:
    """Respawns dead shard workers and rebuilds their lane state.

    Without supervision a forked worker that dies (OOM kill, crash,
    SIGKILL) permanently poisons its :class:`ShardedEngine`: every later
    operation raises the dead-worker :class:`~repro.errors.EventError`.
    A supervisor (``ShardedEngine(..., parallel=True, supervise=True)``)
    intercepts exactly that error, respawns the worker process and
    rebuilds its state, then resumes the interrupted operation — the
    stream sees one identical delta sequence, just delivered later.

    Two rebuild strategies, picked by how the engine is deployed:

    * **journal** (plain sharded engine) — the supervisor keeps a
      coordinator-side checkpoint per lane (the lane's maps, captured
      through the worker pipe every ``checkpoint_every`` sends — the
      pipe's pickling is the deep copy) plus a journal of every send
      since.  Rebuild = respawn, restore the checkpoint, replay the
      journal; the in-flight send is journaled before it goes out, so
      replay covers it.
    * **durable** (:class:`~repro.runtime.durability.DurableEngine`
      wrapping this engine) — the WAL already journals every batch
      pre-partition, so the durable engine installs a rebuilder
      (:meth:`install_rebuilder`) and in-memory journaling switches off.
      Rebuild = reset *all* lanes and replay snapshot + WAL suffix, the
      exact crash-recovery path; recovery time is linear in the WAL
      suffix length.

    Restarts are budgeted: more than ``max_restarts`` inside a sliding
    ``window`` (seconds) re-raises the loud dead-worker error — a crash
    loop should page an operator, not spin silently.  Only *death* is
    supervised; a worker that answers ``("error", ...)`` (a trigger
    failure) raises immediately, restarting would just mask the bug.
    """

    def __init__(
        self,
        engine: "ShardedEngine",
        max_restarts: int = 3,
        window: float = 60.0,
        checkpoint_every: int = 64,
    ) -> None:
        if max_restarts < 1:
            raise EventError(
                f"supervisor max_restarts must be >= 1, got {max_restarts!r}"
            )
        if window <= 0:
            raise EventError(
                f"supervisor window must be positive, got {window!r}"
            )
        if checkpoint_every < 1:
            raise EventError(
                f"supervisor checkpoint_every must be >= 1, got "
                f"{checkpoint_every!r}"
            )
        self.engine = engine
        self.max_restarts = max_restarts
        self.window = window
        self.checkpoint_every = checkpoint_every
        self.restarts = 0
        self.last_recovery_seconds: Optional[float] = None
        #: One entry per successful restart: lane, rebuild mode, number of
        #: journal entries / WAL frames replayed, wall-clock seconds.
        self.recoveries: list[dict] = []
        self._restart_times: deque = deque()
        self._rebuilder: Optional[Callable[[], int]] = None
        self._rebuilding = False

    def install_rebuilder(self, rebuilder: Callable[[], int]) -> None:
        """Switch to durable rebuilds: ``rebuilder()`` restores the whole
        engine from persistent state and returns the replayed frame
        count.  In-memory journals and checkpoints are dropped — the WAL
        supersedes them."""
        self._rebuilder = rebuilder
        for lane in self.engine._lanes:
            if isinstance(lane, _SupervisedLane):
                lane._journal = []
                lane._checkpoint = None
                lane._sends_since_checkpoint = 0

    @property
    def durable(self) -> bool:
        """True when rebuilds replay persistent state instead of the
        in-memory journal."""
        return self._rebuilder is not None

    def _recover(self, lane: "_SupervisedLane", cause: EventError) -> str:
        """Respawn ``lane``'s worker and rebuild its state.

        Returns the rebuild mode (``"journal"`` / ``"durable"``); raises
        the budget-exhausted :class:`~repro.errors.EventError` without
        restarting when the window is spent.
        """
        now = time.monotonic()
        while self._restart_times and now - self._restart_times[0] > self.window:
            self._restart_times.popleft()
        if len(self._restart_times) >= self.max_restarts:
            raise EventError(
                f"shard worker {lane.index} died and the supervisor's "
                f"restart budget is exhausted ({self.max_restarts} "
                f"restarts in {self.window:g}s); giving up: {cause}"
            ) from cause
        self._restart_times.append(now)
        started = time.perf_counter()
        self.engine._replace_worker(lane)
        if self._rebuilder is not None:
            self._rebuilding = True
            try:
                replayed = self._rebuilder()
            finally:
                self._rebuilding = False
            mode = "durable"
        else:
            checkpoint = lane._checkpoint
            if checkpoint is not None:
                lane._inner.restore(checkpoint[0], checkpoint[1], checkpoint[2])
            for entry in lane._journal:
                lane._apply(lane._inner, entry)
            replayed = len(lane._journal)
            mode = "journal"
        elapsed = time.perf_counter() - started
        self.restarts += 1
        self.last_recovery_seconds = elapsed
        self.recoveries.append(
            {
                "lane": lane.index,
                "mode": mode,
                "replayed": replayed,
                "seconds": elapsed,
            }
        )
        return mode


class _SupervisedLane:
    """A :class:`_ProcessLane` proxy that survives worker death.

    Drop-in for the lane interface the router uses: every operation is
    forwarded to the wrapped lane, and the dead-worker error triggers the
    supervisor's respawn-and-rebuild instead of propagating.  In journal
    mode the proxy also owns the lane's rebuild basis — the checkpoint
    and the send journal (sends are journaled *before* they hit the
    pipe, so the rebuild replay always covers the failed send).
    """

    def __init__(self, supervisor: ShardSupervisor, inner: _ProcessLane) -> None:
        self.supervisor = supervisor
        self._inner = inner
        self._journal: list[tuple] = []
        #: (maps, events_processed, stream_started) through the worker
        #: pipe — pickled on the way out, so already a private deep copy.
        self._checkpoint: Optional[tuple] = None
        self._sends_since_checkpoint = 0

    @property
    def index(self) -> int:
        return self._inner.index

    @property
    def _proc(self):
        # The chaos/fault-injection harness reaches through the proxy for
        # the worker pid it SIGKILLs.
        return self._inner._proc

    @staticmethod
    def _apply(lane: _ProcessLane, entry: tuple) -> None:
        if entry[0] == "batch":
            lane.send_batch(entry[1], entry[2], entry[3])
        else:
            lane.send_rows(entry[1], entry[2], entry[3])

    def _worker_death(self, exc: EventError) -> bool:
        return (
            getattr(exc, "worker_died", False)
            and not self.supervisor._rebuilding
        )

    def _guarded_send(self, entry: tuple) -> None:
        supervisor = self.supervisor
        journaling = supervisor._rebuilder is None
        if journaling:
            self._journal.append(entry)
        try:
            self._apply(self._inner, entry)
        except EventError as exc:
            if not self._worker_death(exc):
                raise
            if supervisor._recover(self, exc) == "durable":
                # The WAL replay re-applied the whole in-flight batch
                # (every lane's slice): abort the router's remaining sends.
                raise _BatchReplayed() from None
            return  # journal replay included this entry
        if journaling:
            self._sends_since_checkpoint += 1
            if self._sends_since_checkpoint >= supervisor.checkpoint_every:
                self._take_checkpoint()

    def _guarded_round_trip(self, op: Callable[[_ProcessLane], object]):
        try:
            return op(self._inner)
        except EventError as exc:
            if not self._worker_death(exc):
                raise
            self.supervisor._recover(self, exc)
            return op(self._inner)

    def _take_checkpoint(self) -> None:
        reply = self._guarded_round_trip(
            lambda lane: lane._round_trip(("collect",))
        )
        self._checkpoint = (
            reply[1],
            reply[2],
            self.supervisor.engine._stream_started,
        )
        self._journal = []
        self._sends_since_checkpoint = 0

    # -- the lane interface --------------------------------------------------

    def send_batch(self, relation: str, sign: int, columns: tuple) -> None:
        self._guarded_send(("batch", relation, sign, columns))

    def send_rows(self, relation: str, sign: int, rows: list) -> None:
        self._guarded_send(("rows", relation, sign, rows))

    def sync(self) -> None:
        self._guarded_round_trip(lambda lane: lane.sync())

    def events_processed(self) -> int:
        return self._guarded_round_trip(lambda lane: lane.events_processed())

    def collect_maps(self) -> dict[str, dict]:
        return self._guarded_round_trip(lambda lane: lane.collect_maps())

    def index_sizes(self) -> dict[str, int]:
        return self._guarded_round_trip(lambda lane: lane.index_sizes())

    def restore(
        self, maps: dict, events_processed: int, stream_started: bool
    ) -> None:
        self._guarded_round_trip(
            lambda lane: lane.restore(maps, events_processed, stream_started)
        )
        if self.supervisor._rebuilder is None:
            # A restore resets the lane wholesale: it becomes the new
            # rebuild basis and everything journaled before it is moot.
            self._checkpoint = (
                {name: dict(contents) for name, contents in maps.items()},
                events_processed,
                stream_started,
            )
            self._journal = []
            self._sends_since_checkpoint = 0

    def close(self) -> None:
        self._inner.close()


def _merge_lane_maps(
    program: CompiledProgram, lane_maps: Iterable[Mapping[str, Mapping]]
) -> dict[str, dict]:
    """Key-wise sum of per-lane maps, dropping zeros.

    Correct uniformly across the three ownership classes of the partition
    spec: sharded read maps hold disjoint key slices per lane (sum ==
    disjoint union), serial-lane maps are empty everywhere else, and
    additive maps accumulate genuine partial sums.
    """
    merged: dict[str, dict] = {name: {} for name in program.maps}
    for maps in lane_maps:
        for name, contents in maps.items():
            if not contents:
                continue
            target = merged[name]
            for key, value in contents.items():
                total = target.get(key, 0) + value
                if total == 0:
                    target.pop(key, None)
                else:
                    target[key] = total
    # Finalize-maintained auxiliary caches are not additive — a lane's
    # cache reflects only its local occurrence slice (summing two lanes'
    # per-group minima would add the values).  Rebuild each cache from
    # its merged occurrence map instead.
    for occ_name, specs in program.finalizers.items():
        for spec in specs:
            target = merged[spec.aux] = {}
            _run_finalize(
                target, merged[occ_name], spec.kind, spec.group_arity, ()
            )
    return merged


class ShardedEngine:
    """N-way sharded parallel execution of a compiled delta program.

    Batches are hash-routed by each relation's partition column (from
    :func:`repro.compiler.partition.analyze_partitioning`) to per-shard
    :class:`DeltaEngine` lanes; relations the analysis cannot partition run
    on a built-in serial lane.  Lane maps are disjoint by construction, so
    :meth:`results` / :meth:`map_view` merge them key-wise and equal a
    single-engine run over the same stream.

    ``parallel=True`` forks one worker process per shard (POSIX only;
    silently falls back to in-process lanes where ``fork`` is unavailable)
    and overlaps trigger execution across cores — the engine-side
    realisation of the ROADMAP's "parallel shards" follow-up.  Reads
    (``results``, ``map_view``, ``events_processed``...) synchronise with
    the workers first, so they always observe a consistent merged state.

    A program with no partitionable relation degrades gracefully: every
    batch runs on the serial lane and the engine behaves exactly like a
    single :class:`DeltaEngine`.
    """

    def __init__(
        self,
        program: CompiledProgram,
        shards: int = 2,
        mode: str = "compiled",
        parallel: bool = False,
        strict: bool = False,
        use_indexes: bool = True,
        optimize: bool = True,
        second_order: bool = True,
        columnar: bool = True,
        spec: Optional[PartitionSpec] = None,
        supervise: bool = False,
        max_worker_restarts: int = 3,
        restart_window: float = 60.0,
        checkpoint_every: int = 64,
    ) -> None:
        """``supervise=True`` (with ``parallel=True``) wraps each forked
        worker lane in a :class:`ShardSupervisor` that respawns dead
        workers and rebuilds their state — from a coordinator-side
        checkpoint + send journal (refreshed every ``checkpoint_every``
        sends), or from snapshot + WAL replay when a
        :class:`~repro.runtime.durability.DurableEngine` wraps this
        engine.  At most ``max_worker_restarts`` restarts are attempted
        per sliding ``restart_window`` seconds; past the budget the
        dead-worker :class:`~repro.errors.EventError` propagates as
        before.  In-process lanes cannot die, so ``supervise`` is a no-op
        without forked workers."""
        if shards < 1:
            raise EventError(f"shard count must be >= 1, got {shards!r}")
        self.program = program
        self.spec = spec if spec is not None else analyze_partitioning(program)
        self.shards = shards
        self.mode = mode
        self.strict = strict
        self.use_indexes = use_indexes
        self.optimize = optimize
        self.second_order = second_order
        self.columnar = columnar
        self.events_skipped = 0
        self._relations = {rel for rel, _ in program.triggers}
        self._stream_started = False
        # Flush-path tap, mirroring DeltaEngine: listeners fire once per
        # routed batch (post-routing — reads through the tap synchronise
        # with the workers themselves).
        self._batch_listeners: list = []
        self._tap_clock = 0
        self.lsn_source: Optional[callable] = None
        self._serial = DeltaEngine(
            program, mode=mode, strict=False, use_indexes=use_indexes,
            optimize=optimize, second_order=second_order, columnar=columnar,
        )
        self.parallel = False
        self._closed = False
        self._lanes: list = []
        self._ctx = None
        self.supervisor: Optional[ShardSupervisor] = None
        if self.spec.partitionable and shards > 1:
            if parallel:
                ctx = self._fork_context()
                if ctx is not None:
                    self._ctx = ctx
                    self._lanes = [
                        self._spawn_worker(index) for index in range(shards)
                    ]
                    self.parallel = True
            if not self._lanes:
                self._lanes = [
                    _LocalLane(
                        DeltaEngine(
                            program,
                            mode=mode,
                            strict=False,
                            use_indexes=use_indexes,
                            optimize=optimize,
                            second_order=second_order,
                            columnar=columnar,
                        )
                    )
                    for _ in range(shards)
                ]
        if supervise and self.parallel:
            self.supervisor = ShardSupervisor(
                self,
                max_restarts=max_worker_restarts,
                window=restart_window,
                checkpoint_every=checkpoint_every,
            )
            self._lanes = [
                _SupervisedLane(self.supervisor, lane) for lane in self._lanes
            ]

    @staticmethod
    def _fork_context():
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return None

    def _spawn_worker(self, index: int) -> _ProcessLane:
        return _ProcessLane(
            self._ctx, self.program, self.mode, self.use_indexes,
            self.optimize, self.second_order, self.columnar, index=index,
        )

    def _replace_worker(self, lane: "_SupervisedLane") -> None:
        """Swap a supervised lane's dead worker for a fresh fork."""
        try:
            lane._inner.close()
        except Exception:
            pass
        lane._inner = self._spawn_worker(lane.index)

    # -- event processing -------------------------------------------------

    def process(self, event: StreamEvent) -> None:
        """Apply one insert/delete event (routed like a one-row batch)."""
        self.process_batch(event.relation, event.sign, [event.values])

    def process_batch(
        self, relation: str, sign: int, rows: Sequence[Sequence]
    ) -> int:
        """Route one same-``(relation, sign)`` run to its lane(s)."""
        rows = rows if isinstance(rows, list) else list(rows)
        if not rows:
            return 0
        return self._process_batch(EventBatch(relation, sign, rows))

    def process_batch_columns(
        self, relation: str, sign: int, columns: Sequence[Sequence]
    ) -> int:
        """Route one columnar batch to its lane(s) (see
        :meth:`DeltaEngine.process_batch_columns`)."""
        return self._process_batch(
            EventBatch.from_columns(relation, sign, columns)
        )

    def _process_batch(self, batch: EventBatch) -> int:
        """Route one batch.

        Semantics match :meth:`DeltaEngine._process_batch`; the
        static-table ordering rules are enforced here, globally, because
        lane-local stream state is only a partial view.  The routing
        column is hashed directly from its column list, and each lane
        receives its slice still columnar; serial-lane batches flow
        through untouched (one-row runs never transpose).
        """
        self._check_open()
        count = len(batch)
        if not count:
            return 0
        relation, sign = batch.relation, batch.sign
        if relation in self.program.static_relations:
            if self._stream_started:
                raise EventError(
                    f"static table {relation!r} cannot change after "
                    "stream processing has started; declare it as a STREAM "
                    "if it receives online updates"
                )
            if sign != 1:
                raise EventError(
                    f"static table {relation!r} only supports bulk-load "
                    "inserts"
                )
        elif relation in self._relations:
            self._stream_started = True
        if self.program.triggers.get((relation, sign)) is None:
            if relation not in self._relations:
                if self.strict:
                    raise _unknown_relation_error(self.program, relation)
                self.events_skipped += count
            return 0
        column = self.spec.column_for(relation)
        try:
            if column is None or not self._lanes:
                self._serial._process_batch(batch)
            elif count == 1:
                row = batch.row(0)
                shard = hash(row[column]) % len(self._lanes)
                self._lanes[shard].send_rows(relation, sign, [row])
            elif count <= _ROW_ROUTE_THRESHOLD:
                # Short runs: row-level hash routing is cheaper than
                # building per-shard column gathers; each lane transposes
                # its (tiny) slice lazily.
                for shard, shard_rows in enumerate(
                    partition_rows(batch.rows, column, len(self._lanes))
                ):
                    if shard_rows:
                        self._lanes[shard].send_rows(relation, sign, shard_rows)
            else:
                for shard, shard_columns in enumerate(
                    partition_columns(batch.columns, column, len(self._lanes))
                ):
                    if shard_columns and shard_columns[0]:
                        self._lanes[shard].send_batch(
                            relation, sign, shard_columns
                        )
        except _BatchReplayed:
            # A supervised durable rebuild replayed the WAL, which already
            # contains this batch in full — the un-sent lane slices were
            # applied by the replay, so routing must not resume.
            pass
        if self._batch_listeners:
            self._notify_listeners(batch)
        return count

    def _notify_listeners(self, batch: EventBatch) -> None:
        """Fire the flush-path tap for one routed batch (see
        :meth:`DeltaEngine._notify_listeners`).  Routing to worker lanes is
        fire-and-forget, so listeners that read state must go through the
        synchronising reads (``results`` / ``merged_maps``)."""
        self._tap_clock += 1
        lsn = (
            self.lsn_source()
            if self.lsn_source is not None
            else self._tap_clock
        )
        for listener in list(self._batch_listeners):
            listener(lsn, batch)

    def add_batch_listener(self, listener) -> None:
        """Register a flush-path tap (see
        :meth:`DeltaEngine.add_batch_listener`)."""
        self._batch_listeners.append(listener)

    def remove_batch_listener(self, listener) -> None:
        self._batch_listeners.remove(listener)

    def process_stream(
        self, events: Iterable, batch_size: Optional[int] = DEFAULT_BATCH_SIZE
    ) -> int:
        """Batch, route and apply a whole stream (see
        :meth:`DeltaEngine.process_stream` for the contract)."""
        count = 0
        for batch in batches(events, batch_size):
            self._process_batch(batch)
            count += len(batch)
        return count

    def insert(self, relation: str, *values) -> None:
        self.process(StreamEvent(relation, 1, tuple(values)))

    def delete(self, relation: str, *values) -> None:
        self.process(StreamEvent(relation, -1, tuple(values)))

    def load(self, relation: str, rows: Iterable[Sequence]) -> int:
        """Bulk-load a (static) table through the sharded batch path."""
        rows = [tuple(row) for row in rows]
        self.process_batch(relation, 1, rows)
        return len(rows)

    def sync(self) -> None:
        """Barrier: wait until every shard worker has drained its pipe.

        Raises :class:`~repro.errors.EventError` if any worker's trigger
        execution failed.  A no-op for in-process lanes.
        """
        for lane in self._lanes:
            lane.sync()

    @property
    def events_processed(self) -> int:
        """Events that reached a trigger, across all lanes (synchronises)."""
        self._check_open()
        return self._serial.events_processed + sum(
            lane.events_processed() for lane in self._lanes
        )

    # -- durability ---------------------------------------------------------

    def restore_state(
        self,
        maps: Mapping[str, Mapping],
        events_processed: int = 0,
        events_skipped: int = 0,
        stream_started: Optional[bool] = None,
    ) -> None:
        """Scatter snapshot contents across the shard lanes.

        A snapshot holds *merged* maps, so restoring must undo the merge:
        each sharded read map is split by hashing the partition value in
        its key — exactly the router's placement, so post-restore deltas
        land on the lane that owns the restored slice.  Serial-lane maps,
        additive (sum-merged) maps and anything unsharded restore whole
        into the serial engine: the merge sums lanes key-wise, and every
        other lane starts its slice empty.  The event counter also lives
        on the serial engine (``events_processed`` sums all lanes).
        """
        self._check_open()
        if stream_started is None:
            stream_started = events_processed > 0
        self.events_skipped = events_skipped
        self._stream_started = stream_started
        if not self._lanes:
            self._serial.restore_state(
                maps,
                events_processed=events_processed,
                stream_started=stream_started,
            )
            return
        n_lanes = len(self._lanes)
        serial_maps: dict[str, dict] = {}
        lane_maps: list[dict[str, dict]] = [{} for _ in range(n_lanes)]
        for name, contents in maps.items():
            position = self.spec.map_positions.get(name)
            if position is None or name in self.spec.serial_maps:
                serial_maps[name] = dict(contents)
                continue
            slices = [lane.setdefault(name, {}) for lane in lane_maps]
            for key, value in contents.items():
                slices[hash(key[position]) % n_lanes][key] = value
        self._serial.restore_state(
            serial_maps,
            events_processed=events_processed,
            stream_started=stream_started,
        )
        for lane, shard_maps in zip(self._lanes, lane_maps):
            lane.restore(shard_maps, 0, stream_started)

    # -- results ------------------------------------------------------------

    def merged_maps(self) -> dict[str, dict]:
        """The key-wise merge of all lane maps (synchronises workers)."""
        self._check_open()
        self.sync()
        lane_maps = [self._serial.maps] + [
            lane.collect_maps() for lane in self._lanes
        ]
        return _merge_lane_maps(self.program, lane_maps)

    def results(self, query_name: Optional[str] = None) -> list[tuple]:
        """Current rows of a standing query over the merged shard state."""
        return query_results(self.program, self.merged_maps(), query_name)

    def results_dict(self, query_name: Optional[str] = None) -> list[dict]:
        query = self._query(query_name)
        return result_rows_to_dicts(query, self.results(query.name))

    def result_scalar(self, query_name: Optional[str] = None):
        rows = self.results(query_name)
        if len(rows) != 1 or len(rows[0]) != 1:
            raise EventError("result_scalar requires a scalar single-item query")
        return rows[0][0]

    def _query(self, query_name: Optional[str]):
        if query_name is None:
            if len(self.program.queries) != 1:
                raise EventError("query_name required with multiple queries")
            return self.program.queries[0]
        for query in self.program.queries:
            if query.name == query_name:
                return query
        raise EventError(f"unknown query {query_name!r}")

    # -- introspection ------------------------------------------------------

    @property
    def native_active(self) -> bool:
        """True when the serial lane runs the C column kernel; forked
        worker lanes probe/build the same cached kernel post-fork."""
        return self._serial.native_active

    @property
    def native_note(self) -> Optional[str]:
        return self._serial.native_note

    def map_view(self, name: str) -> Mapping:
        """Read-only merged view of one map, for ad-hoc client queries."""
        return MappingProxyType(self.merged_maps()[name])

    def index_sizes(self) -> dict[str, int]:
        """Secondary-index entries summed across every lane.

        Indexes are lane-local (each shard indexes its own key slice), so
        the *sum* — not the merged-map view — is the real shard-local
        memory footprint.  The per-lane stats round-trip drains each
        worker's queued batches (pipe messages apply in order) and
        surfaces remembered failures, so no separate sync is needed.
        """
        self._check_open()
        totals = dict(self._serial.index_sizes())
        for lane in self._lanes:
            for name, entries in lane.index_sizes().items():
                totals[name] = totals.get(name, 0) + entries
        return totals

    def map_sizes(self, include_indexes: bool = False) -> dict[str, int]:
        sizes = {
            name: len(contents)
            for name, contents in self.merged_maps().items()
        }
        if include_indexes:
            for name, entries in self.index_sizes().items():
                sizes[name] = sizes.get(name, 0) + entries
        return sizes

    def total_entries(self, include_indexes: bool = False) -> int:
        total = sum(len(contents) for contents in self.merged_maps().values())
        if include_indexes:
            total += sum(self.index_sizes().values())
        return total

    # -- lifecycle ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise EventError(
                "ShardedEngine is closed: shard state was discarded; "
                "read results before close() / leaving the with-block"
            )

    def close(self) -> None:
        """Stop worker processes and discard lane state (idempotent).

        A closed engine rejects further event processing and reads: its
        shard lanes (and their maps) are gone, so answering from the
        remaining serial lane alone would silently return partial state.
        """
        for lane in self._lanes:
            lane.close()
        self._lanes = []
        self._closed = True

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
