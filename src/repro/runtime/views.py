"""The view layer: rendering SQL-visible results from maintained maps.

A query's result rows are derived from its aggregate-slot maps:

* group existence comes from the count slot (a group exists while its row
  count is non-zero — exact under deletions);
* ``sum``/``count`` slots read the map value directly (absent key = 0);
* ``avg`` items divide their two slots;
* ``min``/``max``/``distinct`` slots read their Finalize-maintained
  auxiliary cache (``program.slot_aux``); the occurrence-map scan remains
  as the fallback for programs without one.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import RuntimeEngineError
from repro.algebra.translate import AggregateSpec, TranslatedQuery, eval_result
from repro.compiler.program import CompiledProgram


def query_results(
    program: CompiledProgram,
    maps: Mapping[str, Mapping],
    query_name: Optional[str] = None,
) -> list[tuple]:
    """Result rows (group columns then item columns) for one query.

    With a single registered query ``query_name`` may be omitted.
    """
    query = _find_query(program, query_name)
    slot_names = program.slot_maps[query.name]
    slot_contents = [maps[name] for name in slot_names]
    aux_slots = program.slot_aux.get(query.name, {})
    aux_contents = [
        maps[aux_slots[index]] if index in aux_slots else None
        for index in range(len(slot_names))
    ]

    if not query.is_grouped:
        slot_values = [
            aux.get((), 0)
            if aux is not None
            else _slot_value(spec, contents, group_key=())
            for spec, contents, aux in zip(
                query.aggregates, slot_contents, aux_contents
            )
        ]
        row = tuple(
            eval_result(item.result, (), slot_values) for item in query.items
        )
        return [row]

    group_keys = _live_groups(query, slot_contents)
    caches = [
        aux
        if aux is not None
        else (
            _extreme_by_group(spec, contents)
            if spec.kind in ("min", "max")
            else None
        )
        for spec, contents, aux in zip(
            query.aggregates, slot_contents, aux_contents
        )
    ]
    rows: list[tuple] = []
    for key in sorted(group_keys, key=repr):
        slot_values = []
        for spec, contents, cache in zip(
            query.aggregates, slot_contents, caches
        ):
            if cache is not None:
                slot_values.append(cache.get(key, 0))
            else:
                slot_values.append(contents.get(key, 0))
        rows.append(
            tuple(eval_result(item.result, key, slot_values) for item in query.items)
        )
    return rows


def result_rows_to_dicts(query: TranslatedQuery, rows: list[tuple]) -> list[dict]:
    """Rows as dictionaries keyed by the query's output column names."""
    names = query.column_names
    return [dict(zip(names, row)) for row in rows]


def result_delta(
    previous: Mapping[tuple, int], current: Mapping[tuple, int]
) -> list[tuple[tuple, int]]:
    """The Z-set delta between two result-row multisets.

    Both sides map result rows to multiplicities (a query result is a
    multiset: two groups may render identical rows).  The returned
    ``[(row, weight), ...]`` pairs — positive weights assert rows,
    negative weights retract them — satisfy ``previous + delta ==
    current`` under multiset addition, which is exactly the contract the
    serving layer streams to subscribers (deterministically ordered for
    stable wire frames).
    """
    delta: list[tuple[tuple, int]] = []
    for row, count in current.items():
        weight = count - previous.get(row, 0)
        if weight:
            delta.append((row, weight))
    for row, count in previous.items():
        if count and row not in current:
            delta.append((row, -count))
    delta.sort(key=lambda pair: repr(pair[0]))
    return delta


def _find_query(program: CompiledProgram, name: Optional[str]) -> TranslatedQuery:
    if name is None:
        if len(program.queries) != 1:
            raise RuntimeEngineError(
                "query_name is required when multiple queries are registered"
            )
        return program.queries[0]
    for query in program.queries:
        if query.name == name:
            return query
    raise RuntimeEngineError(f"unknown query {name!r}")


def _slot_value(spec: AggregateSpec, contents: Mapping, group_key: tuple):
    if spec.kind == "sum":
        return contents.get(group_key, 0)
    return _extreme_by_group(spec, contents).get(group_key, 0)


def _live_groups(query: TranslatedQuery, slot_contents: list[Mapping]) -> set:
    """Group keys with at least one underlying row."""
    if query.count_slot is not None:
        count_map = slot_contents[query.count_slot]
        return {key for key, value in count_map.items() if value != 0}
    # Without a count slot (only possible when every slot is
    # min/max/distinct), groups come from occurrence-map prefixes.
    groups: set = set()
    for spec, contents in zip(query.aggregates, slot_contents):
        if spec.kind in ("min", "max", "distinct"):
            width = len(spec.group_vars)
            groups.update(k[:width] for k, v in contents.items() if v != 0)
        else:
            groups.update(k for k, v in contents.items() if v != 0)
    return groups


def _extreme_by_group(spec: AggregateSpec, contents: Mapping) -> dict:
    """Per-group min/max from an occurrence map keyed (group..., value)."""
    best: dict = {}
    take_min = spec.kind == "min"
    for key, count in contents.items():
        if count == 0:
            continue
        group, value = key[:-1], key[-1]
        if group not in best:
            best[group] = value
        elif take_min:
            if value < best[group]:
                best[group] = value
        elif value > best[group]:
            best[group] = value
    return best
