"""Stream sources for standalone mode.

The paper's runtime accepts input "over a network interface or archived
stream"; here the equivalents are iterables, CSV files and generator
adapters.  Every source yields :class:`~repro.runtime.events.StreamEvent`
objects, so ``engine.process_stream(source)`` works uniformly.

Any source can also be delivered in batches (:func:`batch_source`): the
events are grouped into consecutive same-``(relation, sign)`` runs that the
engine dispatches with one trigger call each.  Batches flatten back to their
events, so batched sources remain valid inputs to ``process_stream``.  For
parallel delta processing, :func:`sharded_batch_source` additionally
hash-routes each batch by its relation's partition column, yielding
``(shard, batch)`` pairs a :class:`~repro.runtime.engine.ShardedEngine`
dispatches concurrently.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.errors import EventError
from repro.sql.catalog import Catalog, Relation, SqlType
from repro.runtime.events import EventBatch, StreamEvent, batches


def list_source(events: Iterable[StreamEvent]) -> Iterator[StreamEvent]:
    """A trivial adapter over an in-memory event list."""
    yield from events


def relation_loader(relation: str, rows: Iterable[Sequence]) -> Iterator[StreamEvent]:
    """Bulk inserts for loading a static table."""
    for row in rows:
        yield StreamEvent(relation, 1, tuple(row))


def csv_source(
    path: str | Path,
    catalog: Catalog,
    relation_column: str = "relation",
    op_column: str = "op",
) -> Iterator[StreamEvent]:
    """An archived update stream in CSV form.

    Expected header: ``op,relation,<value0>,<value1>,...`` where ``op`` is
    ``+``/``insert`` or ``-``/``delete``.  Values are coerced using the
    relation's catalog schema.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            op, relation_name, *values = row
            relation = catalog.get(relation_name)
            if len(values) < relation.arity:
                raise EventError(
                    f"{path}:{line_number}: expected {relation.arity} values "
                    f"for {relation.name}, got {len(values)}"
                )
            yield StreamEvent(
                relation.name,
                _op_sign(op, f"{path}:{line_number}"),
                coerce_row(relation, values[: relation.arity]),
            )


def write_csv(path: str | Path, events: Iterable[StreamEvent]) -> int:
    """Archive an event stream to CSV (the inverse of :func:`csv_source`)."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["op", "relation", "values..."])
        for event in events:
            writer.writerow(
                ["+" if event.sign == 1 else "-", event.relation, *event.values]
            )
            count += 1
    return count


def generator_source(
    make_events: Callable[[], Iterable[StreamEvent]],
) -> Iterator[StreamEvent]:
    """Adapter for generator-producing callables (workload generators)."""
    yield from make_events()


def batch_source(
    events: Iterable, batch_size: Optional[int] = None
) -> Iterator[EventBatch]:
    """Deliver any event source as consecutive same-trigger batches.

    Wraps :func:`repro.runtime.events.batches`; use with
    ``engine.process_batch(batch.relation, batch.sign, batch.rows)`` or feed
    the batches straight back to ``process_stream`` (they flatten).
    """
    yield from batches(events, batch_size)


def sharded_batch_source(
    events: Iterable,
    relation_columns: dict[str, int],
    shards: int,
    batch_size: Optional[int] = None,
) -> Iterator[tuple[Optional[int], EventBatch]]:
    """Deliver a stream as ``(shard, batch)`` pairs for parallel dispatch.

    Each consecutive same-``(relation, sign)`` run is hash-split by the
    relation's partition column (``relation_columns``, typically
    ``PartitionSpec.relation_columns`` from
    :func:`repro.compiler.partition.analyze_partitioning`); relations
    without a column yield ``(None, batch)``, the serial lane.  The split
    stays columnar end to end (the routing column is hashed from its own
    list) and rows keep their stream order within every shard.
    """
    from repro.runtime.events import partition_columns

    for batch in batches(events, batch_size):
        column = relation_columns.get(batch.relation)
        if column is None:
            yield None, batch
            continue
        for shard, shard_columns in enumerate(
            partition_columns(batch.columns, column, shards)
        ):
            if shard_columns and shard_columns[0]:
                yield shard, EventBatch.from_columns(
                    batch.relation, batch.sign, shard_columns
                )


def csv_batch_source(
    path: str | Path,
    catalog: Catalog,
    batch_size: Optional[int] = None,
) -> Iterator[EventBatch]:
    """An archived CSV stream delivered in batches (see :func:`csv_source`)."""
    yield from batches(csv_source(path, catalog), batch_size)


def coerce_row(relation: Relation, values: Sequence) -> tuple:
    """Coerce raw (string) values to the relation's column types."""
    out = []
    for column, value in zip(relation.columns, values):
        if isinstance(value, str):
            if column.type is SqlType.INT:
                out.append(int(value))
            elif column.type is SqlType.FLOAT:
                out.append(float(value))
            else:
                out.append(value)
        else:
            out.append(value)
    return tuple(out)


def _op_sign(op: str, where: str) -> int:
    normalized = op.strip().lower()
    if normalized in ("+", "insert", "i", "1"):
        return 1
    if normalized in ("-", "delete", "d", "-1"):
        return -1
    raise EventError(f"{where}: unknown operation {op!r}")
