"""The update-stream event model.

Per the paper's data model, a database is a set of relations each subject to
an arbitrary sequence of inserts, updates and deletes — *not* windowed
streams.  An update is represented as a delete of the old tuple followed by
an insert of the new one (the paper makes the same reduction).

Besides single events, the runtime supports *batched* delivery: a stream is
grouped into :class:`EventBatch` runs of consecutive events sharing one
``(relation, sign)``, so the engine can dispatch each run with a single
trigger call (see :meth:`repro.runtime.engine.DeltaEngine.process_batch`).
Batches can additionally be *shard-routed*: :func:`partition_rows` splits a
batch's rows by the hash of one column, the unit of parallel delta
processing (see :class:`repro.runtime.engine.ShardedEngine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import EventError


@dataclass(frozen=True)
class StreamEvent:
    """A single-tuple insert (+1) or delete (-1) on a base relation."""

    relation: str
    sign: int
    values: tuple

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise EventError(f"event sign must be +1 or -1, got {self.sign!r}")

    @property
    def is_insert(self) -> bool:
        return self.sign == 1

    def __repr__(self) -> str:
        symbol = "+" if self.sign == 1 else "-"
        return f"{symbol}{self.relation}{self.values!r}"


def insert(relation: str, *values) -> StreamEvent:
    """An insert event."""
    return StreamEvent(relation, 1, tuple(values))


def delete(relation: str, *values) -> StreamEvent:
    """A delete event (of one previously inserted tuple)."""
    return StreamEvent(relation, -1, tuple(values))


def update(relation: str, old: Sequence, new: Sequence) -> tuple[StreamEvent, StreamEvent]:
    """An update, expressed as the paper's delete+insert pair."""
    return (
        StreamEvent(relation, -1, tuple(old)),
        StreamEvent(relation, 1, tuple(new)),
    )


def flatten(events: Iterable) -> Iterator[StreamEvent]:
    """Flatten a stream that may contain update pairs (tuples of events).

    :class:`EventBatch` items are iterable over their events, so batched
    streams flatten transparently as well.
    """
    for item in events:
        if isinstance(item, StreamEvent):
            yield item
        else:
            for sub in item:
                yield sub


@dataclass
class EventBatch:
    """A run of consecutive events sharing one ``(relation, sign)``.

    ``rows`` holds the event value tuples in stream order.  A batch is the
    unit of the engine's batched execution path: one generated trigger call
    applies all rows, amortising per-event dispatch overhead.
    """

    relation: str
    sign: int
    rows: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise EventError(f"batch sign must be +1 or -1, got {self.sign!r}")

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[StreamEvent]:
        """The batch as its constituent events (keeps ``flatten`` uniform)."""
        for row in self.rows:
            yield StreamEvent(self.relation, self.sign, tuple(row))

    def __repr__(self) -> str:
        symbol = "+" if self.sign == 1 else "-"
        return f"{symbol}{self.relation}[{len(self.rows)} rows]"


def partition_rows(
    rows: Iterable[Sequence], column: int, shards: int
) -> list[list[Sequence]]:
    """Hash-partition batch rows by one column into per-shard row lists.

    Row order is preserved within every shard, so each shard observes its
    sub-stream in stream order; rows assigned to different shards commute
    because a partitionable trigger only touches map keys carrying the
    row's own partition value (see :mod:`repro.compiler.partition`).
    """
    if shards < 1:
        raise EventError(f"shard count must be >= 1, got {shards!r}")
    buckets: list[list[Sequence]] = [[] for _ in range(shards)]
    if shards == 1:
        buckets[0].extend(rows)
        return buckets
    for row in rows:
        buckets[hash(row[column]) % shards].append(row)
    return buckets


def batches(events: Iterable, batch_size: Optional[int] = None) -> Iterator[EventBatch]:
    """Group a stream into consecutive same-``(relation, sign)`` batches.

    Update pairs (and pre-existing batches) are flattened first, so the
    concatenation of the yielded batches replays the input stream exactly —
    batched execution therefore observes the same event order as per-event
    execution.  ``batch_size`` caps the rows per batch (``None`` leaves runs
    unbounded).
    """
    if batch_size is not None and batch_size < 1:
        raise EventError(f"batch_size must be >= 1, got {batch_size!r}")
    current: Optional[EventBatch] = None
    for event in flatten(events):
        if (
            current is not None
            and event.relation == current.relation
            and event.sign == current.sign
            and (batch_size is None or len(current.rows) < batch_size)
        ):
            current.rows.append(event.values)
            continue
        if current is not None:
            yield current
        current = EventBatch(event.relation, event.sign, [event.values])
    if current is not None:
        yield current
