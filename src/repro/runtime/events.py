"""The update-stream event model.

Per the paper's data model, a database is a set of relations each subject to
an arbitrary sequence of inserts, updates and deletes — *not* windowed
streams.  An update is represented as a delete of the old tuple followed by
an insert of the new one (the paper makes the same reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import EventError


@dataclass(frozen=True)
class StreamEvent:
    """A single-tuple insert (+1) or delete (-1) on a base relation."""

    relation: str
    sign: int
    values: tuple

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise EventError(f"event sign must be +1 or -1, got {self.sign!r}")

    @property
    def is_insert(self) -> bool:
        return self.sign == 1

    def __repr__(self) -> str:
        symbol = "+" if self.sign == 1 else "-"
        return f"{symbol}{self.relation}{self.values!r}"


def insert(relation: str, *values) -> StreamEvent:
    """An insert event."""
    return StreamEvent(relation, 1, tuple(values))


def delete(relation: str, *values) -> StreamEvent:
    """A delete event (of one previously inserted tuple)."""
    return StreamEvent(relation, -1, tuple(values))


def update(relation: str, old: Sequence, new: Sequence) -> tuple[StreamEvent, StreamEvent]:
    """An update, expressed as the paper's delete+insert pair."""
    return (
        StreamEvent(relation, -1, tuple(old)),
        StreamEvent(relation, 1, tuple(new)),
    )


def flatten(events: Iterable) -> Iterator[StreamEvent]:
    """Flatten a stream that may contain update pairs (tuples of events)."""
    for item in events:
        if isinstance(item, StreamEvent):
            yield item
        else:
            for sub in item:
                yield sub
