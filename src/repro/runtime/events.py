"""The update-stream event model.

Per the paper's data model, a database is a set of relations each subject to
an arbitrary sequence of inserts, updates and deletes — *not* windowed
streams.  An update is represented as a delete of the old tuple followed by
an insert of the new one (the paper makes the same reduction).

Besides single events, the runtime supports *batched* delivery: a stream is
grouped into :class:`EventBatch` runs of consecutive events sharing one
``(relation, sign)``, so the engine can dispatch each run with a single
trigger call (see :meth:`repro.runtime.engine.DeltaEngine.process_batch`).

A batch is stored *columnar* (struct-of-arrays): one parallel list per
event column, in stream order.  The generated batch triggers iterate the
column lists they actually read (skipping unused columns entirely) instead
of unpacking row tuples, and shard routing hashes one column list directly.
``EventBatch.rows`` materialises the row-tuple view for callers that want
it.  Batches can additionally be *shard-routed*: :func:`partition_columns`
(or the row-level :func:`partition_rows`) splits a batch by the hash of one
column, the unit of parallel delta processing (see
:class:`repro.runtime.engine.ShardedEngine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import EventError


@dataclass(frozen=True)
class StreamEvent:
    """A single-tuple insert (+1) or delete (-1) on a base relation."""

    relation: str
    sign: int
    values: tuple

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise EventError(f"event sign must be +1 or -1, got {self.sign!r}")

    @property
    def is_insert(self) -> bool:
        return self.sign == 1

    def __repr__(self) -> str:
        symbol = "+" if self.sign == 1 else "-"
        return f"{symbol}{self.relation}{self.values!r}"


def insert(relation: str, *values) -> StreamEvent:
    """An insert event."""
    return StreamEvent(relation, 1, tuple(values))


def delete(relation: str, *values) -> StreamEvent:
    """A delete event (of one previously inserted tuple)."""
    return StreamEvent(relation, -1, tuple(values))


def update(relation: str, old: Sequence, new: Sequence) -> tuple[StreamEvent, StreamEvent]:
    """An update, expressed as the paper's delete+insert pair."""
    return (
        StreamEvent(relation, -1, tuple(old)),
        StreamEvent(relation, 1, tuple(new)),
    )


def flatten(events: Iterable) -> Iterator[StreamEvent]:
    """Flatten a stream that may contain update pairs (tuples of events).

    :class:`EventBatch` items are iterable over their events, so batched
    streams flatten transparently as well.
    """
    for item in events:
        if isinstance(item, StreamEvent):
            yield item
        else:
            for sub in item:
                yield sub


def columns_from_rows(rows: Iterable[Sequence]) -> tuple[list, ...]:
    """Transpose row tuples into the columnar (struct-of-arrays) layout."""
    rows = rows if isinstance(rows, (list, tuple)) else list(rows)
    if not rows:
        return ()
    return tuple(map(list, zip(*rows)))


def rows_from_columns(columns: Sequence[Sequence]) -> list[tuple]:
    """Materialise the row-tuple view of a columnar batch."""
    if not columns:
        return []
    return list(zip(*columns))


class EventBatch:
    """A run of consecutive events sharing one ``(relation, sign)``.

    The canonical execution layout is *columnar*: ``columns[i]`` is the
    list of the ``i``-th event value across the batch, in stream order (a
    struct-of-arrays).  The batch executors iterate exactly the column
    lists they read, and shard routing hashes one column list directly.

    A batch holds whichever representation it was built with (row tuples
    from stream grouping, columns from a columnar producer) and
    materialises the other on first access, caching the transpose — so
    degenerate one-row runs dispatched through the per-event path never
    pay for a transpose at all.

    >>> batch = EventBatch("bids", 1, [(1, 10), (2, 20)])
    >>> batch.columns
    ([1, 2], [10, 20])
    >>> EventBatch.from_columns("bids", 1, ([1, 2], [10, 20])).rows
    [(1, 10), (2, 20)]
    >>> len(batch), batch.row(1)
    (2, (2, 20))
    """

    __slots__ = ("relation", "sign", "_rows", "_columns", "_length")

    def __init__(self, relation: str, sign: int, rows: Iterable[Sequence] = ()):
        if sign not in (1, -1):
            raise EventError(f"batch sign must be +1 or -1, got {sign!r}")
        self.relation = relation
        self.sign = sign
        rows = rows if isinstance(rows, list) else list(rows)
        self._rows: Optional[list] = rows
        self._columns: Optional[tuple[list, ...]] = None
        self._length = len(rows)

    @classmethod
    def from_columns(
        cls, relation: str, sign: int, columns: Sequence[Sequence]
    ) -> "EventBatch":
        """Adopt parallel column lists (all of one length) as a batch."""
        batch = cls(relation, sign)
        batch._rows = None
        batch._columns = tuple(columns)
        batch._length = len(batch._columns[0]) if batch._columns else 0
        if any(len(column) != batch._length for column in batch._columns):
            raise EventError(
                f"ragged columnar batch for {relation!r}: column lengths "
                f"{[len(column) for column in batch._columns]}"
            )
        return batch

    @property
    def columns(self) -> tuple[list, ...]:
        """The struct-of-arrays view (cached transpose)."""
        if self._columns is None:
            self._columns = columns_from_rows(self._rows)
        return self._columns

    @property
    def rows(self) -> list[tuple]:
        """The row-tuple view (cached transpose; do not mutate)."""
        if self._rows is None:
            self._rows = rows_from_columns(self._columns)
        return self._rows

    def row(self, index: int) -> tuple:
        """One row as a tuple, from whichever representation is present."""
        if self._rows is not None:
            return tuple(self._rows[index])
        return tuple(column[index] for column in self._columns)

    def __len__(self) -> int:
        return self._length

    def __eq__(self, other) -> bool:
        if not isinstance(other, EventBatch):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.sign == other.sign
            and self.rows == other.rows
        )

    def __iter__(self) -> Iterator[StreamEvent]:
        """The batch as its constituent events (keeps ``flatten`` uniform)."""
        for index in range(self._length):
            yield StreamEvent(self.relation, self.sign, self.row(index))

    def __repr__(self) -> str:
        symbol = "+" if self.sign == 1 else "-"
        return f"{symbol}{self.relation}[{self._length} rows]"


def partition_rows(
    rows: Iterable[Sequence], column: int, shards: int
) -> list[list[Sequence]]:
    """Hash-partition batch rows by one column into per-shard row lists.

    Row order is preserved within every shard, so each shard observes its
    sub-stream in stream order; rows assigned to different shards commute
    because a partitionable trigger only touches map keys carrying the
    row's own partition value (see :mod:`repro.compiler.partition`).
    """
    if shards < 1:
        raise EventError(f"shard count must be >= 1, got {shards!r}")
    buckets: list[list[Sequence]] = [[] for _ in range(shards)]
    if shards == 1:
        buckets[0].extend(rows)
        return buckets
    for row in rows:
        buckets[hash(row[column]) % shards].append(row)
    return buckets


def partition_columns(
    columns: Sequence[Sequence], column: int, shards: int
) -> list[tuple[list, ...]]:
    """Hash-partition a columnar batch by one column, staying columnar.

    The routing column is hashed directly from its own list (no row
    reconstruction) into per-shard position selectors; every column is
    then gathered per shard in one comprehension.  Stream order is
    preserved within each shard — the columnar equivalent of
    :func:`partition_rows`.
    """
    if shards < 1:
        raise EventError(f"shard count must be >= 1, got {shards!r}")
    if shards == 1:
        return [tuple(list(col) for col in columns)]
    selectors: list[list[int]] = [[] for _ in range(shards)]
    for position, value in enumerate(columns[column]):
        selectors[hash(value) % shards].append(position)
    return [
        tuple([col[i] for i in selector] for col in columns)
        for selector in selectors
    ]


def batches(events: Iterable, batch_size: Optional[int] = None) -> Iterator[EventBatch]:
    """Group a stream into consecutive same-``(relation, sign)`` batches.

    Update pairs (and pre-existing batches) are flattened first, so the
    concatenation of the yielded batches replays the input stream exactly —
    batched execution therefore observes the same event order as per-event
    execution.  Column lists are built directly (no intermediate row list).
    ``batch_size`` caps the rows per batch (``None`` leaves runs unbounded).

    >>> list(batches([insert("R", 1), insert("R", 2), delete("R", 1)]))
    [+R[2 rows], -R[1 rows]]
    >>> list(batches([*update("R", (1,), (2,))]))
    [-R[1 rows], +R[1 rows]]
    """
    if batch_size is not None and batch_size < 1:
        raise EventError(f"batch_size must be >= 1, got {batch_size!r}")
    # Rows accumulate as tuples and transpose once per batch boundary:
    # one append per event plus a single C-speed zip, rather than one
    # append per column per event.
    relation: Optional[str] = None
    sign = 0
    pending: list[tuple] = []
    for event in flatten(events):
        if (
            pending
            and event.relation == relation
            and event.sign == sign
            and (batch_size is None or len(pending) < batch_size)
        ):
            pending.append(event.values)
            continue
        if pending:
            yield EventBatch(relation, sign, pending)
        relation, sign, pending = event.relation, event.sign, [event.values]
    if pending:
        yield EventBatch(relation, sign, pending)
