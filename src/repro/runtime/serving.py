"""Reactive view-subscription serving: push deltas, don't poll maps.

The engine on its own is a library — callers push batches and poll
``results()``.  This module turns it into a *server*: clients subscribe
to named views (the program's standing queries) and receive incremental
Z-set deltas of the SQL-visible result rows as triggers fire, the
serving model of the higher-order delta-processing line of work (views
kept continuously fresh for many readers).  Three layers:

* :class:`ViewDeltaTap` — the per-view delta tap over the engine's flush
  path.  It registers as a batch listener
  (:meth:`~repro.runtime.engine.DeltaEngine.add_batch_listener`), and for
  every applied batch renders the affected views through
  :mod:`repro.runtime.views` and emits ``(lsn, view, [(row, weight)])``
  result deltas.  Subscribers therefore see *SQL result rows*, never raw
  slot maps; a view is only re-rendered when the batch's trigger writes
  one of its aggregate slot maps.  LSNs are monotonic (not necessarily
  dense); on a :class:`~repro.runtime.durability.DurableEngine` they are
  the WAL LSNs recovery replays, so a subscriber's position is
  meaningful across restarts.

* the **wire protocol** — length-prefixed JSON frames (4-byte big-endian
  length, UTF-8 JSON body).  Clients send ``subscribe`` /
  ``unsubscribe`` / ``publish`` / ``ping`` ops; the server answers with
  ``snapshot`` / ``delta`` / ``ack`` / ``pong`` / ``error`` frames.
  Catch-up is *snapshot-then-stream*: a subscriber first receives one
  ``snapshot`` frame (the view's current row multiset and its LSN),
  then every subsequent ``delta`` with a strictly greater LSN — a
  late-joining or lagging client is consistent by construction.
  A *resuming* subscriber (``subscribe`` with ``from_lsn``) skips the
  snapshot: the server replays the missed delta suffix — from its
  in-memory history ring, or from the WAL on a durable engine — and
  answers ``resumed`` followed by the replayed ``delta`` frames, or
  ``resume_gap`` when the suffix is no longer reachable (history
  evicted and WAL truncated), telling the client to fall back to a
  plain snapshot-then-stream subscribe.

* :class:`ViewServer` / :class:`SubscriberClient` — an asyncio server
  wrapping any engine (:class:`~repro.runtime.engine.DeltaEngine`,
  :class:`~repro.runtime.engine.ShardedEngine`,
  :class:`~repro.runtime.durability.DurableEngine`) with a subscription
  registry and per-client bounded send queues, and a small blocking
  client for tests, examples and the CLI.  Ingest (network ``publish``
  or in-process :meth:`ViewServer.publish`) is serialised, so every
  subscriber observes one consistent delta sequence.

Backpressure: each client has a bounded frame queue; what happens when a
slow client fills it is the server's ``backpressure`` policy:

* ``"block"`` — ingest waits for the queue to drain: no client ever
  misses a delta, but one stalled reader stalls the source (classic
  flow control; the default);
* ``"drop"`` — the slow client is disconnected and its subscriptions
  discarded: the source never stalls, readers must resubscribe (and
  re-snapshot) after falling behind;
* ``"coalesce"`` — the client's queued deltas are merged per view
  (weights summed row-wise, LSN advanced to the newest): the client
  skips intermediate states but still converges on the live result —
  correct because Z-set deltas compose additively.

Run ``python -m repro.tools.cli serve ...`` for the standalone server;
``benchmarks/bench_serving.py`` measures sustained events/sec against
subscriber fan-out and p99 delivery latency.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import random
import socket
import struct
import threading
import time
import weakref
from collections import Counter, deque
from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import EventError, ResumeGapError, ServingError
from repro.runtime.views import result_delta

_log = logging.getLogger("repro.serving")

#: Frame length prefix: one unsigned 32-bit big-endian length.
_LENGTH = struct.Struct(">I")

#: Frames larger than this are rejected as protocol corruption rather
#: than allocated (a torn length prefix can claim gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Accepted backpressure policies (see the module docstring).
BACKPRESSURE_POLICIES = ("block", "drop", "coalesce")

#: Default bound of a subscriber's send queue, in frames.
DEFAULT_QUEUE_FRAMES = 256

#: Default per-view delta-history ring bound (frames) for
#: resume-from-LSN; see :class:`ViewServer`.
DEFAULT_HISTORY_FRAMES = 1024

_CLOSE = object()  # writer-task poison pill

#: Serving sockets a forked child must not inherit.  Shard workers are
#: forked while the server runs (the supervisor respawns them mid-
#: stream), and a fork copies the whole fd table — a child holding a
#: duplicate of the listen socket keeps the port bound after the server
#: stops (restart-in-place then fails EADDRINUSE), and a duplicate of a
#: connection fd keeps that connection half-alive after the real owner
#: closes it (disconnects go unnoticed).  Every serving socket is
#: registered here and closed again *in the child* right after fork;
#: the parent's fds are untouched.
_fork_isolated_sockets: "weakref.WeakSet" = weakref.WeakSet()


def _isolate_from_forks(sock) -> None:
    """Register one socket for close-after-fork in child processes.

    asyncio hands out non-weakrefable ``TransportSocket`` wrappers;
    unwrap to the underlying ``socket.socket`` so the registry can hold
    it weakly (closed sockets age out with their owners).
    """
    raw = getattr(sock, "_sock", sock)
    try:
        _fork_isolated_sockets.add(raw)
    except TypeError:  # pragma: no cover - unexpected socket flavor
        pass


def _close_sockets_after_fork() -> None:
    for sock in list(_fork_isolated_sockets):
        try:
            sock.close()
        except OSError:
            pass


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_close_sockets_after_fork)


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------


def encode_frame(message: Mapping) -> bytes:
    """One wire frame: 4-byte big-endian length + compact UTF-8 JSON."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServingError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "protocol limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> dict:
    """Inverse of :func:`encode_frame` for one frame body."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServingError(f"undecodable protocol frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ServingError(
            f"protocol frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def _frame_length(prefix: bytes) -> int:
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ServingError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte "
            "protocol limit"
        )
    return length


def _tuple_rows(rows: Iterable[Sequence]) -> list[tuple]:
    """JSON arrays back to the engine's row tuples."""
    return [tuple(row) for row in rows]


def _tuple_changes(changes: Iterable[Sequence]) -> list[tuple[tuple, int]]:
    """JSON ``[[row, weight], ...]`` back to ``[(row, weight), ...]``."""
    return [(tuple(row), weight) for row, weight in changes]


def apply_changes(rows: Counter, changes: Iterable[tuple[tuple, int]]) -> Counter:
    """Fold one delta into an accumulated row multiset, in place.

    ``snapshot ⊎ delta₁ ⊎ delta₂ ⊎ ...`` reproduces the live result —
    the subscriber-side half of the serving contract (zero-weight rows
    are evicted, so the counter holds exactly the live multiset).
    """
    for row, weight in changes:
        total = rows.get(row, 0) + weight
        if total == 0:
            rows.pop(row, None)
        else:
            rows[row] = total
    return rows


# ---------------------------------------------------------------------------
# The flush-path delta tap
# ---------------------------------------------------------------------------


class ViewDeltaTap:
    """Renders per-batch result deltas for the program's views.

    Attach via the engine's flush-path listener::

        tap = ViewDeltaTap(engine)
        engine.add_batch_listener(tap.on_batch)   # or let ViewServer do it

    After every applied batch :meth:`on_batch` re-renders the views whose
    aggregate slot maps that batch's trigger writes (computed once from
    the compiled program — unrelated views are never touched) and diffs
    the rendered rows against the cached previous rendering.  The diff
    runs over *SQL-visible result rows* — bounded by the view's output,
    never the engine's internal maps, whose entry counts are typically
    orders of magnitude larger.

    ``views`` restricts serving to a subset of the program's queries
    (default: all of them).
    """

    def __init__(self, engine, views: Optional[Iterable[str]] = None) -> None:
        program = engine.program
        known = [query.name for query in program.queries]
        if views is None:
            selected = list(known)
        else:
            selected = list(views)
            unknown = sorted(set(selected) - set(known))
            if unknown:
                raise ServingError(
                    f"unknown views {unknown}; this program serves: "
                    + ", ".join(known)
                )
        self.engine = engine
        self.views = selected
        #: which served views each (relation, sign) trigger can change:
        #: exactly those whose slot maps the trigger's statements write.
        self._affected: dict[tuple[str, int], tuple[str, ...]] = {}
        for (relation, sign), trigger in program.triggers.items():
            written = {statement.target for statement in trigger.statements}
            self._affected[(relation, sign)] = tuple(
                view
                for view in selected
                if written.intersection(program.slot_maps[view])
            )
        self._results: dict[str, Counter] = {
            view: Counter(engine.results(view)) for view in selected
        }
        #: LSN of the last observed batch — seeded from the engine's LSN
        #: clock (the WAL tip on a durable engine), so a tap over an
        #: already-running or recovered engine starts at its true
        #: position instead of 0.
        clock = getattr(engine, "lsn_source", None)
        self.lsn = (
            clock() if clock is not None else getattr(engine, "_tap_clock", 0)
        )

    def snapshot(self, view: str) -> tuple[int, list[tuple[tuple, int]]]:
        """The view's current row multiset and its LSN (the catch-up
        frame a new subscriber starts from)."""
        if view not in self._results:
            raise ServingError(
                f"unknown view {view!r}; this tap serves: "
                + ", ".join(self.views)
            )
        rows = sorted(self._results[view].items(), key=repr)
        return self.lsn, rows

    def on_batch(self, lsn: int, batch) -> dict[str, list[tuple[tuple, int]]]:
        """The flush-path listener: result deltas of one applied batch.

        Returns ``{view: [(row, weight), ...]}`` for the views the batch
        actually changed (often empty — e.g. a batch that only shifts
        internal join state without moving any rendered aggregate).
        """
        self.lsn = lsn
        deltas: dict[str, list[tuple[tuple, int]]] = {}
        for view in self._affected.get((batch.relation, batch.sign), ()):
            current = Counter(self.engine.results(view))
            changes = result_delta(self._results[view], current)
            if changes:
                self._results[view] = current
                deltas[view] = changes
        return deltas


# ---------------------------------------------------------------------------
# The asyncio server
# ---------------------------------------------------------------------------


class _ClientState:
    """Server-side state of one connected client."""

    __slots__ = (
        "writer",
        "queue",
        "views",
        "name",
        "dropped",
        "writer_task",
        "last_active",
    )

    def __init__(self, writer, queue_frames: int, name: str) -> None:
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_frames)
        self.views: set[str] = set()
        self.name = name
        self.dropped = False
        self.writer_task: Optional[asyncio.Task] = None
        #: Monotonic stamp of the client's last observed progress: any
        #: received op, or its writer draining a frame onto the socket.
        self.last_active = time.monotonic()


class ViewServer:
    """The reactive view-subscription server.

    Wraps one engine; accepts framed-protocol clients; fans every
    applied batch's result deltas out to the view's subscribers.  Usage
    (inside an event loop)::

        server = ViewServer(engine, port=0)
        await server.start()
        ...                        # server.port holds the bound port
        await server.stop()

    Ingest is serialised through one lock: network ``publish`` ops and
    in-process :meth:`publish` / :meth:`publish_stream` apply batches in
    arrival order, and each batch's deltas are fanned out before the
    next batch applies, so all subscribers observe the same LSN-stamped
    delta sequence.  Subscriptions snapshot under the same lock —
    snapshot-then-stream catch-up can neither miss nor duplicate a
    delta.

    ``backpressure`` picks the slow-client policy (``"block"`` /
    ``"drop"`` / ``"coalesce"``, see the module docstring);
    ``queue_frames`` bounds each client's send queue.

    ``history_frames`` bounds the per-view delta history ring backing
    resume-from-LSN: a resume older than the ring falls through to the
    WAL on a durable engine, and to ``resume_gap`` otherwise (``0``
    disables in-memory resume entirely).  ``idle_timeout`` (seconds,
    default off) evicts subscribers that neither send an op nor accept
    a frame within the window — a final best-effort ``timeout`` frame
    is written straight to the socket, so one stalled reader cannot pin
    ingest forever under ``block`` backpressure.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        views: Optional[Iterable[str]] = None,
        backpressure: str = "block",
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
        history_frames: int = DEFAULT_HISTORY_FRAMES,
        idle_timeout: Optional[float] = None,
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ServingError(
                f"unknown backpressure policy {backpressure!r}; choose from "
                + ", ".join(BACKPRESSURE_POLICIES)
            )
        if queue_frames < 2:
            raise ServingError(
                f"queue_frames must be >= 2, got {queue_frames!r}"
            )
        if history_frames < 0:
            raise ServingError(
                f"history_frames must be >= 0, got {history_frames!r}"
            )
        if idle_timeout is not None and idle_timeout <= 0:
            raise ServingError(
                f"idle_timeout must be positive (or None), got {idle_timeout!r}"
            )
        self.engine = engine
        self.host = host
        self.port = port
        self.backpressure = backpressure
        self.queue_frames = queue_frames
        self.history_frames = history_frames
        self.idle_timeout = idle_timeout
        self.tap = ViewDeltaTap(engine, views)
        self._server: Optional[asyncio.AbstractServer] = None
        self._ingest_lock = asyncio.Lock()
        self._staged: list[tuple[int, dict]] = []
        self._subscribers: dict[str, set[_ClientState]] = {
            view: set() for view in self.tap.views
        }
        #: Per-view ring of recent delta frames, and the LSN *floor* of
        #: each ring: every delta with ``lsn > floor`` is retained, so a
        #: resume from any ``from_lsn >= floor`` replays from memory.
        self._history: dict[str, deque] = {
            view: deque(maxlen=history_frames) for view in self.tap.views
        }
        self._history_floor: dict[str, int] = {
            view: self.tap.lsn for view in self.tap.views
        }
        self._clients: set[_ClientState] = set()
        self._client_counter = 0
        self._monitor_task: Optional[asyncio.Task] = None
        self.clients_dropped = 0
        self.clients_timed_out = 0
        self.deltas_sent = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and register the engine tap."""
        if self._server is not None:
            raise ServingError("server already started")
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        # Register the tap only once the bind has succeeded, so a failed
        # start (port already in use) leaves no listener on the engine.
        self.engine.add_batch_listener(self._on_batch)
        for sock in self._server.sockets:
            _isolate_from_forks(sock)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.idle_timeout is not None:
            self._monitor_task = asyncio.ensure_future(self._idle_monitor())

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener and every client connection (idempotent)."""
        if self._server is None:
            return
        self.engine.remove_batch_listener(self._on_batch)
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            await asyncio.gather(self._monitor_task, return_exceptions=True)
            self._monitor_task = None
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        clients = list(self._clients)
        for client in clients:
            self._disconnect(client)
        # ``_disconnect`` only *schedules* the transport teardown; wait
        # for the sockets to genuinely close before returning, so the
        # port is immediately rebindable (restart-in-place) and no fds
        # leak into a stopped event loop.
        tasks = [c.writer_task for c in clients if c.writer_task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for client in clients:
            transport = client.writer.transport
            if transport is not None:
                transport.abort()
            try:
                await asyncio.wait_for(client.writer.wait_closed(), timeout=1.0)
            except (asyncio.TimeoutError, OSError):
                pass
        self._clients.clear()
        for waiters in self._subscribers.values():
            waiters.clear()

    # -- ingest -------------------------------------------------------------

    def _on_batch(self, lsn: int, batch) -> None:
        # Runs synchronously inside the engine's flush path; the ingest
        # coroutine fans the staged deltas out (with backpressure awaits)
        # once the engine call returns.
        deltas = self.tap.on_batch(lsn, batch)
        if deltas:
            self._staged.append((lsn, deltas))

    async def publish(
        self, relation: str, sign: int, rows: Sequence[Sequence]
    ) -> tuple[int, int]:
        """Apply one batch and fan out its deltas.

        Returns ``(count, lsn)``: rows that reached a trigger, and the
        tap's LSN after the batch (unchanged when the batch was skipped).
        """
        async with self._ingest_lock:
            count = self.engine.process_batch(relation, sign, list(rows))
            await self._flush_staged()
            return count, self.tap.lsn

    async def publish_stream(self, events, batch_size: Optional[int] = None) -> int:
        """Apply a whole event stream through the serving ingest path.

        Events are grouped into same-``(relation, sign)`` batches (like
        :meth:`~repro.runtime.engine.DeltaEngine.process_stream`), with
        fan-out after every batch.  Returns events consumed.
        """
        from repro.runtime.engine import DEFAULT_BATCH_SIZE
        from repro.runtime.events import batches

        size = DEFAULT_BATCH_SIZE if batch_size is None else batch_size
        count = 0
        for batch in batches(events, size):
            # Through the public entry point so a DurableEngine wrapper
            # still logs the batch before applying it.
            async with self._ingest_lock:
                self.engine.process_batch(batch.relation, batch.sign, batch.rows)
                await self._flush_staged()
            count += len(batch)
        return count

    async def _flush_staged(self) -> None:
        """Fan staged deltas out to subscribers, in LSN order."""
        staged, self._staged = self._staged, []
        for lsn, deltas in staged:
            ts = time.time()
            for view, changes in deltas.items():
                frame = {
                    "type": "delta",
                    "view": view,
                    "lsn": lsn,
                    "ts": ts,
                    "changes": [[list(row), weight] for row, weight in changes],
                }
                self._remember(view, frame)
                for client in list(self._subscribers.get(view, ())):
                    await self._deliver(client, frame)
                    self.deltas_sent += 1

    def _remember(self, view: str, frame: dict) -> None:
        """Retain one delta frame in the view's resume history ring,
        advancing the floor past whatever eviction discards."""
        history = self._history[view]
        if history.maxlen == 0:
            self._history_floor[view] = frame["lsn"]
            return
        if len(history) == history.maxlen:
            self._history_floor[view] = history[0]["lsn"]
        history.append(frame)

    # -- delivery / backpressure -------------------------------------------

    async def _deliver(self, client: _ClientState, frame: dict) -> bool:
        """Enqueue one frame under the server's backpressure policy."""
        if client.dropped:
            return False
        if self.backpressure == "block":
            # Wait in slices rather than a bare put() so an eviction
            # (idle timeout, disconnect) unpins the blocked ingest path
            # promptly instead of waiting on a queue nothing drains.
            while not client.dropped:
                try:
                    await asyncio.wait_for(client.queue.put(frame), timeout=0.1)
                    return True
                except asyncio.TimeoutError:
                    continue
            return False
        try:
            client.queue.put_nowait(frame)
            return True
        except asyncio.QueueFull:
            pass
        if self.backpressure == "drop":
            self.clients_dropped += 1
            self._disconnect(client)
            return False
        self._coalesce(client, frame)
        return True

    def _coalesce(self, client: _ClientState, frame: dict) -> None:
        """Merge the client's queued deltas per view to make room.

        Weights sum row-wise and the LSN advances to the newest, so the
        merged frame moves the subscriber straight to the latest state —
        Z-set deltas compose additively, intermediate states are simply
        skipped.  ``ts`` keeps the *oldest* pending stamp, so measured
        delivery latency still reflects how long the client lagged.
        Non-delta frames (snapshots, acks, pongs) are preserved in order
        ahead of the merged deltas.
        """
        pending: list[dict] = []
        while True:
            try:
                pending.append(client.queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        pending.append(frame)
        passthrough: list[dict] = []
        merged: dict[str, dict] = {}
        for item in pending:
            if not isinstance(item, dict) or item.get("type") != "delta":
                passthrough.append(item)
                continue
            view = item["view"]
            slot = merged.get(view)
            if slot is None:
                merged[view] = {
                    "rows": Counter(
                        {tuple(row): weight for row, weight in item["changes"]}
                    ),
                    "lsn": item["lsn"],
                    "ts": item["ts"],
                }
                continue
            apply_changes(
                slot["rows"], _tuple_changes(item["changes"])
            )
            slot["lsn"] = max(slot["lsn"], item["lsn"])
            slot["ts"] = min(slot["ts"], item["ts"])
        for item in passthrough:
            client.queue.put_nowait(item)
        for view, slot in merged.items():
            changes = sorted(slot["rows"].items(), key=repr)
            if not changes:
                continue  # deltas cancelled out entirely
            client.queue.put_nowait(
                {
                    "type": "delta",
                    "view": view,
                    "lsn": slot["lsn"],
                    "ts": slot["ts"],
                    "coalesced": True,
                    "changes": [[list(row), weight] for row, weight in changes],
                }
            )

    def _disconnect(self, client: _ClientState) -> None:
        """Drop one client: unregister, stop its writer, close the socket."""
        if client.dropped:
            return
        client.dropped = True
        for view in client.views:
            self._subscribers.get(view, set()).discard(client)
        self._clients.discard(client)
        if client.writer_task is not None:
            client.writer_task.cancel()
        try:
            client.writer.close()
        except Exception:
            pass

    # -- connection handling ------------------------------------------------

    async def _idle_monitor(self) -> None:
        """Evict subscribers that made no progress within ``idle_timeout``.

        Progress is either direction: an op received, or the writer
        draining a frame onto the socket.  The evicted client gets one
        best-effort ``timeout`` frame written straight to the transport
        (its queue may be full — that is exactly why it is evicted).
        """
        interval = min(1.0, self.idle_timeout / 4)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for client in list(self._clients):
                if client.dropped or now - client.last_active <= self.idle_timeout:
                    continue
                self.clients_timed_out += 1
                _log.warning(
                    "evicting %s: no read or ping within %gs",
                    client.name,
                    self.idle_timeout,
                )
                try:
                    client.writer.write(
                        encode_frame(
                            {
                                "type": "timeout",
                                "message": (
                                    "evicted: no read or ping within "
                                    f"{self.idle_timeout:g}s"
                                ),
                                "lsn": self.tap.lsn,
                            }
                        )
                    )
                except Exception:
                    pass
                self._disconnect(client)

    async def _writer_loop(self, client: _ClientState) -> None:
        writer = client.writer
        try:
            while True:
                frame = await client.queue.get()
                if frame is _CLOSE:
                    break
                writer.write(encode_frame(frame))
                await writer.drain()
                client.last_active = time.monotonic()
        except (OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_client(self, reader, writer) -> None:
        # Mark accepted sockets SO_REUSEADDR so a lingering half-closed
        # connection (e.g. a stalled reader that never FINs back) cannot
        # hold the listen port against a restart-in-place rebind; keep
        # them out of forked shard workers for the same reason.
        sock = writer.get_extra_info("socket")
        if sock is not None:
            _isolate_from_forks(sock)
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            except OSError:
                pass
        self._client_counter += 1
        client = _ClientState(
            writer, self.queue_frames, f"client-{self._client_counter}"
        )
        client.writer_task = asyncio.ensure_future(self._writer_loop(client))
        self._clients.add(client)
        try:
            while not client.dropped:
                prefix = await reader.readexactly(_LENGTH.size)
                body = await reader.readexactly(_frame_length(prefix))
                client.last_active = time.monotonic()
                await self._dispatch(client, decode_frame(body))
        except asyncio.IncompleteReadError as exc:
            # A clean close lands here with no partial bytes; a client
            # dying mid-frame leaves a torn length prefix or body.  Both
            # are reaped quietly — never propagated to the ingest path.
            if exc.partial:
                _log.warning(
                    "%s disconnected mid-frame (%d bytes of a torn frame "
                    "discarded)",
                    client.name,
                    len(exc.partial),
                )
        except OSError as exc:
            _log.info("%s connection lost: %s", client.name, exc)
        except ServingError as exc:
            # Malformed framing (oversized length prefix, undecodable
            # body): tell the client directly — its queue may be full —
            # then reap it.
            _log.warning("%s sent a malformed frame: %s", client.name, exc)
            try:
                writer.write(encode_frame({"type": "error", "message": str(exc)}))
            except Exception:
                pass
        finally:
            if not client.dropped:
                for view in client.views:
                    self._subscribers.get(view, set()).discard(client)
                self._clients.discard(client)
                try:
                    client.queue.put_nowait(_CLOSE)
                except asyncio.QueueFull:
                    client.writer_task.cancel()
                await asyncio.gather(client.writer_task, return_exceptions=True)

    async def _dispatch(self, client: _ClientState, message: dict) -> None:
        op = message.get("op")
        if op == "subscribe":
            await self._op_subscribe(client, message)
        elif op == "unsubscribe":
            view = message.get("view")
            client.views.discard(view)
            self._subscribers.get(view, set()).discard(client)
            await self._deliver(
                client,
                {"type": "unsubscribed", "view": view, "lsn": self.tap.lsn},
            )
        elif op == "publish":
            await self._op_publish(client, message)
        elif op == "ping":
            await self._deliver(client, {"type": "pong", "lsn": self.tap.lsn})
        else:
            await self._deliver(
                client,
                {"type": "error", "message": f"unknown protocol op {op!r}"},
            )

    async def _op_subscribe(self, client: _ClientState, message: dict) -> None:
        view = message.get("view")
        from_lsn = message.get("from_lsn")
        if from_lsn is not None and not isinstance(from_lsn, int):
            await self._deliver(
                client,
                {
                    "type": "error",
                    "message": f"from_lsn must be an integer, got {from_lsn!r}",
                },
            )
            return
        # Snapshot (or resume replay) and registration are atomic with
        # respect to ingest, so the subscriber's stream is exactly
        # "catch-up at LSN, then every delta with a greater LSN".
        async with self._ingest_lock:
            try:
                if from_lsn is None:
                    lsn, rows = self.tap.snapshot(view)
                else:
                    frames = self._resume_frames(view, from_lsn)
            except ServingError as exc:
                await self._deliver(
                    client, {"type": "error", "message": str(exc)}
                )
                return
            if from_lsn is not None:
                if frames is None:
                    # The suffix past from_lsn is unreachable (history
                    # evicted, WAL truncated or absent): the client must
                    # fall back to snapshot-then-stream.
                    await self._deliver(
                        client,
                        {
                            "type": "resume_gap",
                            "view": view,
                            "requested_lsn": from_lsn,
                            "lsn": self.tap.lsn,
                        },
                    )
                    return
                client.views.add(view)
                self._subscribers[view].add(client)
                await self._deliver(
                    client,
                    {
                        "type": "resumed",
                        "view": view,
                        "lsn": self.tap.lsn,
                        "from_lsn": from_lsn,
                        "replayed": len(frames),
                    },
                )
                for frame in frames:
                    await self._deliver(client, frame)
                    self.deltas_sent += 1
                return
            client.views.add(view)
            self._subscribers[view].add(client)
            await self._deliver(
                client,
                {
                    "type": "snapshot",
                    "view": view,
                    "lsn": lsn,
                    "rows": [[list(row), weight] for row, weight in rows],
                },
            )

    # -- resume-from-LSN ----------------------------------------------------

    def _resume_frames(
        self, view: str, from_lsn: int
    ) -> Optional[list[dict]]:
        """The delta frames for ``view`` past ``from_lsn``, or ``None``
        when that suffix is unreachable (the ``resume_gap`` answer).

        Served from the in-memory history ring when ``from_lsn`` is at
        or above the ring's floor, else rebuilt from the WAL on a
        durable engine (snapshot + suffix shadow replay).
        """
        if view not in self._history:
            raise ServingError(
                f"unknown view {view!r}; this server serves: "
                + ", ".join(self.tap.views)
            )
        if from_lsn > self.tap.lsn:
            # A position from this server's future: its state was lost
            # (non-durable restart) — the client must re-snapshot.
            return None
        if from_lsn >= self._history_floor[view]:
            return [
                frame
                for frame in self._history[view]
                if frame["lsn"] > from_lsn
            ]
        return self._wal_resume_frames(view, from_lsn)

    def _wal_resume_frames(
        self, view: str, from_lsn: int
    ) -> Optional[list[dict]]:
        """Rebuild the delta suffix past ``from_lsn`` from durable state.

        Loads the newest snapshot at or below ``from_lsn`` into a
        *shadow* engine, replays the WAL suffix through it, and taps the
        replay from the ``from_lsn`` boundary onward — the same
        LSN-stamped deltas the live tap emitted, recomputed from disk.
        Returns ``None`` when the engine is not durable or the WAL no
        longer reaches back to ``from_lsn``.
        """
        from repro.runtime.durability import DurableEngine, WriteAheadLog
        from repro.runtime.engine import DeltaEngine
        from repro.runtime.events import EventBatch

        engine = self.engine
        if not isinstance(engine, DurableEngine):
            return None
        engine._wal.sync()
        snapshot = engine._snapshots.load_latest(max_lsn=from_lsn)
        watermark = 0
        # Any engine flavour replays to the same results; a plain
        # non-strict DeltaEngine is the cheapest shadow.
        shadow = DeltaEngine(engine.program, strict=False)
        if snapshot is not None:
            shadow.restore_state(
                snapshot["maps"],
                events_processed=snapshot.get("events_processed", 0),
                events_skipped=snapshot.get("events_skipped", 0),
                stream_started=snapshot.get("stream_started"),
            )
            watermark = snapshot["lsn"]
        tap: Optional[ViewDeltaTap] = None
        frames: list[dict] = []
        ts = time.time()
        try:
            for lsn, relation, sign, columns in WriteAheadLog.replay(
                engine.directory, after_lsn=watermark
            ):
                if tap is None and lsn > from_lsn:
                    # Construct the tap at the resume boundary so its
                    # cached baseline is the state as of from_lsn.
                    tap = ViewDeltaTap(shadow, [view])
                batch = EventBatch.from_columns(relation, sign, columns)
                shadow._process_batch(batch)
                if tap is not None:
                    changes = tap.on_batch(lsn, batch).get(view)
                    if changes:
                        frames.append(
                            {
                                "type": "delta",
                                "view": view,
                                "lsn": lsn,
                                "ts": ts,
                                "replayed": True,
                                "changes": [
                                    [list(row), weight]
                                    for row, weight in changes
                                ],
                            }
                        )
        except ResumeGapError:
            return None
        return frames

    async def _op_publish(self, client: _ClientState, message: dict) -> None:
        try:
            relation = message["relation"]
            sign = message.get("sign", 1)
            rows = _tuple_rows(message["rows"])
        except (KeyError, TypeError) as exc:
            await self._deliver(
                client,
                {"type": "error", "message": f"malformed publish frame: {exc}"},
            )
            return
        try:
            count, lsn = await self.publish(relation, sign, rows)
        except EventError as exc:
            await self._deliver(client, {"type": "error", "message": str(exc)})
            return
        await self._deliver(
            client, {"type": "ack", "lsn": lsn, "count": count}
        )


# ---------------------------------------------------------------------------
# Thread-hosted server (for synchronous callers: tests, benchmarks, CLI)
# ---------------------------------------------------------------------------


class ServerThread:
    """Runs a :class:`ViewServer` on a private event loop in a daemon
    thread, for synchronous callers::

        with ServerThread(engine) as handle:
            client = SubscriberClient(handle.host, handle.port)
            ...

    The engine must not be used from other threads while the server is
    running — all processing goes through the server's serialised ingest
    (network ``publish`` frames or :meth:`publish` /
    :meth:`publish_stream`, which hop onto the loop thread).
    """

    def __init__(self, engine, **server_kwargs) -> None:
        self.server = ViewServer(engine, **server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise ServingError("server thread already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list[BaseException] = []

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:  # surfaced to start() below
                failure.append(exc)
                started.set()
                return
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=_run, name="repro-view-server", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            # Leave the instance inert (as if never started): stop()
            # stays a no-op and start() may be retried — e.g. rebinding
            # a just-released port during a restart-in-place.
            self._thread.join()
            self._loop.close()
            self._loop = None
            self._thread = None
            raise failure[0]
        return self

    def publish(self, relation: str, sign: int, rows) -> tuple[int, int]:
        """In-process ingest: apply one batch on the loop thread."""
        return self._call(self.server.publish(relation, sign, list(rows)))

    def publish_stream(self, events, batch_size: Optional[int] = None) -> int:
        """In-process ingest of a whole stream (grouped into batches)."""
        return self._call(
            self.server.publish_stream(list(events), batch_size=batch_size)
        )

    def _call(self, coroutine):
        if self._loop is None:
            raise ServingError("server thread is not running")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    def stop(self) -> None:
        if self._loop is None:
            return
        self._call(self.server.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# The blocking subscriber client
# ---------------------------------------------------------------------------


class SubscriberClient:
    """A small blocking client of the framed subscription protocol.

    Intended for tests, examples and benchmark drivers (a production
    reader would speak the protocol asynchronously)::

        client = SubscriberClient(host, port)
        snapshot = client.subscribe("q")
        rows = rows_from_snapshot(snapshot)        # Counter of row tuples
        while ...:
            message = client.recv()
            if message["type"] == "delta":
                apply_changes(rows, message["changes"])

    Frames arrive strictly in server order; :meth:`publish`,
    :meth:`subscribe`, :meth:`ping` and :meth:`unsubscribe` wait for
    their reply frame while buffering any interleaved deltas, which
    later :meth:`recv` calls return first-in-first-out.  Server
    ``error`` frames raise :class:`~repro.errors.ServingError`.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        # A forked shard worker must not inherit this connection: its
        # duplicate fd would keep the connection open after close(), so
        # the server would never see the disconnect.
        _isolate_from_forks(self._sock)
        self._pending: deque[dict] = deque()
        self._closed = False

    # -- framing ------------------------------------------------------------

    def _send(self, message: Mapping) -> None:
        if self._closed:
            raise ServingError("client is closed")
        self._sock.sendall(encode_frame(message))

    def _read_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ServingError("server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _recv_frame(self) -> dict:
        length = _frame_length(self._read_exactly(_LENGTH.size))
        message = decode_frame(self._read_exactly(length))
        if message.get("type") == "delta":
            message["changes"] = _tuple_changes(message["changes"])
        elif message.get("type") == "snapshot":
            message["rows"] = _tuple_changes(message["rows"])
        return message

    # -- requests -----------------------------------------------------------

    def recv(self) -> dict:
        """The next server frame (buffered frames first), rows tupled."""
        if self._pending:
            return self._pending.popleft()
        return self._recv_frame()

    def _wait_for(self, frame_type, view: Optional[str] = None) -> dict:
        types = (
            (frame_type,) if isinstance(frame_type, str) else tuple(frame_type)
        )
        while True:
            message = self._recv_frame()
            if message.get("type") == "error":
                raise ServingError(message.get("message", "server error"))
            if message.get("type") == "timeout":
                raise ServingError(
                    message.get("message", "evicted by server idle timeout")
                )
            if message.get("type") in types and (
                view is None or message.get("view") == view
            ):
                return message
            self._pending.append(message)

    def subscribe(self, view: str, from_lsn: Optional[int] = None) -> dict:
        """Subscribe; returns the catch-up frame.

        A plain subscribe returns the ``snapshot`` frame.  With
        ``from_lsn``, the server resumes the delta stream past that LSN
        instead of re-snapshotting: the return is either the ``resumed``
        header (the replayed deltas follow as ordinary ``delta``
        frames), or the ``resume_gap`` frame when the server can no
        longer reach that suffix — the caller then falls back to a
        plain subscribe.
        """
        if from_lsn is None:
            self._send({"op": "subscribe", "view": view})
            return self._wait_for("snapshot", view)
        self._send({"op": "subscribe", "view": view, "from_lsn": from_lsn})
        return self._wait_for(("resumed", "resume_gap"), view)

    def unsubscribe(self, view: str) -> dict:
        self._send({"op": "unsubscribe", "view": view})
        return self._wait_for("unsubscribed", view)

    def publish(self, relation: str, sign: int, rows: Iterable[Sequence]) -> dict:
        """Push one batch; returns the ``ack`` frame (``lsn``, ``count``)."""
        self._send(
            {
                "op": "publish",
                "relation": relation,
                "sign": sign,
                "rows": [list(row) for row in rows],
            }
        )
        return self._wait_for("ack")

    def ping(self) -> int:
        """Round-trip barrier; returns the server's current LSN.

        Because all frames to this client flow through one ordered
        queue, the returned pong also guarantees every delta fanned out
        before it has been delivered.
        """
        self._send({"op": "ping"})
        return self._wait_for("pong")["lsn"]

    def drain_deltas(self, view: str, until_lsn: int) -> list[dict]:
        """Receive until a frame for ``view`` reaches ``until_lsn``.

        Returns the delta frames for ``view`` (other views' frames stay
        buffered).  A ping barrier makes ``until_lsn`` reachable even
        when the final batch changed nothing for this view.
        """
        deltas: list[dict] = []
        barrier = self.ping()
        if barrier < until_lsn:
            raise ServingError(
                f"server LSN {barrier} has not reached {until_lsn}"
            )
        while self._pending:
            message = self._pending.popleft()
            if message.get("type") == "delta" and message.get("view") == view:
                deltas.append(message)
        return deltas

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "SubscriberClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def rows_from_snapshot(snapshot: Mapping) -> Counter:
    """The row multiset a ``snapshot`` frame carries, as a Counter."""
    return Counter({row: weight for row, weight in snapshot["rows"]})


# ---------------------------------------------------------------------------
# The self-healing subscriber
# ---------------------------------------------------------------------------


class ReconnectingSubscriber:
    """A :class:`SubscriberClient` wrapper that survives its server.

    The client half of the fault-tolerance contract, for one view:

    * **auto-reconnect** — a lost connection (server restart, network
      fault, idle eviction) is retried with exponential backoff plus
      jitter, up to ``max_reconnects`` *consecutive* failures (the
      budget resets on every successful connect);
    * **resume-from-LSN** — reconnects subscribe with
      ``from_lsn=<last delivered LSN>``, so the server replays exactly
      the missed suffix instead of re-snapshotting;
    * **idempotent delivery** — delta frames at or below the last
      delivered LSN (duplicates straddling a crash) are discarded, so a
      flapping server yields the same recorded delta sequence as a
      stable one;
    * **gap fallback** — on ``resume_gap`` the subscriber re-snapshots
      and records one synthetic bridging delta (marked
      ``"synthesized": True``; omitted when nothing was actually
      missed), keeping :attr:`rows` correct even past a truncated WAL.

    :attr:`rows` is the live row multiset, :attr:`deltas` the
    deduplicated delta log; :meth:`pump_until` drives the receive loop
    (reconnecting through failures) until the server's LSN reaches a
    target and every delta up to it is recorded.
    """

    def __init__(
        self,
        host: str,
        port: int,
        view: str,
        max_reconnects: int = 8,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.5,
        timeout: float = 30.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if max_reconnects < 1:
            raise ServingError(
                f"max_reconnects must be >= 1, got {max_reconnects!r}"
            )
        self.host = host
        self.port = port
        self.view = view
        self.max_reconnects = max_reconnects
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.timeout = timeout
        self._rng = rng if rng is not None else random.Random()
        self.rows: Counter = Counter()
        self.deltas: list[dict] = []
        self.last_lsn: Optional[int] = None
        self.reconnects = 0
        self.resume_gaps = 0
        self._client: Optional[SubscriberClient] = None
        self._connect()

    # -- connection management ----------------------------------------------

    def _backoff(self, attempt: int) -> float:
        delay = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        return delay * (1.0 + self.jitter * self._rng.random())

    def _connect(self) -> None:
        """(Re)establish the subscription, resuming past ``last_lsn``."""
        failures = 0
        while True:
            if self._client is not None:
                self._client.close()
                self._client = None
            try:
                client = SubscriberClient(
                    self.host, self.port, timeout=self.timeout
                )
                if self.last_lsn is None:
                    reply = client.subscribe(self.view)
                    self.rows = rows_from_snapshot(reply)
                    self.last_lsn = reply["lsn"]
                else:
                    reply = client.subscribe(self.view, from_lsn=self.last_lsn)
                    if reply["type"] == "resume_gap":
                        self.resume_gaps += 1
                        _log.info(
                            "resume gap for %r past LSN %s: re-snapshotting",
                            self.view,
                            self.last_lsn,
                        )
                        self._bridge(client.subscribe(self.view))
            except (ServingError, OSError) as exc:
                failures += 1
                if failures > self.max_reconnects:
                    raise ServingError(
                        f"reconnect budget exhausted ({self.max_reconnects} "
                        f"consecutive failures) for view {self.view!r}: {exc}"
                    ) from exc
                time.sleep(self._backoff(failures - 1))
                continue
            self._client = client
            return

    def _bridge(self, snapshot: Mapping) -> None:
        """Fold a fallback snapshot in as one synthetic catch-up delta."""
        target = rows_from_snapshot(snapshot)
        changes = result_delta(self.rows, target)
        if changes:
            apply_changes(self.rows, changes)
            self.deltas.append(
                {
                    "type": "delta",
                    "view": self.view,
                    "lsn": snapshot["lsn"],
                    "synthesized": True,
                    "changes": changes,
                }
            )
        self.last_lsn = snapshot["lsn"]

    def _record(self, frame: dict) -> bool:
        """Deliver one delta frame exactly once (duplicates discarded)."""
        lsn = frame.get("lsn", 0)
        if self.last_lsn is not None and lsn <= self.last_lsn:
            return False
        apply_changes(self.rows, frame["changes"])
        self.deltas.append(frame)
        self.last_lsn = lsn
        return True

    def _drain_pending(self) -> None:
        client = self._client
        while client._pending:
            message = client._pending.popleft()
            if (
                message.get("type") == "delta"
                and message.get("view") == self.view
            ):
                self._record(message)

    # -- receiving ----------------------------------------------------------

    def pump_until(self, lsn: int, deadline: float = 60.0) -> None:
        """Receive (reconnecting through failures) until the server's
        LSN reaches ``lsn`` and every delta at or below it is recorded."""
        end = time.monotonic() + deadline
        while True:
            try:
                barrier = self._client.ping()
                self._drain_pending()
                if barrier >= lsn:
                    return
            except (ServingError, OSError):
                self.reconnects += 1
                self._connect()
            if time.monotonic() > end:
                raise ServingError(
                    f"server did not reach LSN {lsn} within {deadline:g}s"
                )
            time.sleep(0.01)

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def __enter__(self) -> "ReconnectingSubscriber":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
