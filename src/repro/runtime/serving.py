"""Reactive view-subscription serving: push deltas, don't poll maps.

The engine on its own is a library — callers push batches and poll
``results()``.  This module turns it into a *server*: clients subscribe
to named views (the program's standing queries) and receive incremental
Z-set deltas of the SQL-visible result rows as triggers fire, the
serving model of the higher-order delta-processing line of work (views
kept continuously fresh for many readers).  Three layers:

* :class:`ViewDeltaTap` — the per-view delta tap over the engine's flush
  path.  It registers as a batch listener
  (:meth:`~repro.runtime.engine.DeltaEngine.add_batch_listener`), and for
  every applied batch renders the affected views through
  :mod:`repro.runtime.views` and emits ``(lsn, view, [(row, weight)])``
  result deltas.  Subscribers therefore see *SQL result rows*, never raw
  slot maps; a view is only re-rendered when the batch's trigger writes
  one of its aggregate slot maps.  LSNs are monotonic (not necessarily
  dense); on a :class:`~repro.runtime.durability.DurableEngine` they are
  the WAL LSNs recovery replays, so a subscriber's position is
  meaningful across restarts.

* the **wire protocol** — length-prefixed JSON frames (4-byte big-endian
  length, UTF-8 JSON body).  Clients send ``subscribe`` /
  ``unsubscribe`` / ``publish`` / ``ping`` ops; the server answers with
  ``snapshot`` / ``delta`` / ``ack`` / ``pong`` / ``error`` frames.
  Catch-up is *snapshot-then-stream*: a subscriber first receives one
  ``snapshot`` frame (the view's current row multiset and its LSN),
  then every subsequent ``delta`` with a strictly greater LSN — a
  late-joining or lagging client is consistent by construction.

* :class:`ViewServer` / :class:`SubscriberClient` — an asyncio server
  wrapping any engine (:class:`~repro.runtime.engine.DeltaEngine`,
  :class:`~repro.runtime.engine.ShardedEngine`,
  :class:`~repro.runtime.durability.DurableEngine`) with a subscription
  registry and per-client bounded send queues, and a small blocking
  client for tests, examples and the CLI.  Ingest (network ``publish``
  or in-process :meth:`ViewServer.publish`) is serialised, so every
  subscriber observes one consistent delta sequence.

Backpressure: each client has a bounded frame queue; what happens when a
slow client fills it is the server's ``backpressure`` policy:

* ``"block"`` — ingest waits for the queue to drain: no client ever
  misses a delta, but one stalled reader stalls the source (classic
  flow control; the default);
* ``"drop"`` — the slow client is disconnected and its subscriptions
  discarded: the source never stalls, readers must resubscribe (and
  re-snapshot) after falling behind;
* ``"coalesce"`` — the client's queued deltas are merged per view
  (weights summed row-wise, LSN advanced to the newest): the client
  skips intermediate states but still converges on the live result —
  correct because Z-set deltas compose additively.

Run ``python -m repro.tools.cli serve ...`` for the standalone server;
``benchmarks/bench_serving.py`` measures sustained events/sec against
subscriber fan-out and p99 delivery latency.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
import time
from collections import Counter, deque
from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import EventError, ServingError
from repro.runtime.views import result_delta

#: Frame length prefix: one unsigned 32-bit big-endian length.
_LENGTH = struct.Struct(">I")

#: Frames larger than this are rejected as protocol corruption rather
#: than allocated (a torn length prefix can claim gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Accepted backpressure policies (see the module docstring).
BACKPRESSURE_POLICIES = ("block", "drop", "coalesce")

#: Default bound of a subscriber's send queue, in frames.
DEFAULT_QUEUE_FRAMES = 256

_CLOSE = object()  # writer-task poison pill


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------


def encode_frame(message: Mapping) -> bytes:
    """One wire frame: 4-byte big-endian length + compact UTF-8 JSON."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServingError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "protocol limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> dict:
    """Inverse of :func:`encode_frame` for one frame body."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServingError(f"undecodable protocol frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ServingError(
            f"protocol frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def _frame_length(prefix: bytes) -> int:
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ServingError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte "
            "protocol limit"
        )
    return length


def _tuple_rows(rows: Iterable[Sequence]) -> list[tuple]:
    """JSON arrays back to the engine's row tuples."""
    return [tuple(row) for row in rows]


def _tuple_changes(changes: Iterable[Sequence]) -> list[tuple[tuple, int]]:
    """JSON ``[[row, weight], ...]`` back to ``[(row, weight), ...]``."""
    return [(tuple(row), weight) for row, weight in changes]


def apply_changes(rows: Counter, changes: Iterable[tuple[tuple, int]]) -> Counter:
    """Fold one delta into an accumulated row multiset, in place.

    ``snapshot ⊎ delta₁ ⊎ delta₂ ⊎ ...`` reproduces the live result —
    the subscriber-side half of the serving contract (zero-weight rows
    are evicted, so the counter holds exactly the live multiset).
    """
    for row, weight in changes:
        total = rows.get(row, 0) + weight
        if total == 0:
            rows.pop(row, None)
        else:
            rows[row] = total
    return rows


# ---------------------------------------------------------------------------
# The flush-path delta tap
# ---------------------------------------------------------------------------


class ViewDeltaTap:
    """Renders per-batch result deltas for the program's views.

    Attach via the engine's flush-path listener::

        tap = ViewDeltaTap(engine)
        engine.add_batch_listener(tap.on_batch)   # or let ViewServer do it

    After every applied batch :meth:`on_batch` re-renders the views whose
    aggregate slot maps that batch's trigger writes (computed once from
    the compiled program — unrelated views are never touched) and diffs
    the rendered rows against the cached previous rendering.  The diff
    runs over *SQL-visible result rows* — bounded by the view's output,
    never the engine's internal maps, whose entry counts are typically
    orders of magnitude larger.

    ``views`` restricts serving to a subset of the program's queries
    (default: all of them).
    """

    def __init__(self, engine, views: Optional[Iterable[str]] = None) -> None:
        program = engine.program
        known = [query.name for query in program.queries]
        if views is None:
            selected = list(known)
        else:
            selected = list(views)
            unknown = sorted(set(selected) - set(known))
            if unknown:
                raise ServingError(
                    f"unknown views {unknown}; this program serves: "
                    + ", ".join(known)
                )
        self.engine = engine
        self.views = selected
        #: which served views each (relation, sign) trigger can change:
        #: exactly those whose slot maps the trigger's statements write.
        self._affected: dict[tuple[str, int], tuple[str, ...]] = {}
        for (relation, sign), trigger in program.triggers.items():
            written = {statement.target for statement in trigger.statements}
            self._affected[(relation, sign)] = tuple(
                view
                for view in selected
                if written.intersection(program.slot_maps[view])
            )
        self._results: dict[str, Counter] = {
            view: Counter(engine.results(view)) for view in selected
        }
        #: LSN of the last observed batch (0 before any event).
        self.lsn = 0

    def snapshot(self, view: str) -> tuple[int, list[tuple[tuple, int]]]:
        """The view's current row multiset and its LSN (the catch-up
        frame a new subscriber starts from)."""
        if view not in self._results:
            raise ServingError(
                f"unknown view {view!r}; this tap serves: "
                + ", ".join(self.views)
            )
        rows = sorted(self._results[view].items(), key=repr)
        return self.lsn, rows

    def on_batch(self, lsn: int, batch) -> dict[str, list[tuple[tuple, int]]]:
        """The flush-path listener: result deltas of one applied batch.

        Returns ``{view: [(row, weight), ...]}`` for the views the batch
        actually changed (often empty — e.g. a batch that only shifts
        internal join state without moving any rendered aggregate).
        """
        self.lsn = lsn
        deltas: dict[str, list[tuple[tuple, int]]] = {}
        for view in self._affected.get((batch.relation, batch.sign), ()):
            current = Counter(self.engine.results(view))
            changes = result_delta(self._results[view], current)
            if changes:
                self._results[view] = current
                deltas[view] = changes
        return deltas


# ---------------------------------------------------------------------------
# The asyncio server
# ---------------------------------------------------------------------------


class _ClientState:
    """Server-side state of one connected client."""

    __slots__ = ("writer", "queue", "views", "name", "dropped", "writer_task")

    def __init__(self, writer, queue_frames: int, name: str) -> None:
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_frames)
        self.views: set[str] = set()
        self.name = name
        self.dropped = False
        self.writer_task: Optional[asyncio.Task] = None


class ViewServer:
    """The reactive view-subscription server.

    Wraps one engine; accepts framed-protocol clients; fans every
    applied batch's result deltas out to the view's subscribers.  Usage
    (inside an event loop)::

        server = ViewServer(engine, port=0)
        await server.start()
        ...                        # server.port holds the bound port
        await server.stop()

    Ingest is serialised through one lock: network ``publish`` ops and
    in-process :meth:`publish` / :meth:`publish_stream` apply batches in
    arrival order, and each batch's deltas are fanned out before the
    next batch applies, so all subscribers observe the same LSN-stamped
    delta sequence.  Subscriptions snapshot under the same lock —
    snapshot-then-stream catch-up can neither miss nor duplicate a
    delta.

    ``backpressure`` picks the slow-client policy (``"block"`` /
    ``"drop"`` / ``"coalesce"``, see the module docstring);
    ``queue_frames`` bounds each client's send queue.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        views: Optional[Iterable[str]] = None,
        backpressure: str = "block",
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ServingError(
                f"unknown backpressure policy {backpressure!r}; choose from "
                + ", ".join(BACKPRESSURE_POLICIES)
            )
        if queue_frames < 2:
            raise ServingError(
                f"queue_frames must be >= 2, got {queue_frames!r}"
            )
        self.engine = engine
        self.host = host
        self.port = port
        self.backpressure = backpressure
        self.queue_frames = queue_frames
        self.tap = ViewDeltaTap(engine, views)
        self._server: Optional[asyncio.AbstractServer] = None
        self._ingest_lock = asyncio.Lock()
        self._staged: list[tuple[int, dict]] = []
        self._subscribers: dict[str, set[_ClientState]] = {
            view: set() for view in self.tap.views
        }
        self._clients: set[_ClientState] = set()
        self._client_counter = 0
        self.clients_dropped = 0
        self.deltas_sent = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and register the engine tap."""
        if self._server is not None:
            raise ServingError("server already started")
        self.engine.add_batch_listener(self._on_batch)
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener and every client connection (idempotent)."""
        if self._server is None:
            return
        self.engine.remove_batch_listener(self._on_batch)
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for client in list(self._clients):
            self._disconnect(client)
        self._clients.clear()
        for waiters in self._subscribers.values():
            waiters.clear()

    # -- ingest -------------------------------------------------------------

    def _on_batch(self, lsn: int, batch) -> None:
        # Runs synchronously inside the engine's flush path; the ingest
        # coroutine fans the staged deltas out (with backpressure awaits)
        # once the engine call returns.
        deltas = self.tap.on_batch(lsn, batch)
        if deltas:
            self._staged.append((lsn, deltas))

    async def publish(
        self, relation: str, sign: int, rows: Sequence[Sequence]
    ) -> tuple[int, int]:
        """Apply one batch and fan out its deltas.

        Returns ``(count, lsn)``: rows that reached a trigger, and the
        tap's LSN after the batch (unchanged when the batch was skipped).
        """
        async with self._ingest_lock:
            count = self.engine.process_batch(relation, sign, list(rows))
            await self._flush_staged()
            return count, self.tap.lsn

    async def publish_stream(self, events, batch_size: Optional[int] = None) -> int:
        """Apply a whole event stream through the serving ingest path.

        Events are grouped into same-``(relation, sign)`` batches (like
        :meth:`~repro.runtime.engine.DeltaEngine.process_stream`), with
        fan-out after every batch.  Returns events consumed.
        """
        from repro.runtime.engine import DEFAULT_BATCH_SIZE
        from repro.runtime.events import batches

        size = DEFAULT_BATCH_SIZE if batch_size is None else batch_size
        count = 0
        for batch in batches(events, size):
            # Through the public entry point so a DurableEngine wrapper
            # still logs the batch before applying it.
            async with self._ingest_lock:
                self.engine.process_batch(batch.relation, batch.sign, batch.rows)
                await self._flush_staged()
            count += len(batch)
        return count

    async def _flush_staged(self) -> None:
        """Fan staged deltas out to subscribers, in LSN order."""
        staged, self._staged = self._staged, []
        for lsn, deltas in staged:
            ts = time.time()
            for view, changes in deltas.items():
                frame = {
                    "type": "delta",
                    "view": view,
                    "lsn": lsn,
                    "ts": ts,
                    "changes": [[list(row), weight] for row, weight in changes],
                }
                for client in list(self._subscribers.get(view, ())):
                    await self._deliver(client, frame)
                    self.deltas_sent += 1

    # -- delivery / backpressure -------------------------------------------

    async def _deliver(self, client: _ClientState, frame: dict) -> bool:
        """Enqueue one frame under the server's backpressure policy."""
        if client.dropped:
            return False
        if self.backpressure == "block":
            await client.queue.put(frame)
            return True
        try:
            client.queue.put_nowait(frame)
            return True
        except asyncio.QueueFull:
            pass
        if self.backpressure == "drop":
            self.clients_dropped += 1
            self._disconnect(client)
            return False
        self._coalesce(client, frame)
        return True

    def _coalesce(self, client: _ClientState, frame: dict) -> None:
        """Merge the client's queued deltas per view to make room.

        Weights sum row-wise and the LSN advances to the newest, so the
        merged frame moves the subscriber straight to the latest state —
        Z-set deltas compose additively, intermediate states are simply
        skipped.  ``ts`` keeps the *oldest* pending stamp, so measured
        delivery latency still reflects how long the client lagged.
        Non-delta frames (snapshots, acks, pongs) are preserved in order
        ahead of the merged deltas.
        """
        pending: list[dict] = []
        while True:
            try:
                pending.append(client.queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        pending.append(frame)
        passthrough: list[dict] = []
        merged: dict[str, dict] = {}
        for item in pending:
            if not isinstance(item, dict) or item.get("type") != "delta":
                passthrough.append(item)
                continue
            view = item["view"]
            slot = merged.get(view)
            if slot is None:
                merged[view] = {
                    "rows": Counter(
                        {tuple(row): weight for row, weight in item["changes"]}
                    ),
                    "lsn": item["lsn"],
                    "ts": item["ts"],
                }
                continue
            apply_changes(
                slot["rows"], _tuple_changes(item["changes"])
            )
            slot["lsn"] = max(slot["lsn"], item["lsn"])
            slot["ts"] = min(slot["ts"], item["ts"])
        for item in passthrough:
            client.queue.put_nowait(item)
        for view, slot in merged.items():
            changes = sorted(slot["rows"].items(), key=repr)
            if not changes:
                continue  # deltas cancelled out entirely
            client.queue.put_nowait(
                {
                    "type": "delta",
                    "view": view,
                    "lsn": slot["lsn"],
                    "ts": slot["ts"],
                    "coalesced": True,
                    "changes": [[list(row), weight] for row, weight in changes],
                }
            )

    def _disconnect(self, client: _ClientState) -> None:
        """Drop one client: unregister, stop its writer, close the socket."""
        if client.dropped:
            return
        client.dropped = True
        for view in client.views:
            self._subscribers.get(view, set()).discard(client)
        self._clients.discard(client)
        if client.writer_task is not None:
            client.writer_task.cancel()
        try:
            client.writer.close()
        except Exception:
            pass

    # -- connection handling ------------------------------------------------

    async def _writer_loop(self, client: _ClientState) -> None:
        writer = client.writer
        try:
            while True:
                frame = await client.queue.get()
                if frame is _CLOSE:
                    break
                writer.write(encode_frame(frame))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_client(self, reader, writer) -> None:
        self._client_counter += 1
        client = _ClientState(
            writer, self.queue_frames, f"client-{self._client_counter}"
        )
        client.writer_task = asyncio.ensure_future(self._writer_loop(client))
        self._clients.add(client)
        try:
            while not client.dropped:
                prefix = await reader.readexactly(_LENGTH.size)
                body = await reader.readexactly(_frame_length(prefix))
                await self._dispatch(client, decode_frame(body))
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except ServingError as exc:
            await self._deliver(client, {"type": "error", "message": str(exc)})
        finally:
            if not client.dropped:
                for view in client.views:
                    self._subscribers.get(view, set()).discard(client)
                self._clients.discard(client)
                try:
                    client.queue.put_nowait(_CLOSE)
                except asyncio.QueueFull:
                    client.writer_task.cancel()
                await asyncio.gather(client.writer_task, return_exceptions=True)

    async def _dispatch(self, client: _ClientState, message: dict) -> None:
        op = message.get("op")
        if op == "subscribe":
            await self._op_subscribe(client, message)
        elif op == "unsubscribe":
            view = message.get("view")
            client.views.discard(view)
            self._subscribers.get(view, set()).discard(client)
            await self._deliver(
                client,
                {"type": "unsubscribed", "view": view, "lsn": self.tap.lsn},
            )
        elif op == "publish":
            await self._op_publish(client, message)
        elif op == "ping":
            await self._deliver(client, {"type": "pong", "lsn": self.tap.lsn})
        else:
            await self._deliver(
                client,
                {"type": "error", "message": f"unknown protocol op {op!r}"},
            )

    async def _op_subscribe(self, client: _ClientState, message: dict) -> None:
        view = message.get("view")
        # Snapshot and registration are atomic with respect to ingest, so
        # the subscriber's stream is exactly "snapshot at LSN, then every
        # delta with a greater LSN".
        async with self._ingest_lock:
            try:
                lsn, rows = self.tap.snapshot(view)
            except ServingError as exc:
                await self._deliver(
                    client, {"type": "error", "message": str(exc)}
                )
                return
            client.views.add(view)
            self._subscribers[view].add(client)
            await self._deliver(
                client,
                {
                    "type": "snapshot",
                    "view": view,
                    "lsn": lsn,
                    "rows": [[list(row), weight] for row, weight in rows],
                },
            )

    async def _op_publish(self, client: _ClientState, message: dict) -> None:
        try:
            relation = message["relation"]
            sign = message.get("sign", 1)
            rows = _tuple_rows(message["rows"])
        except (KeyError, TypeError) as exc:
            await self._deliver(
                client,
                {"type": "error", "message": f"malformed publish frame: {exc}"},
            )
            return
        try:
            count, lsn = await self.publish(relation, sign, rows)
        except EventError as exc:
            await self._deliver(client, {"type": "error", "message": str(exc)})
            return
        await self._deliver(
            client, {"type": "ack", "lsn": lsn, "count": count}
        )


# ---------------------------------------------------------------------------
# Thread-hosted server (for synchronous callers: tests, benchmarks, CLI)
# ---------------------------------------------------------------------------


class ServerThread:
    """Runs a :class:`ViewServer` on a private event loop in a daemon
    thread, for synchronous callers::

        with ServerThread(engine) as handle:
            client = SubscriberClient(handle.host, handle.port)
            ...

    The engine must not be used from other threads while the server is
    running — all processing goes through the server's serialised ingest
    (network ``publish`` frames or :meth:`publish` /
    :meth:`publish_stream`, which hop onto the loop thread).
    """

    def __init__(self, engine, **server_kwargs) -> None:
        self.server = ViewServer(engine, **server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise ServingError("server thread already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list[BaseException] = []

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:  # surfaced to start() below
                failure.append(exc)
                started.set()
                return
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=_run, name="repro-view-server", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            raise failure[0]
        return self

    def publish(self, relation: str, sign: int, rows) -> tuple[int, int]:
        """In-process ingest: apply one batch on the loop thread."""
        return self._call(self.server.publish(relation, sign, list(rows)))

    def publish_stream(self, events, batch_size: Optional[int] = None) -> int:
        """In-process ingest of a whole stream (grouped into batches)."""
        return self._call(
            self.server.publish_stream(list(events), batch_size=batch_size)
        )

    def _call(self, coroutine):
        if self._loop is None:
            raise ServingError("server thread is not running")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    def stop(self) -> None:
        if self._loop is None:
            return
        self._call(self.server.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# The blocking subscriber client
# ---------------------------------------------------------------------------


class SubscriberClient:
    """A small blocking client of the framed subscription protocol.

    Intended for tests, examples and benchmark drivers (a production
    reader would speak the protocol asynchronously)::

        client = SubscriberClient(host, port)
        snapshot = client.subscribe("q")
        rows = rows_from_snapshot(snapshot)        # Counter of row tuples
        while ...:
            message = client.recv()
            if message["type"] == "delta":
                apply_changes(rows, message["changes"])

    Frames arrive strictly in server order; :meth:`publish`,
    :meth:`subscribe`, :meth:`ping` and :meth:`unsubscribe` wait for
    their reply frame while buffering any interleaved deltas, which
    later :meth:`recv` calls return first-in-first-out.  Server
    ``error`` frames raise :class:`~repro.errors.ServingError`.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._pending: deque[dict] = deque()
        self._closed = False

    # -- framing ------------------------------------------------------------

    def _send(self, message: Mapping) -> None:
        if self._closed:
            raise ServingError("client is closed")
        self._sock.sendall(encode_frame(message))

    def _read_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ServingError("server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _recv_frame(self) -> dict:
        length = _frame_length(self._read_exactly(_LENGTH.size))
        message = decode_frame(self._read_exactly(length))
        if message.get("type") == "delta":
            message["changes"] = _tuple_changes(message["changes"])
        elif message.get("type") == "snapshot":
            message["rows"] = _tuple_changes(message["rows"])
        return message

    # -- requests -----------------------------------------------------------

    def recv(self) -> dict:
        """The next server frame (buffered frames first), rows tupled."""
        if self._pending:
            return self._pending.popleft()
        return self._recv_frame()

    def _wait_for(self, frame_type: str, view: Optional[str] = None) -> dict:
        while True:
            message = self._recv_frame()
            if message.get("type") == "error":
                raise ServingError(message.get("message", "server error"))
            if message.get("type") == frame_type and (
                view is None or message.get("view") == view
            ):
                return message
            self._pending.append(message)

    def subscribe(self, view: str) -> dict:
        """Subscribe; returns the catch-up ``snapshot`` frame."""
        self._send({"op": "subscribe", "view": view})
        return self._wait_for("snapshot", view)

    def unsubscribe(self, view: str) -> dict:
        self._send({"op": "unsubscribe", "view": view})
        return self._wait_for("unsubscribed", view)

    def publish(self, relation: str, sign: int, rows: Iterable[Sequence]) -> dict:
        """Push one batch; returns the ``ack`` frame (``lsn``, ``count``)."""
        self._send(
            {
                "op": "publish",
                "relation": relation,
                "sign": sign,
                "rows": [list(row) for row in rows],
            }
        )
        return self._wait_for("ack")

    def ping(self) -> int:
        """Round-trip barrier; returns the server's current LSN.

        Because all frames to this client flow through one ordered
        queue, the returned pong also guarantees every delta fanned out
        before it has been delivered.
        """
        self._send({"op": "ping"})
        return self._wait_for("pong")["lsn"]

    def drain_deltas(self, view: str, until_lsn: int) -> list[dict]:
        """Receive until a frame for ``view`` reaches ``until_lsn``.

        Returns the delta frames for ``view`` (other views' frames stay
        buffered).  A ping barrier makes ``until_lsn`` reachable even
        when the final batch changed nothing for this view.
        """
        deltas: list[dict] = []
        barrier = self.ping()
        if barrier < until_lsn:
            raise ServingError(
                f"server LSN {barrier} has not reached {until_lsn}"
            )
        while self._pending:
            message = self._pending.popleft()
            if message.get("type") == "delta" and message.get("view") == view:
                deltas.append(message)
        return deltas

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "SubscriberClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def rows_from_snapshot(snapshot: Mapping) -> Counter:
    """The row multiset a ``snapshot`` frame carries, as a Counter."""
    return Counter({row: weight for row, weight in snapshot["rows"]})
