"""Runtime: event model, map storage, engines, views, sources and tooling.

The runtime executes a :class:`~repro.compiler.program.CompiledProgram`:

* :class:`~repro.runtime.engine.DeltaEngine` — the main-memory engine, in
  either *compiled* mode (generated Python trigger functions, the stand-in
  for the paper's C++ path) or *interpreted* mode (the statement walker,
  used as the interpreter-overhead ablation);
* :class:`~repro.runtime.engine.ShardedEngine` — N-way sharded parallel
  execution: batches hash-routed by the compiler's partition columns to
  per-shard engines (optionally forked worker processes), with key-wise
  merged results;
* :mod:`~repro.runtime.views` — renders SQL-visible results from the
  maintained maps (avg division, min/max extraction, group existence);
* :mod:`~repro.runtime.sources` — stream adapters (lists, files, generators)
  for standalone mode;
* :mod:`~repro.runtime.durability` — crash durability: the LSN-stamped
  write-ahead log, atomic engine snapshots, recovery
  (:class:`~repro.runtime.durability.DurableEngine`) and the
  fault-injection probe points;
* :mod:`~repro.runtime.serving` — the reactive view-subscription server:
  clients subscribe to named views and receive LSN-stamped incremental
  result deltas as triggers fire (snapshot-then-stream catch-up, bounded
  per-client queues with configurable backpressure);
* :mod:`~repro.runtime.debugger` / :mod:`~repro.runtime.profiler` — the
  demo's step-tracing and per-map profiling tools.
"""

from repro.runtime.events import (
    EventBatch,
    StreamEvent,
    batches,
    insert,
    delete,
    partition_columns,
    partition_rows,
    update,
)
from repro.runtime.engine import DeltaEngine, ShardSupervisor, ShardedEngine
from repro.runtime.durability import (
    CrashPoint,
    DurableEngine,
    SnapshotStore,
    WriteAheadLog,
    program_fingerprint,
    recover_engine,
)
from repro.runtime.serving import (
    ReconnectingSubscriber,
    ServerThread,
    SubscriberClient,
    ViewDeltaTap,
    ViewServer,
)
from repro.runtime.storage import ColumnarMap
from repro.runtime.views import query_results, result_delta, result_rows_to_dicts

__all__ = [
    "ColumnarMap",
    "CrashPoint",
    "DurableEngine",
    "EventBatch",
    "ReconnectingSubscriber",
    "ServerThread",
    "ShardSupervisor",
    "SnapshotStore",
    "StreamEvent",
    "SubscriberClient",
    "ViewDeltaTap",
    "ViewServer",
    "WriteAheadLog",
    "batches",
    "insert",
    "delete",
    "partition_columns",
    "partition_rows",
    "program_fingerprint",
    "recover_engine",
    "result_delta",
    "update",
    "DeltaEngine",
    "ShardedEngine",
    "query_results",
    "result_rows_to_dicts",
]
