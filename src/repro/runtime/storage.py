"""Columnar value storage for maintained maps.

The engine's default map storage is a Python ``dict`` keyed by key
tuples — convenient, but the worst possible layout for the dense numeric
aggregate state delta programs maintain: every entry pays a hash-table
slot (~100 B), a boxed key tuple (56 B + 8 B/position + boxed parts) and
a boxed ring value (28 B).  :class:`ColumnarMap` stores the same mapping
as *columns*: one packed ``array`` (or pointer list) per key position,
one value column, one packed hash column, and an open-addressing bucket
table of slot indexes.  Per live entry that is roughly ``8·arity`` bytes
of keys, 8 bytes of value, 8 bytes of cached hash, a liveness byte and
4–12 bytes of bucket — typically 3–6x smaller than the dict layout,
which is the point: the paper's compiled delta programs live or die on
main-memory efficiency.

Semantics are *bit-identical* to dict storage by construction:

* **iteration order** is insertion order with deleted keys forgotten —
  new entries append to the column tails, deletions tombstone their slot
  (and a re-inserted key appends at the end, exactly like a dict);
* **key equality** is Python equality over cached hashes (``2`` and
  ``2.0`` collide into one entry, like a dict);
* **value exactness** — packed columns only ever hold values that
  round-trip exactly (``int`` within 64 bits in a ``'q'`` column,
  ``float`` in a ``'d'`` column).  A value the packed column cannot
  represent exactly (an overflowing int, an int arriving in a float
  column, a bool) *promotes the column* to boxed object storage rather
  than coercing the value.

Non-conforming **keys** (wrong arity, not a tuple, NaN components —
whose identity-based dict semantics a packed column cannot reproduce)
trigger the spill-to-dict fallback: the whole map converts to an
ordinary dict (order preserved) and behaves exactly like one from then
on.  None of this ever arises from compiled programs — the compiler's
storage analysis (:mod:`repro.compiler.storage`) only plans columnar
storage for maps with fixed-arity keys — but the fallback keeps ad-hoc
writes through ``map_view``-style embedding safe.

The class implements the full ``MutableMapping`` protocol (including
re-iterable, ``len()``-able key/item/value *views*), so generated
trigger code, the IR interpreter, the view layer and the shard merge all
use it unchanged.

One dict behaviour is *not* reproduced: mutating the map while iterating
it.  A dict raises ``RuntimeError``; the columnar iterators read the
live column arrays and would observe appends, or stale slots after a
compaction, without noticing.  Compiled programs never do this (reads of
a written map go through the two-phase pending buffers by construction);
embedded ad-hoc code must collect first, as with any snapshot.
"""

from __future__ import annotations

import sys
from array import array
from collections.abc import ItemsView, KeysView, MutableMapping, ValuesView
from itertools import compress
from typing import Iterator, Optional

#: 64-bit signed bounds for the packed int value/key columns.
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Mask keeping the probe perturbation non-negative.
_HASH_MASK = (1 << 64) - 1

#: Bucket sentinel values (buckets store slot+1 for occupied buckets).
_FREE = 0
_TOMB = -1


def _new_column(kind: str):
    """An empty column store of one kind ('q' int64, 'd' double, 'o' boxed)."""
    return [] if kind == "o" else array(kind)


class ColumnarMap(MutableMapping):
    """A dict-compatible map stored as packed columns.

    ``arity`` is the fixed key width (every key is a tuple of that many
    scalars); ``value_kind`` is the compiler's value-type hint — ``"q"``
    (proved exact-integer ring values), ``"d"`` (proved float values) or
    ``"o"`` (boxed).  The hints choose the initial column representation
    only: runtime type guards promote a column to boxed storage before
    ever storing a value it could not round-trip exactly, so soundness
    never depends on the analysis.

    >>> m = ColumnarMap(arity=2, value_kind="q")
    >>> m[(1, "GOOG")] = 5
    >>> m.add((1, "GOOG"), -5)   # the one-probe GMR update: += with
    0
    >>> (1, "GOOG") in m         # zero eviction, like every map apply
    False
    >>> m.update({(2, "IBM"): 7}); dict(m) == {(2, "IBM"): 7}
    True
    """

    __slots__ = (
        "arity",
        "value_kind",
        "_key_kinds",
        "_key_cols",
        "_vkind",
        "_values",
        "_hashes",
        "_live",
        "_used",
        "_size",
        "_buckets",
        "_mask",
        "_fill",
        "_dict",
        "_native",
    )

    def __init__(self, arity: int, value_kind: str = "o") -> None:
        if arity < 1:
            raise ValueError("ColumnarMap requires arity >= 1 (use a dict)")
        if value_kind not in ("q", "d", "o"):
            raise ValueError(f"unknown value kind {value_kind!r}")
        self.arity = arity
        self.value_kind = value_kind
        self._dict: Optional[dict] = None
        self._native = None  # C-kernel wrapper (see codegen/native.py)
        self._reset()

    def _reset(self) -> None:
        self._key_kinds: list[Optional[str]] = [None] * self.arity
        self._key_cols: list = [None] * self.arity
        self._vkind = self.value_kind
        self._values = _new_column(self.value_kind)
        self._hashes = array("q")
        self._live = bytearray()
        self._used = 0  # slots allocated (live + tombstoned)
        self._size = 0  # live entries
        self._buckets = array("i", bytes(4 * 8))  # 8 empty buckets
        self._mask = 7
        self._fill = 0  # non-FREE buckets (occupied + tombstones)

    # -- probing -----------------------------------------------------------

    def _probe(self, key: tuple, h: int) -> tuple[int, int]:
        """Locate ``key``: ``(slot, bucket)`` when present, else
        ``(-1, insertion bucket)`` (reusing the first tombstone seen)."""
        buckets = self._buckets
        mask = self._mask
        hashes = self._hashes
        cols = self._key_cols
        i = h & mask
        perturb = h & _HASH_MASK
        insert = -1
        while True:
            s = buckets[i]
            if s == _FREE:
                return -1, (insert if insert >= 0 else i)
            if s == _TOMB:
                if insert < 0:
                    insert = i
            else:
                slot = s - 1
                if hashes[slot] == h:
                    for col, part in zip(cols, key):
                        if col[slot] != part:
                            break
                    else:
                        return slot, i
            perturb >>= 5
            i = (5 * i + perturb + 1) & mask

    def _rebuild_buckets(self) -> None:
        """Re-bucket every live slot (grows the table, drops tombstones)."""
        capacity = 8
        needed = 2 * self._size + 1
        while capacity < needed:
            capacity <<= 1
        capacity <<= 1  # land at load factor <= 1/4 so growth amortises
        buckets = array("i", bytes(4 * capacity))
        mask = capacity - 1
        hashes = self._hashes
        live = self._live
        for slot in range(self._used):
            if not live[slot]:
                continue
            h = hashes[slot]
            i = h & mask
            perturb = h & _HASH_MASK
            while buckets[i] != _FREE:
                perturb >>= 5
                i = (5 * i + perturb + 1) & mask
            buckets[i] = slot + 1
        self._buckets = buckets
        self._mask = mask
        self._fill = self._size

    def _compact(self) -> None:
        """Drop tombstoned slots from every column, preserving order."""
        live = self._live
        keep = [slot for slot in range(self._used) if live[slot]]
        for position, kind in enumerate(self._key_kinds):
            if kind is None:
                continue
            old = self._key_cols[position]
            fresh = _new_column(kind)
            fresh.extend(old[slot] for slot in keep)
            self._key_cols[position] = fresh
        fresh_values = _new_column(self._vkind)
        fresh_values.extend(self._values[slot] for slot in keep)
        self._values = fresh_values
        self._hashes = array("q", (self._hashes[slot] for slot in keep))
        self._live = bytearray(b"\x01" * len(keep))
        self._used = len(keep)
        self._rebuild_buckets()

    # -- column typing ------------------------------------------------------

    @staticmethod
    def _packed_kind(part) -> str:
        """The packed column kind that stores ``part`` exactly, or 'o'."""
        kind = type(part)
        if kind is int:
            return "q" if _INT64_MIN <= part <= _INT64_MAX else "o"
        if kind is float:
            return "o" if part != part else "d"  # NaN handled by caller
        return "o"

    def _promote_key_column(self, position: int) -> None:
        self._key_cols[position] = list(self._key_cols[position])
        self._key_kinds[position] = "o"

    def _append_key_part(self, position: int, part) -> None:
        kind = self._key_kinds[position]
        if kind is None:
            kind = self._packed_kind(part)
            self._key_kinds[position] = kind
            column = _new_column(kind)
            column.extend([part] * self._used)  # only ever at _used == 0
            self._key_cols[position] = column
            column.append(part)
            return
        if kind != "o" and self._packed_kind(part) != kind:
            self._promote_key_column(position)
        self._key_cols[position].append(part)

    def _promote_values(self) -> None:
        self._values = list(self._values)
        self._vkind = "o"

    def _fits_value(self, value) -> bool:
        kind = self._vkind
        if kind == "o":
            return True
        vtype = type(value)
        if kind == "q":
            return vtype is int and _INT64_MIN <= value <= _INT64_MAX
        return vtype is float  # 'd'

    # -- spill-to-dict fallback --------------------------------------------

    def _conforming_key(self, key) -> bool:
        if type(key) is not tuple or len(key) != self.arity:
            return False
        for part in key:
            if part != part:  # NaN: packed storage loses dict's identity
                return False  # semantics for it, so fall back
        return True

    def _spill(self) -> dict:
        """Convert to dict-backed storage (order preserved), idempotent."""
        if self._dict is None:
            self._dict = dict(self._iter_items())
            # Release the columns: from now on every operation delegates.
            self._key_cols = []
            self._key_kinds = []
            self._values = []
            self._hashes = array("q")
            self._live = bytearray()
            self._buckets = array("i")
            self._used = self._size = self._fill = 0
        return self._dict

    @property
    def spilled(self) -> bool:
        """True once the map has fallen back to dict storage."""
        return self._dict is not None

    # -- the mapping protocol ----------------------------------------------

    def __len__(self) -> int:
        if self._dict is not None:
            return len(self._dict)
        return self._size

    def get(self, key, default=None):
        if self._dict is not None:
            return self._dict.get(key, default)
        if type(key) is not tuple or len(key) != self.arity:
            return default
        slot, _ = self._probe(key, hash(key))
        if slot < 0:
            return default
        return self._values[slot]

    def __getitem__(self, key):
        if self._dict is not None:
            return self._dict[key]
        if type(key) is not tuple or len(key) != self.arity:
            raise KeyError(key)
        slot, _ = self._probe(key, hash(key))
        if slot < 0:
            raise KeyError(key)
        return self._values[slot]

    def __contains__(self, key) -> bool:
        if self._dict is not None:
            return key in self._dict
        if type(key) is not tuple or len(key) != self.arity:
            return False
        return self._probe(key, hash(key))[0] >= 0

    def _append_entry(self, key: tuple, h: int, bucket: int, value) -> None:
        """Append a new live entry at the column tails and claim ``bucket``
        (the insertion position a preceding probe miss returned).  The one
        insert sequence ``__setitem__`` and ``add`` share."""
        if not self._fits_value(value):
            self._promote_values()
        for position, part in enumerate(key):
            self._append_key_part(position, part)
        self._values.append(value)
        self._hashes.append(h)
        self._live.append(1)
        slot = self._used
        self._used += 1
        self._size += 1
        if self._buckets[bucket] == _FREE:
            self._fill += 1
        self._buckets[bucket] = slot + 1
        if 3 * self._fill >= 2 * (self._mask + 1):
            self._rebuild_buckets()

    def __setitem__(self, key, value) -> None:
        if self._dict is not None:
            self._dict[key] = value
            return
        if not self._conforming_key(key):
            self._spill()[key] = value
            return
        h = hash(key)
        slot, bucket = self._probe(key, h)
        if slot >= 0:  # overwrite (the stored key object wins, like a dict)
            if not self._fits_value(value):
                self._promote_values()
            self._values[slot] = value
            return
        self._append_entry(key, h, bucket, value)

    def add(self, key, value):
        """``self[key] += value`` with zero eviction, in one probe.

        The canonical GMR update every backend applies
        (:class:`repro.ir.nodes.AddTo`): returns the new ring value, with
        0 meaning the entry is now absent.  Equivalent to the dict-path
        ``cur = m.get(k, 0) + v; m.pop(k) if cur == 0 else m[k] = cur``
        but pays one hash/probe instead of two.
        """
        d = self._dict
        if d is not None:
            current = d.get(key, 0) + value
            if current == 0:
                d.pop(key, None)
            else:
                d[key] = current
            return current
        if not self._conforming_key(key):
            self._spill()
            return self.add(key, value)
        h = hash(key)
        slot, bucket = self._probe(key, h)
        if slot >= 0:
            current = self._values[slot] + value
            if current == 0:
                self._kill(slot, bucket)
            else:
                if not self._fits_value(current):
                    self._promote_values()
                self._values[slot] = current
            return current
        if value == 0:
            return 0  # absent + 0: a dict would evict; nothing to store
        self._append_entry(key, h, bucket, value)
        return value

    def __delitem__(self, key) -> None:
        if self._dict is not None:
            del self._dict[key]
            return
        if type(key) is not tuple or len(key) != self.arity:
            raise KeyError(key)
        slot, bucket = self._probe(key, hash(key))
        if slot < 0:
            raise KeyError(key)
        self._kill(slot, bucket)

    def _kill(self, slot: int, bucket: int) -> None:
        self._live[slot] = 0
        self._buckets[bucket] = _TOMB
        self._size -= 1
        if self._vkind == "o":
            self._values[slot] = None  # release the boxed value
        if self._used > 64 and self._used > 2 * self._size:
            self._compact()

    _MISSING = object()

    def pop(self, key, default=_MISSING):
        if self._dict is not None:
            if default is ColumnarMap._MISSING:
                return self._dict.pop(key)
            return self._dict.pop(key, default)
        if type(key) is tuple and len(key) == self.arity:
            slot, bucket = self._probe(key, hash(key))
            if slot >= 0:
                value = self._values[slot]
                self._kill(slot, bucket)
                return value
        if default is ColumnarMap._MISSING:
            raise KeyError(key)
        return default

    def clear(self) -> None:
        if self._dict is not None:
            self._dict.clear()
            return
        self._reset()

    # -- iteration (insertion order, like a dict) --------------------------

    def _key_at(self, slot: int) -> tuple:
        return tuple(col[slot] for col in self._key_cols)

    def _iter_items(self) -> Iterator[tuple]:
        """(key tuple, value) pairs in slot (== insertion) order.

        Entirely C-level: key tuples zip straight out of the columns and
        tombstoned slots are dropped by :func:`itertools.compress` — this
        is the scan path state-scanning triggers run on (their stale key
        parts and ``None`` values never surface).
        """
        if self._size == 0:
            return iter(())
        pairs = zip(zip(*self._key_cols), self._values)
        if self._used == self._size:
            return pairs
        return compress(pairs, self._live)

    def _iter_values(self) -> Iterator:
        if self._size == 0:
            return iter(())
        if self._used == self._size:
            return iter(self._values)
        return compress(self._values, self._live)

    def scan_columns(self, positions) -> tuple:
        """Fused column scan: one sequence per requested key position,
        plus the value column last — live entries only, insertion order.

        This is the contract the native code generator renders full-map
        loops against (``for k, v in zip(*m.scan_columns((0,)))`` instead
        of tuple-building ``items()``), and it holds across all three
        storage states: packed columns (zero-copy when tombstone-free),
        spilled dict, and the native C kernel (which overrides it with a
        per-column ``cm_scan_column`` snapshot).
        """
        positions = tuple(positions)
        contents = self._dict
        if contents is not None:
            items = list(contents.items())
            cols = [
                [key[pos] for key, _ in items] for pos in positions
            ]
            cols.append([value for _, value in items])
            return tuple(cols)
        if self._size == 0:
            return tuple(() for _ in range(len(positions) + 1))
        cols = [self._key_cols[pos] for pos in positions]
        cols.append(self._values)
        if self._used == self._size:
            return tuple(cols)
        live = self._live
        return tuple(list(compress(col, live)) for col in cols)

    def reduce_scalar(self, mulpos, predicates, cmul=1):
        """Fused restate reduction; ``None`` means "not provided here".

        Only the native C kernel computes this (one call instead of a
        Python loop — see ``_KernelMapBase.reduce_scalar``); the pure
        and spilled states always decline, and the generated triggers
        then run their equivalent column-zip loop.
        """
        return None

    def items(self):
        """A re-iterable items view (fresh C-level iterator per pass)."""
        if self._dict is not None:
            return self._dict.items()
        return _ColumnarItemsView(self)

    def __iter__(self):
        if self._dict is not None:
            yield from self._dict
            return
        if self._size:
            keys = zip(*self._key_cols)
            if self._used == self._size:
                yield from keys
            else:
                yield from compress(keys, self._live)

    def keys(self):
        if self._dict is not None:
            return self._dict.keys()
        return _ColumnarKeysView(self)

    def values(self):
        if self._dict is not None:
            return self._dict.values()
        return _ColumnarValuesView(self)

    def popitem(self):
        """Remove and return the *most recently inserted* entry (dict
        LIFO semantics; the MutableMapping default would pop the first)."""
        if self._dict is not None:
            return self._dict.popitem()
        live = self._live
        for slot in range(self._used - 1, -1, -1):
            if live[slot]:
                key = self._key_at(slot)
                value = self._values[slot]
                found, bucket = self._probe(key, self._hashes[slot])
                assert found == slot
                self._kill(slot, bucket)
                return key, value
        raise KeyError("popitem(): map is empty")

    def __repr__(self) -> str:
        return f"ColumnarMap({dict(self)!r})"

    # -- copying / pickling -------------------------------------------------

    def copy(self) -> "ColumnarMap":
        """An independent copy preserving storage layout and order."""
        clone = ColumnarMap(self.arity, self.value_kind)
        if self._dict is not None:
            clone._dict = dict(self._dict)
            return clone
        clone._key_kinds = list(self._key_kinds)
        clone._key_cols = [
            None if col is None else col[:] for col in self._key_cols
        ]
        clone._vkind = self._vkind
        clone._values = self._values[:]
        clone._hashes = self._hashes[:]
        clone._live = self._live[:]
        clone._used = self._used
        clone._size = self._size
        clone._buckets = self._buckets[:]
        clone._mask = self._mask
        clone._fill = self._fill
        return clone

    def __copy__(self) -> "ColumnarMap":
        return self.copy()

    def __deepcopy__(self, memo: dict) -> "ColumnarMap":
        clone = self.copy()  # entries are scalars: a layout copy is deep
        memo[id(self)] = clone
        return clone

    def __reduce__(self):
        # Hashes are salted per process (PYTHONHASHSEED), so pickling ships
        # the logical items and rebuilds the layout on the receiving side —
        # this is what lets shard workers send maps over pipes.
        return (_rebuild_columnar, (self.arity, self.value_kind,
                                    list(self.items()), self.spilled))

    # -- accounting ---------------------------------------------------------

    def storage_bytes(self) -> int:
        """Approximate live bytes, matching the dict-side methodology of
        :func:`repro.runtime.profiler.map_memory_bytes` (container +
        boxed contents; packed columns count their buffers)."""
        if self._dict is not None:
            contents = self._dict
            total = sys.getsizeof(contents)
            for key, value in contents.items():
                total += sys.getsizeof(key) + sys.getsizeof(value)
                if isinstance(key, tuple):
                    total += sum(sys.getsizeof(part) for part in key)
            return total
        total = sys.getsizeof(self._buckets) + sys.getsizeof(self._hashes)
        total += sys.getsizeof(self._live)
        for kind, col in zip(self._key_kinds, self._key_cols):
            if col is None:
                continue
            total += sys.getsizeof(col)
            if kind == "o":
                total += sum(sys.getsizeof(part) for part in col)
        total += sys.getsizeof(self._values)
        if self._vkind == "o":
            total += sum(
                sys.getsizeof(value) for value in self._values
                if value is not None
            )
        return total


class _ColumnarItemsView(ItemsView):
    """Dict-style items view over a :class:`ColumnarMap` (re-iterable,
    sized, a Set) whose iteration takes the C-level column scan."""

    __slots__ = ()

    def __iter__(self):
        return self._mapping._iter_items()


class _ColumnarKeysView(KeysView):
    __slots__ = ()


class _ColumnarValuesView(ValuesView):
    __slots__ = ()

    def __iter__(self):
        return self._mapping._iter_values()


def _rebuild_columnar(
    arity: int, value_kind: str, items: list, spilled: bool
) -> ColumnarMap:
    """Unpickle helper: rebuild a :class:`ColumnarMap` from logical items."""
    rebuilt = ColumnarMap(arity, value_kind)
    if spilled:
        rebuilt._spill()
    for key, value in items:
        rebuilt[key] = value
    return rebuilt


class _NativeColumnarMap(ColumnarMap):
    """A :class:`ColumnarMap` whose entries live in the generated C
    kernel (``codegen/native.py``).

    Attachment works by ``__class__`` reassignment (both classes are
    slot-compatible, so flipping is free): the kernel wrapper sits in
    the ``_native`` slot and every hot method dispatches straight to it
    with zero overhead left on the pure class.  Any operation the
    packed C layout cannot represent — an int64 overflow, an int stored
    into a float column, a non-conforming key — *ejects* the map: the C
    entries are snapshotted in insertion order, the class flips back,
    the pure columnar layout is rebuilt (re-promoting columns as
    needed), and the operation reruns there.  Ejection is one-way and
    loses nothing; the map re-attaches at the next executor
    ``bind()`` only if its contents conform again.

    Pickling is inherited: ``__reduce__`` ships logical items, so maps
    crossing shard pipes arrive as pure ColumnarMaps and re-attach in
    the receiving worker's own kernel.
    """

    __slots__ = ()

    def _eject_native(self) -> None:
        wrapper = self._native
        items = wrapper.items_list()
        wrapper.release()
        self._native = None
        self.__class__ = ColumnarMap
        self._reset()
        for key, value in items:
            self[key] = value

    # -- hot-path dispatch --------------------------------------------------

    def add(self, key, value):
        return self._native.add(key, value)

    def get(self, key, default=None):
        return self._native.get(key, default)

    def __getitem__(self, key):
        value = self._native.get(key, _SENTINEL)
        if value is _SENTINEL:
            raise KeyError(key)
        return value

    def __contains__(self, key) -> bool:
        return self._native.get(key, _SENTINEL) is not _SENTINEL

    def __setitem__(self, key, value) -> None:
        self._native.set(key, value)

    def __delitem__(self, key) -> None:
        self._native.delete(key)

    def __len__(self) -> int:
        return self._native.length()

    def clear(self) -> None:
        self._native.clear()

    # -- rare mutators: cheaper correct than fast ---------------------------

    def pop(self, key, default=ColumnarMap._MISSING):
        self._eject_native()
        if default is ColumnarMap._MISSING:
            return self.pop(key)
        return self.pop(key, default)

    def popitem(self):
        self._eject_native()
        return self.popitem()

    # -- iteration (snapshot scans out of the kernel) -----------------------

    def scan_columns(self, positions) -> tuple:
        return self._native.scan_columns(tuple(positions))

    def reduce_scalar(self, mulpos, predicates, cmul=1):
        return self._native.reduce_scalar(mulpos, predicates, cmul)

    def _iter_items(self) -> Iterator[tuple]:
        cols = self._native.scan_columns(range(self.arity))
        return zip(zip(*cols[:-1]), cols[-1])

    def _iter_values(self) -> Iterator:
        return iter(self._native.scan_columns(())[0])

    def __iter__(self):
        cols = self._native.scan_columns(range(self.arity))
        return iter(zip(*cols[:-1]))

    # -- copying / accounting ----------------------------------------------

    def copy(self) -> ColumnarMap:
        clone = ColumnarMap(self.arity, self.value_kind)
        wrapper = self._native.clone(clone)
        if wrapper is None:  # C-side allocation failed: copy pure
            for key, value in self._iter_items():
                clone[key] = value
            return clone
        clone._native = wrapper
        clone.__class__ = _NativeColumnarMap
        return clone

    def storage_bytes(self) -> int:
        """Kernel-side bytes (slot columns + bucket table, as resized in
        C) — what keeps the memory-bench table honest under this lane."""
        return self._native.bytes_used()


_SENTINEL = object()
