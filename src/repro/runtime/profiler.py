"""Profiling: per-trigger timing, per-map update counts, memory estimates.

This reproduces the paper's demo readouts (Figure 4): "detailed profiling of
DBToaster's compiled code breaking down its overheads for each map, the
binary size, and finally the compile time".  Cache counters are not
observable from Python, so the profiler reports the architecture-level
drivers instead: statement/update counts and live map entries/bytes.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Mapping



@dataclass
class Profiler:
    """Collects event, statement and map-update statistics."""

    events: int = 0
    events_by_trigger: dict[str, int] = field(default_factory=dict)
    statement_runs: dict[str, int] = field(default_factory=dict)
    map_updates: dict[str, int] = field(default_factory=dict)

    def record_event(self, event) -> None:
        self.events += 1
        key = f"{'+' if event.sign == 1 else '-'}{event.relation}"
        self.events_by_trigger[key] = self.events_by_trigger.get(key, 0) + 1

    def record_batch(self, relation: str, sign: int, count: int) -> None:
        """One batched trigger dispatch covering ``count`` events."""
        self.events += count
        key = f"{'+' if sign == 1 else '-'}{relation}"
        self.events_by_trigger[key] = self.events_by_trigger.get(key, 0) + count

    def record_statement(self, target_map: str, updates: int) -> None:
        self.statement_runs[target_map] = self.statement_runs.get(target_map, 0) + 1
        self.map_updates[target_map] = self.map_updates.get(target_map, 0) + updates

    def report(self) -> str:
        lines = [f"events processed: {self.events}"]
        for key in sorted(self.events_by_trigger):
            lines.append(f"  {key}: {self.events_by_trigger[key]}")
        if self.map_updates:
            lines.append("map update counts:")
            for name in sorted(self.map_updates):
                lines.append(
                    f"  {name}: {self.map_updates[name]} updates over "
                    f"{self.statement_runs[name]} statement runs"
                )
        return "\n".join(lines)


def map_memory_bytes(maps: Mapping[str, Mapping]) -> dict[str, int]:
    """Approximate live bytes per map (keys + values + container overhead).

    Dict-backed maps sum the table plus each boxed key tuple, its parts
    and the boxed value; storage objects exposing ``storage_bytes()``
    (:class:`repro.runtime.storage.ColumnarMap`) report their packed
    columns the same way, so dict-vs-columnar numbers are comparable.
    """
    sizes: dict[str, int] = {}
    for name, contents in maps.items():
        measure = getattr(contents, "storage_bytes", None)
        if measure is not None:
            sizes[name] = measure()
            continue
        total = sys.getsizeof(contents)
        for key, value in contents.items():
            total += sys.getsizeof(key) + sys.getsizeof(value)
            if isinstance(key, tuple):
                total += sum(sys.getsizeof(part) for part in key)
        sizes[name] = total
    return sizes


def total_memory_bytes(maps: Mapping[str, Mapping]) -> int:
    return sum(map_memory_bytes(maps).values())


@dataclass
class CompileReport:
    """Timing and size breakdown of the compilation pipeline (Figure 4)."""

    parse_seconds: float
    compile_seconds: float
    codegen_seconds: float
    exec_seconds: float
    map_count: int
    statement_count: int
    python_source_bytes: int
    cpp_source_bytes: int

    @property
    def total_seconds(self) -> float:
        return (
            self.parse_seconds
            + self.compile_seconds
            + self.codegen_seconds
            + self.exec_seconds
        )

    def report(self) -> str:
        return "\n".join(
            [
                f"parse+bind+translate: {self.parse_seconds * 1e3:8.2f} ms",
                f"recursive compile:    {self.compile_seconds * 1e3:8.2f} ms",
                f"code generation:      {self.codegen_seconds * 1e3:8.2f} ms",
                f"exec (to bytecode):   {self.exec_seconds * 1e3:8.2f} ms",
                f"total:                {self.total_seconds * 1e3:8.2f} ms",
                f"maps: {self.map_count}   trigger statements: {self.statement_count}",
                f"generated Python: {self.python_source_bytes} bytes   "
                f"generated C++: {self.cpp_source_bytes} bytes",
            ]
        )


def profile_compilation(sql: str, catalog, name: str = "q") -> CompileReport:
    """Compile a query while timing each pipeline stage."""
    from repro.algebra.translate import translate_sql
    from repro.compiler.compile import compile_queries
    from repro.codegen.cppgen import generate_cpp
    from repro.codegen.pygen import CompiledExecutor, generate_module

    t0 = time.perf_counter()
    translated = translate_sql(sql, catalog, name=name)
    t1 = time.perf_counter()
    program = compile_queries([translated], catalog)
    t2 = time.perf_counter()
    python_source = generate_module(program)
    cpp_source = generate_cpp(program)
    t3 = time.perf_counter()
    executor = CompiledExecutor(program)
    executor.bind({name: {} for name in program.maps})
    t4 = time.perf_counter()

    return CompileReport(
        parse_seconds=t1 - t0,
        compile_seconds=t2 - t1,
        codegen_seconds=t3 - t2,
        exec_seconds=t4 - t3,
        map_count=len(program.maps),
        statement_count=program.statements_count(),
        python_source_bytes=len(python_source.encode()),
        cpp_source_bytes=len(cpp_source.encode()),
    )
