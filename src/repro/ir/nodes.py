"""Typed nodes of the imperative trigger IR.

The IR sits between the compiled delta program (``Statement``/``Expr``
trees, see :mod:`repro.compiler.program`) and the execution back ends.  It
is the loop-level language all three back ends share: :mod:`repro.codegen
.pygen` renders it to Python, :mod:`repro.codegen.cppgen` to C++, and the
interpreted executor (:mod:`repro.ir.interp`) walks it directly.  Real
DBToaster lowers through the analogous M3 language; DBSP separates its
circuit IR from execution the same way.

Two small expression and statement grammars:

* **Scalar expressions** — :class:`Const`, :class:`Name`, :class:`Sum`,
  :class:`Prod`, :class:`Neg`, :class:`SafeDiv`, :class:`Compare`,
  :class:`Lookup` (map lookup with a default — the ``LookupDefault`` of
  the issue), and :class:`KeyAt` (a position of the enclosing loop's key
  tuple, used only in loop filters).

* **Statements** — :class:`Assign`, :class:`Accum`, :class:`IfCond`,
  :class:`ForEachMap`, :class:`ForEachRow` (batch row loop),
  :class:`AddTo` (``map[key] += value`` with zero eviction),
  :class:`AppendTo`/:class:`FlushBuffer` (the two-phase pending buffer),
  :class:`LocalMapDecl`/:class:`MergeInto` (batch-delta accumulators),
  :class:`BufferDecl`, :class:`Clear`, and :class:`Block` (one compiled
  statement's lowering, carrying its provenance for comments, tracing and
  profiling).

Expressions are immutable and hashable (structural equality drives the
optimiser's CSE/hoisting); statements are immutable tuples of children, so
passes rebuild rather than mutate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Value = Union[int, float, str]

CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


class IRExpr:
    """Base class of IR scalar expressions."""

    __slots__ = ()

    def children(self) -> tuple["IRExpr", ...]:
        return ()


@dataclass(frozen=True, slots=True)
class Const(IRExpr):
    """A literal (number, or string used as a key value)."""

    value: Value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Name(IRExpr):
    """A reference to a bound scalar variable (param, loop var or temp)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Sum(IRExpr):
    """N-ary addition, evaluated left to right."""

    terms: tuple[IRExpr, ...]

    def children(self) -> tuple[IRExpr, ...]:
        return self.terms


@dataclass(frozen=True, slots=True)
class Prod(IRExpr):
    """N-ary multiplication, evaluated left to right."""

    factors: tuple[IRExpr, ...]

    def children(self) -> tuple[IRExpr, ...]:
        return self.factors


@dataclass(frozen=True, slots=True)
class Neg(IRExpr):
    """Arithmetic negation."""

    body: IRExpr

    def children(self) -> tuple[IRExpr, ...]:
        return (self.body,)


@dataclass(frozen=True, slots=True)
class SafeDiv(IRExpr):
    """Division with the calculus convention ``x / 0 == 0``."""

    left: IRExpr
    right: IRExpr

    def children(self) -> tuple[IRExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, slots=True)
class Compare(IRExpr):
    """A comparison; as a value it is 1/0, as a condition it guards."""

    op: str
    left: IRExpr
    right: IRExpr

    def children(self) -> tuple[IRExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, slots=True)
class Slot:
    """A map storage reference: a program map, or a trigger-local dict."""

    name: str
    local: bool = False

    def __repr__(self) -> str:
        return f"%{self.name}" if self.local else self.name


@dataclass(frozen=True, slots=True)
class Lookup(IRExpr):
    """``map.get((keys...), default)`` — the LookupDefault atom."""

    slot: Slot
    keys: tuple[IRExpr, ...]
    default: Value = 0

    def children(self) -> tuple[IRExpr, ...]:
        return self.keys


@dataclass(frozen=True, slots=True)
class KeyAt(IRExpr):
    """Position ``pos`` of the enclosing :class:`ForEachMap` entry key.

    Only valid inside a loop's ``filters``: it expresses the repeated-
    variable filter ``key[j] == key[i]`` without binding a name first.
    """

    pos: int


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class IRStmt:
    """Base class of IR statements."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Assign(IRStmt):
    """``name = expr`` (binds or rebinds a scalar local)."""

    name: str
    value: IRExpr


@dataclass(frozen=True, slots=True)
class Accum(IRStmt):
    """``name += expr`` (scalar accumulator update)."""

    name: str
    value: IRExpr


@dataclass(frozen=True, slots=True)
class IfCond(IRStmt):
    """Guard: run ``body`` when ``cond`` is non-zero / true."""

    cond: IRExpr
    body: tuple[IRStmt, ...]


@dataclass(frozen=True, slots=True)
class ForEachMap(IRStmt):
    """Iterate a map's entries, filtering and binding key positions.

    ``entry_var``/``value_var`` name the key tuple and ring value of the
    current entry; ``binds`` assigns key positions to scalar names (a
    ``None``-free subset after dead-binding pruning); ``filters`` keep only
    entries whose position equals the filter expression.  The sorted filter
    positions are the access pattern a backend may serve from a secondary
    index.
    """

    slot: Slot
    entry_var: str
    value_var: str
    binds: tuple[tuple[int, str], ...]
    filters: tuple[tuple[int, IRExpr], ...]
    body: tuple[IRStmt, ...]

    @property
    def pattern(self) -> tuple[int, ...]:
        return tuple(sorted(pos for pos, _ in self.filters))


@dataclass(frozen=True, slots=True)
class ForEachRow(IRStmt):
    """Batch row loop: unpack ``params`` from each row of ``rows_var``."""

    rows_var: str
    params: tuple[str, ...]
    body: tuple[IRStmt, ...]


@dataclass(frozen=True, slots=True)
class AddTo(IRStmt):
    """``slot[(keys...)] += value``.

    With ``evict`` (every program-map write) entries reaching zero are
    removed — the canonical GMR update all backends must implement the same
    way.  Local accumulator maps keep zeros (they are merged, then
    evicted at the program map).
    """

    slot: Slot
    keys: tuple[IRExpr, ...]
    value: IRExpr
    evict: bool = True


@dataclass(frozen=True, slots=True)
class AppendTo(IRStmt):
    """Append ``((keys...), value)`` to a pending two-phase buffer.

    ``target`` names the map the buffer will eventually flush into — the
    optimiser's ordering analyses need it (append order becomes the
    apply order).
    """

    buffer: str
    keys: tuple[IRExpr, ...]
    value: IRExpr
    target: Slot = Slot("")


@dataclass(frozen=True, slots=True)
class BufferDecl(IRStmt):
    """Declare an empty pending buffer (an ordered update list)."""

    name: str


@dataclass(frozen=True, slots=True)
class FlushBuffer(IRStmt):
    """Apply a pending buffer's updates to ``target`` in append order."""

    name: str
    target: Slot


@dataclass(frozen=True, slots=True)
class LocalMapDecl(IRStmt):
    """Declare an empty trigger-local accumulator map.

    ``arity`` is the key width of the map it will merge into (typed
    backends need it to declare the accumulator's key type).
    """

    name: str
    arity: int = 0


@dataclass(frozen=True, slots=True)
class MergeInto(IRStmt):
    """Add every entry of a local accumulator map into ``target``."""

    target: Slot
    source: Slot


@dataclass(frozen=True, slots=True)
class Clear(IRStmt):
    """Remove every entry of a map."""

    target: Slot


@dataclass(frozen=True, slots=True)
class Finalize(IRStmt):
    """Maintain a non-linear auxiliary map from its occurrence source.

    ``source`` is an occurrence map keyed ``(group..., value)`` →
    multiplicity; ``target`` is the auxiliary map keyed ``(group...)``
    holding, per group, the current MIN/MAX value (``kind`` ``"min"`` /
    ``"max"``) or the count of distinct present values (``"distinct"``).
    ``group_arity`` is the group prefix width of the source keys.

    ``pending`` names the trigger-local deltas just applied to the
    source this trigger run — two-phase buffers (``[(key, value), ...]``
    lists) or batch accumulators (``key → value`` dicts); multiple
    pendings for one source are summed key-wise before processing so a
    net-zero change across them is seen as no change.  For each net
    changed key the backend computes the pre-image value and updates the
    auxiliary incrementally; a delete of the current extremum re-derives
    the group's value from the source state (the eviction path — there
    is no closed-form delta).  An **empty** ``pending`` means "rebuild":
    clear the target and recompute it from a full scan of the source
    (the second-order restate path, also the shard-merge repair).
    """

    target: Slot
    source: Slot
    kind: str  # "min" | "max" | "distinct"
    group_arity: int
    pending: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class Block(IRStmt):
    """The lowering of one (or, after fusion, several) compiled statements.

    ``comments`` carry the source statements' reprs into generated code;
    ``targets`` name the maps the source statements maintain (profiler
    attribution); ``sources`` keep the originating
    :class:`~repro.compiler.program.Statement` objects for the debugger.
    """

    comments: tuple[str, ...]
    targets: tuple[str, ...]
    stmts: tuple[IRStmt, ...]
    sources: tuple = field(default=(), compare=False)


# ---------------------------------------------------------------------------
# Program containers
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MapDecl(IRStmt):
    """One maintained map: name, key arity, provenance and storage.

    ``storage`` is the compiler's storage-plan label for the map
    (``dict`` or ``columnar[int|float|object]``, see
    :mod:`repro.compiler.storage`) — stamped here so every IR dump
    documents how the runtime will lay the map out in memory.
    """

    name: str
    arity: int
    keys: tuple[str, ...]
    role: str
    defn: str  # repr of the defining calculus query
    storage: str = "dict"


@dataclass
class TriggerIR:
    """The imperative body of one (relation, sign) trigger."""

    relation: str
    sign: int
    name: str
    params: tuple[str, ...]
    body: tuple[IRStmt, ...]

    @property
    def key(self) -> tuple[str, int]:
        return (self.relation, self.sign)


@dataclass
class ProgramIR:
    """The lowered program: map declarations plus per-event and batch
    trigger bodies, with the optimisation pass list that produced them.

    ``batch_sinks`` records, per trigger, the batch sink chosen for every
    compiled statement (``direct`` / ``buffered`` / ``accumulator`` /
    ``second-order`` / ``per-row``) — the ``--dump-ir`` and benchmark
    coverage report of the batch-path rewriting."""

    maps: dict[str, MapDecl]
    triggers: dict[tuple[str, int], TriggerIR]
    batch_triggers: dict[tuple[str, int], TriggerIR]
    passes: tuple[str, ...] = ()
    batch_sinks: dict[tuple[str, int], tuple[tuple[str, str], ...]] = field(
        default_factory=dict
    )


# ---------------------------------------------------------------------------
# Traversal helpers shared by the optimiser, renderers and interpreter
# ---------------------------------------------------------------------------


def expr_names(expr: IRExpr) -> frozenset[str]:
    """Every scalar variable name referenced in ``expr``."""
    names: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Name):
            names.add(node.name)
        stack.extend(node.children())
    return frozenset(names)


def expr_slots(expr: IRExpr) -> frozenset[Slot]:
    """Every map slot ``expr`` reads (through :class:`Lookup`)."""
    slots: set[Slot] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Lookup):
            slots.add(node.slot)
        stack.extend(node.children())
    return frozenset(slots)


def expr_has_keyat(expr: IRExpr) -> bool:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, KeyAt):
            return True
        stack.extend(node.children())
    return False


def stmt_children(stmt: IRStmt) -> tuple[IRStmt, ...]:
    """Nested statements of ``stmt`` (one level)."""
    if isinstance(stmt, (IfCond, ForEachMap, ForEachRow)):
        return stmt.body
    if isinstance(stmt, Block):
        return stmt.stmts
    return ()


def stmt_exprs(stmt: IRStmt) -> tuple[IRExpr, ...]:
    """The scalar expressions evaluated directly by ``stmt``."""
    if isinstance(stmt, (Assign, Accum)):
        return (stmt.value,)
    if isinstance(stmt, IfCond):
        return (stmt.cond,)
    if isinstance(stmt, ForEachMap):
        return tuple(expr for _, expr in stmt.filters)
    if isinstance(stmt, (AddTo, AppendTo)):
        return stmt.keys + (stmt.value,)
    return ()


def walk_stmts(stmts) -> "list[IRStmt]":
    """Flatten a statement tree, pre-order."""
    out: list[IRStmt] = []
    stack = list(reversed(list(stmts)))
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        stack.extend(reversed(stmt_children(stmt)))
    return out


def written_slots(stmts) -> frozenset[Slot]:
    """Every slot the statements write (AddTo/Merge/Flush/Clear)."""
    out: set[Slot] = set()
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, AddTo):
            out.add(stmt.slot)
        elif isinstance(stmt, (MergeInto, FlushBuffer, Clear, Finalize)):
            out.add(stmt.target)
    return frozenset(out)


def read_slots(stmts) -> frozenset[Slot]:
    """Every slot the statements read (lookups, loops and merges)."""
    out: set[Slot] = set()
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, ForEachMap):
            out.add(stmt.slot)
        elif isinstance(stmt, (MergeInto, Finalize)):
            out.add(stmt.source)
        for expr in stmt_exprs(stmt):
            out.update(expr_slots(expr))
    return frozenset(out)


def assigned_names(stmts) -> frozenset[str]:
    """Every scalar name bound anywhere in the statements."""
    out: set[str] = set()
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, (Assign, Accum)):
            out.add(stmt.name)
        elif isinstance(stmt, ForEachMap):
            out.add(stmt.value_var)
            out.update(name for _, name in stmt.binds)
        elif isinstance(stmt, ForEachRow):
            out.update(stmt.params)
    return frozenset(out)


def used_names(stmts) -> frozenset[str]:
    """Every scalar name read by any expression in the statements."""
    out: set[str] = set()
    for stmt in walk_stmts(stmts):
        for expr in stmt_exprs(stmt):
            out.update(expr_names(expr))
    return frozenset(out)


def rewrite_exprs(stmt: IRStmt, fn) -> IRStmt:
    """Rebuild ``stmt`` (recursively) with ``fn`` applied to each expr."""
    if isinstance(stmt, Assign):
        return Assign(stmt.name, fn(stmt.value))
    if isinstance(stmt, Accum):
        return Accum(stmt.name, fn(stmt.value))
    if isinstance(stmt, IfCond):
        return IfCond(fn(stmt.cond), tuple(rewrite_exprs(s, fn) for s in stmt.body))
    if isinstance(stmt, ForEachMap):
        return ForEachMap(
            stmt.slot,
            stmt.entry_var,
            stmt.value_var,
            stmt.binds,
            tuple((pos, fn(expr)) for pos, expr in stmt.filters),
            tuple(rewrite_exprs(s, fn) for s in stmt.body),
        )
    if isinstance(stmt, ForEachRow):
        return ForEachRow(
            stmt.rows_var,
            stmt.params,
            tuple(rewrite_exprs(s, fn) for s in stmt.body),
        )
    if isinstance(stmt, AddTo):
        return AddTo(
            stmt.slot, tuple(fn(k) for k in stmt.keys), fn(stmt.value), stmt.evict
        )
    if isinstance(stmt, AppendTo):
        return AppendTo(
            stmt.buffer, tuple(fn(k) for k in stmt.keys), fn(stmt.value), stmt.target
        )
    if isinstance(stmt, Block):
        return Block(
            stmt.comments,
            stmt.targets,
            tuple(rewrite_exprs(s, fn) for s in stmt.stmts),
            stmt.sources,
        )
    return stmt


def substitute_names(expr: IRExpr, mapping: dict[str, str]) -> IRExpr:
    """Rename variable references in ``expr``."""
    if not mapping:
        return expr
    if isinstance(expr, Name):
        return Name(mapping.get(expr.name, expr.name))
    if isinstance(expr, Sum):
        return Sum(tuple(substitute_names(t, mapping) for t in expr.terms))
    if isinstance(expr, Prod):
        return Prod(tuple(substitute_names(f, mapping) for f in expr.factors))
    if isinstance(expr, Neg):
        return Neg(substitute_names(expr.body, mapping))
    if isinstance(expr, SafeDiv):
        return SafeDiv(
            substitute_names(expr.left, mapping),
            substitute_names(expr.right, mapping),
        )
    if isinstance(expr, Compare):
        return Compare(
            expr.op,
            substitute_names(expr.left, mapping),
            substitute_names(expr.right, mapping),
        )
    if isinstance(expr, Lookup):
        return Lookup(
            expr.slot,
            tuple(substitute_names(k, mapping) for k in expr.keys),
            expr.default,
        )
    return expr


def replace_expr(expr: IRExpr, old: IRExpr, new: IRExpr) -> IRExpr:
    """Structurally replace every occurrence of ``old`` inside ``expr``."""
    if expr == old:
        return new
    if isinstance(expr, Sum):
        return Sum(tuple(replace_expr(t, old, new) for t in expr.terms))
    if isinstance(expr, Prod):
        return Prod(tuple(replace_expr(f, old, new) for f in expr.factors))
    if isinstance(expr, Neg):
        return Neg(replace_expr(expr.body, old, new))
    if isinstance(expr, SafeDiv):
        return SafeDiv(
            replace_expr(expr.left, old, new), replace_expr(expr.right, old, new)
        )
    if isinstance(expr, Compare):
        return Compare(
            expr.op,
            replace_expr(expr.left, old, new),
            replace_expr(expr.right, old, new),
        )
    if isinstance(expr, Lookup):
        return Lookup(
            expr.slot, tuple(replace_expr(k, old, new) for k in expr.keys), expr.default
        )
    return expr


def rename_stmt(stmt: IRStmt, mapping: dict[str, str]) -> IRStmt:
    """Consistently rename scalar variables (binders and uses) in a
    statement tree — used when fusing loops with differing gensyms."""
    if not mapping:
        return stmt

    def rn(name: str) -> str:
        return mapping.get(name, name)

    def sub(expr: IRExpr) -> IRExpr:
        return substitute_names(expr, mapping)

    if isinstance(stmt, Assign):
        return Assign(rn(stmt.name), sub(stmt.value))
    if isinstance(stmt, Accum):
        return Accum(rn(stmt.name), sub(stmt.value))
    if isinstance(stmt, IfCond):
        return IfCond(sub(stmt.cond), tuple(rename_stmt(s, mapping) for s in stmt.body))
    if isinstance(stmt, ForEachMap):
        return ForEachMap(
            stmt.slot,
            rn(stmt.entry_var),
            rn(stmt.value_var),
            tuple((pos, rn(name)) for pos, name in stmt.binds),
            tuple((pos, sub(expr)) for pos, expr in stmt.filters),
            tuple(rename_stmt(s, mapping) for s in stmt.body),
        )
    if isinstance(stmt, ForEachRow):
        return ForEachRow(
            stmt.rows_var,
            tuple(rn(p) for p in stmt.params),
            tuple(rename_stmt(s, mapping) for s in stmt.body),
        )
    if isinstance(stmt, AddTo):
        return AddTo(
            stmt.slot, tuple(sub(k) for k in stmt.keys), sub(stmt.value), stmt.evict
        )
    if isinstance(stmt, AppendTo):
        return AppendTo(
            stmt.buffer, tuple(sub(k) for k in stmt.keys), sub(stmt.value), stmt.target
        )
    if isinstance(stmt, Block):
        return Block(
            stmt.comments,
            stmt.targets,
            tuple(rename_stmt(s, mapping) for s in stmt.stmts),
            stmt.sources,
        )
    return stmt
