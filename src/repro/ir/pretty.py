"""Human-readable rendering of the trigger IR (the ``--dump-ir`` view)."""

from __future__ import annotations

from repro.ir.nodes import (
    AddTo,
    AppendTo,
    Assign,
    Accum,
    Block,
    BufferDecl,
    Clear,
    Compare,
    Const,
    FlushBuffer,
    ForEachMap,
    ForEachRow,
    IfCond,
    IRExpr,
    IRStmt,
    KeyAt,
    LocalMapDecl,
    Lookup,
    MergeInto,
    Name,
    Neg,
    Prod,
    ProgramIR,
    SafeDiv,
    Sum,
    TriggerIR,
)


def expr_str(expr: IRExpr) -> str:
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Name):
        return expr.name
    if isinstance(expr, Sum):
        return "(" + " + ".join(expr_str(t) for t in expr.terms) + ")"
    if isinstance(expr, Prod):
        return " * ".join(_maybe_paren(f) for f in expr.factors)
    if isinstance(expr, Neg):
        return f"-{_maybe_paren(expr.body)}"
    if isinstance(expr, SafeDiv):
        return f"div0({expr_str(expr.left)}, {expr_str(expr.right)})"
    if isinstance(expr, Compare):
        return f"{expr_str(expr.left)} {expr.op} {expr_str(expr.right)}"
    if isinstance(expr, Lookup):
        keys = ", ".join(expr_str(k) for k in expr.keys)
        return f"lookup({expr.slot!r}[{keys}], {expr.default})"
    if isinstance(expr, KeyAt):
        return f"key[{expr.pos}]"
    return repr(expr)


def _maybe_paren(expr: IRExpr) -> str:
    text = expr_str(expr)
    if isinstance(expr, (Sum, Compare)):
        return text if text.startswith("(") else f"({text})"
    return text


def _key_str(keys) -> str:
    return "[" + ", ".join(expr_str(k) for k in keys) + "]"


def stmt_lines(stmt: IRStmt, indent: int = 0) -> list[str]:
    pad = "  " * indent
    if isinstance(stmt, Block):
        lines = [f"{pad}; {comment}" for comment in stmt.comments]
        for inner in stmt.stmts:
            lines.extend(stmt_lines(inner, indent))
        return lines
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.name} := {expr_str(stmt.value)}"]
    if isinstance(stmt, Accum):
        return [f"{pad}{stmt.name} += {expr_str(stmt.value)}"]
    if isinstance(stmt, IfCond):
        lines = [f"{pad}if {expr_str(stmt.cond)}:"]
        for inner in stmt.body:
            lines.extend(stmt_lines(inner, indent + 1))
        return lines
    if isinstance(stmt, ForEachMap):
        binds = ", ".join(f"{name}@{pos}" for pos, name in stmt.binds)
        filters = " ".join(f"[{pos}]=={expr_str(expr)}" for pos, expr in stmt.filters)
        head = f"{pad}foreach ({binds or '_'}; {stmt.value_var}) in {stmt.slot!r}"
        if filters:
            head += f" where {filters}"
        lines = [head + ":"]
        for inner in stmt.body:
            lines.extend(stmt_lines(inner, indent + 1))
        return lines
    if isinstance(stmt, ForEachRow):
        lines = [f"{pad}foreach row ({', '.join(stmt.params)}) in {stmt.rows_var}:"]
        for inner in stmt.body:
            lines.extend(stmt_lines(inner, indent + 1))
        return lines
    if isinstance(stmt, AddTo):
        op = "+=" if stmt.evict else "+=(keep0)"
        return [f"{pad}{stmt.slot!r}{_key_str(stmt.keys)} {op} {expr_str(stmt.value)}"]
    if isinstance(stmt, AppendTo):
        return [
            f"{pad}append {stmt.buffer} <- ({_key_str(stmt.keys)}, "
            f"{expr_str(stmt.value)})"
        ]
    if isinstance(stmt, BufferDecl):
        return [f"{pad}buffer {stmt.name}"]
    if isinstance(stmt, FlushBuffer):
        return [f"{pad}flush {stmt.name} -> {stmt.target!r}"]
    if isinstance(stmt, LocalMapDecl):
        return [f"{pad}localmap {stmt.name}"]
    if isinstance(stmt, MergeInto):
        return [f"{pad}merge {stmt.source!r} -> {stmt.target!r}"]
    if isinstance(stmt, Clear):
        return [f"{pad}clear {stmt.target!r}"]
    return [f"{pad}{stmt!r}"]


def trigger_str(trigger_ir: TriggerIR) -> str:
    head = f"trigger {trigger_ir.name}({', '.join(trigger_ir.params)}):"
    lines = [head]
    if not trigger_ir.body:
        lines.append("  pass")
    for stmt in trigger_ir.body:
        lines.extend(stmt_lines(stmt, 1))
    return "\n".join(lines)


def batch_sinks_str(ir: ProgramIR) -> str:
    """The per-statement batch-sink report (``--dump-ir``).

    For every trigger, how each compiled statement leaves the batch row
    loop: ``direct`` (applied per row), ``accumulator`` (first-order
    batch-delta local merged once), ``second-order`` (target cleared and
    restated once per batch — the delta-of-delta sink), or
    ``per-row``/``buffered`` (the whole per-event body replays per row).
    """
    lines = ["== batch sinks =="]
    kind = {1: "insert", -1: "delete"}
    for key in sorted(ir.batch_sinks, key=lambda k: (k[0], -k[1])):
        trigger_ir = ir.batch_triggers.get(key)
        if trigger_ir is not None:
            name = trigger_ir.name
        else:  # batch body not lowered (defensive): rebuild the name
            name = f"on_{kind[key[1]]}_{key[0].lower()}_batch"
        lines.append(f"{name}:")
        sinks = ir.batch_sinks[key]
        if not sinks:
            lines.append("  (no statements)")
        for statement, sink in sinks:
            lines.append(f"  [{sink:>12}] {statement}")
    return "\n".join(lines)


def program_str(ir: ProgramIR) -> str:
    """The full IR dump: map declarations, passes, batch sinks, every
    trigger body."""
    lines = ["== IR maps =="]
    for decl in ir.maps.values():
        role = f" ({decl.role})" if decl.role != "derived" else ""
        lines.append(
            f"{decl.name}[{','.join(decl.keys)}]{role} "
            f"<{decl.storage}> := {decl.defn}"
        )
    lines.append("")
    lines.append(
        "== IR passes ==\n" + (", ".join(ir.passes) if ir.passes else "(none)")
    )
    if ir.batch_sinks:
        lines.append("")
        lines.append(batch_sinks_str(ir))
    for key in sorted(ir.triggers, key=lambda k: (k[0], -k[1])):
        lines.append("")
        lines.append(trigger_str(ir.triggers[key]))
    for key in sorted(ir.batch_triggers, key=lambda k: (k[0], -k[1])):
        lines.append("")
        lines.append(trigger_str(ir.batch_triggers[key]))
    return "\n".join(lines)


def ir_stats(ir: ProgramIR) -> dict[str, int]:
    """Loop/statement counts for the compile trace summary."""
    from repro.ir.nodes import walk_stmts

    loops = blocks = hoisted = 0
    for trigger_ir in ir.triggers.values():
        for stmt in walk_stmts(trigger_ir.body):
            if isinstance(stmt, ForEachMap):
                loops += 1
            elif isinstance(stmt, Block):
                blocks += 1
            elif isinstance(stmt, Assign) and stmt.name.startswith("__h"):
                hoisted += 1
    return {
        "maps": len(ir.maps),
        "triggers": len(ir.triggers),
        "blocks": blocks,
        "loops": loops,
        "hoisted_temps": hoisted,
    }
