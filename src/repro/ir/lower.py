"""Lowering: compiled delta statements → imperative trigger IR.

One pass shared by every back end.  Each compiled
:class:`~repro.compiler.program.Statement` (``target[args] += rhs`` with
implied loops) lowers to a :class:`~repro.ir.nodes.Block`: nested map
loops, lift assignments, comparison guards, nested-aggregate accumulator
loops, and a final update whose shape depends on the *sink* — a direct
map apply, a two-phase pending-buffer append (self-reading triggers), or
a batch accumulator (scalar or keyed) for the ``*_batch`` variants.  The
per-event and batch trigger bodies are both derived from this one
statement lowering.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CodegenError, CompilationError
from repro.algebra.expr import (
    Add,
    AggSum,
    Cmp,
    Const as AConst,
    Div,
    Exists,
    Expr,
    Lift,
    MapRef,
    Mul,
    Neg as ANeg,
    Var,
    contains_relation,
    mul as alg_mul,
)
from repro.algebra.schema import output_vars
from repro.algebra.simplify import monomials
from repro.compiler.materialize import MapRegistry, Materializer
from repro.compiler.program import (
    CompiledProgram,
    Statement,
    Trigger,
    needs_buffering,
    validate_statement,
)
from repro.ir.nodes import (
    AddTo,
    AppendTo,
    Assign,
    Accum,
    Block,
    BufferDecl,
    Clear,
    Compare,
    Const,
    Finalize,
    FlushBuffer,
    ForEachMap,
    ForEachRow,
    IfCond,
    IRExpr,
    IRStmt,
    KeyAt,
    LocalMapDecl,
    Lookup,
    MapDecl,
    MergeInto,
    Name,
    Neg,
    Prod,
    ProgramIR,
    SafeDiv,
    Slot,
    Sum,
    TriggerIR,
    walk_stmts,
)


def _factors_of(expr: Expr) -> list[Expr]:
    if isinstance(expr, Mul):
        return list(expr.factors)
    return [expr]


def pending_buffer(target: str) -> str:
    """The pending-buffer local for a two-phase (buffered) target map."""
    return f"__pending_{target}"


class _Namer:
    """Per-trigger deterministic gensym source."""

    def __init__(self) -> None:
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"__{prefix}{self._counter}"


class _Sink:
    """How a statement's computed update leaves the loop nest."""

    def __init__(
        self,
        kind: str,  # "direct" | "buffered" | "scalar-acc" | "keyed-acc"
        target: str,
        args: tuple[Expr, ...],
        acc: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.target = target
        self.args = args
        self.acc = acc


class _StatementLowering:
    """Lowers one compiled statement into a list of IR statements.

    A direct port of the recursive product emitter: scalars fold into the
    running term list, comparisons become guards, lifts bind or test,
    map references open loops, and nested aggregates accumulate into
    temporaries emitted before their use site.
    """

    def __init__(
        self,
        statement: Statement,
        params: tuple[str, ...],
        sink: _Sink,
        namer: _Namer,
    ) -> None:
        self.statement = statement
        self.params = tuple(params)
        self.sink = sink
        self.namer = namer
        self.bound: set[str] = set()

    def lower(self) -> list[IRStmt]:
        expanded = monomials(self.statement.rhs)
        if not expanded:
            return []  # identically zero RHS: nothing to do
        if len(expanded) != 1:
            raise CodegenError(
                f"statement RHS must be a single monomial: {self.statement!r}"
            )
        coeff, factors = expanded[0]
        self.bound = set(self.params)
        terms: list[IRExpr] = [] if coeff == 1 else [Const(coeff)]
        return self._product(list(factors), terms)

    # -- the recursive product lowering -----------------------------------

    def _product(self, factors: list[Expr], terms: list[IRExpr]) -> list[IRStmt]:
        out: list[IRStmt] = []
        factors = list(factors)
        terms = list(terms)
        while factors:
            factor = factors[0]
            if isinstance(factor, (AggSum, Exists)):
                break  # handled by the dispatch below (flatten or guard)
            if isinstance(factor, Cmp) and self._is_scalar(factor):
                # Comparisons become guards: cheaper than multiplying 0/1
                # and they short-circuit the rest of the statement.
                left = self._scalar(factor.left, out)
                right = self._scalar(factor.right, out)
                out.append(
                    IfCond(
                        Compare(factor.op, left, right),
                        tuple(self._product(factors[1:], terms)),
                    )
                )
                return out
            if self._is_scalar(factor):
                terms.append(self._scalar(factor, out))
                factors.pop(0)
                continue
            break
        if not factors:
            out.extend(self._update(terms))
            return out

        factor = factors.pop(0)
        rest = factors

        if isinstance(factor, Lift):
            body = self._scalar(factor.body, out)
            if factor.var in self.bound:
                out.append(
                    IfCond(
                        Compare("=", Name(factor.var), body),
                        tuple(self._product(rest, list(terms))),
                    )
                )
                return out
            out.append(Assign(factor.var, body))
            self.bound.add(factor.var)
            out.extend(self._product(rest, list(terms)))
            return out

        if isinstance(factor, MapRef):
            out.extend(self._map_loop(factor, rest, terms))
            return out

        if isinstance(factor, AggSum):
            # Linear position: flatten (grouping is reconstituted by the
            # target accumulation; summed variables are invisible outside).
            out.extend(self._product(_factors_of(factor.body) + rest, list(terms)))
            return out

        if isinstance(factor, Exists):
            inner = factor.body
            unbound = [v for v in output_vars(inner) if v not in self.bound]
            if not unbound:
                # Scalar existence test: accumulate the body value, then
                # guard the rest of the statement on it being non-zero.
                acc = self._scalar_aggregate(inner, out)
                out.append(
                    IfCond(
                        Compare("!=", Name(acc), Const(0)),
                        tuple(self._product(rest, list(terms))),
                    )
                )
                return out
            if isinstance(inner, MapRef):
                out.extend(self._map_loop(inner, rest, terms, cap_value=True))
                return out
            raise CodegenError(f"unsupported Exists structure: {factor!r}")

        raise CodegenError(f"cannot lower factor {factor!r} in {self.statement!r}")

    def _map_loop(
        self,
        ref: MapRef,
        rest: list[Expr],
        terms: list[IRExpr],
        cap_value: bool = False,
    ) -> list[IRStmt]:
        arity = len(ref.args)
        if arity == 0:
            value: IRExpr = Lookup(Slot(ref.name), ())
            term = Compare("!=", value, Const(0)) if cap_value else value
            return self._product(rest, terms + [term])

        filters: list[tuple[int, IRExpr]] = []
        binds: list[tuple[int, str]] = []
        seen_here: dict[str, int] = {}
        for position, arg in enumerate(ref.args):
            if isinstance(arg, AConst):
                filters.append((position, Const(arg.value)))
            elif arg.name in self.bound:
                filters.append((position, Name(arg.name)))
            elif arg.name in seen_here:
                filters.append((position, KeyAt(seen_here[arg.name])))
            else:
                seen_here[arg.name] = position
                binds.append((position, arg.name))

        entry_var = self.namer.fresh("e")
        value_var = self.namer.fresh("v")
        for _, var in binds:
            self.bound.add(var)
        term = (
            Compare("!=", Name(value_var), Const(0))
            if cap_value
            else Name(value_var)
        )
        body = self._product(rest, terms + [term])
        for _, var in binds:
            self.bound.discard(var)
        return [
            ForEachMap(
                Slot(ref.name),
                entry_var,
                value_var,
                tuple(binds),
                tuple(filters),
                tuple(body),
            )
        ]

    def _update(self, terms: list[IRExpr]) -> list[IRStmt]:
        sink = self.sink
        value = _prod(terms)
        if sink.kind == "scalar-acc":
            return [Accum(sink.acc, value)]
        temp = self.namer.fresh("d")
        guard_body: list[IRStmt]
        if sink.kind == "keyed-acc":
            guard_body = [
                AddTo(
                    Slot(sink.acc, local=True),
                    self._key_exprs(),
                    Name(temp),
                    evict=False,
                )
            ]
        elif sink.kind == "buffered":
            guard_body = [
                AppendTo(
                    pending_buffer(sink.target),
                    self._key_exprs(),
                    Name(temp),
                    target=Slot(sink.target),
                )
            ]
        else:
            guard_body = [AddTo(Slot(sink.target), self._key_exprs(), Name(temp))]
        return [
            Assign(temp, value),
            IfCond(Compare("!=", Name(temp), Const(0)), tuple(guard_body)),
        ]

    def _key_exprs(self) -> tuple[IRExpr, ...]:
        scratch: list[IRStmt] = []
        keys = tuple(self._scalar(arg, scratch) for arg in self.sink.args)
        if scratch:
            raise CodegenError(
                f"key expressions of {self.statement!r} must be loop-free"
            )
        return keys

    # -- scalar expressions ------------------------------------------------

    def _is_scalar(self, expr: Expr) -> bool:
        """True when the factor has no unbound outputs (pure value)."""
        if isinstance(expr, (AConst, Var, Cmp, Div)):
            return True
        if isinstance(expr, MapRef):
            return all(isinstance(a, AConst) or a.name in self.bound for a in expr.args)
        if isinstance(expr, Lift):
            return False
        if isinstance(expr, (AggSum, Exists)):
            return all(v in self.bound for v in output_vars(expr))
        if isinstance(expr, (Mul, Add, ANeg)):
            return all(self._is_scalar(c) for c in expr.children())
        return False

    def _scalar(self, expr: Expr, prelude: list[IRStmt]) -> IRExpr:
        """Translate a contextually scalar expression.

        Nested aggregates (AggSum/Exists in value position) need loops:
        those are appended to ``prelude`` and the aggregate becomes a
        reference to the accumulator temp.
        """
        if isinstance(expr, AConst):
            return Const(expr.value)
        if isinstance(expr, Var):
            return Name(expr.name)
        if isinstance(expr, ANeg):
            return Neg(self._scalar(expr.body, prelude))
        if isinstance(expr, Add):
            return Sum(tuple(self._scalar(t, prelude) for t in expr.terms))
        if isinstance(expr, Mul):
            return Prod(tuple(self._scalar(f, prelude) for f in expr.factors))
        if isinstance(expr, Div):
            return SafeDiv(
                self._scalar(expr.left, prelude), self._scalar(expr.right, prelude)
            )
        if isinstance(expr, Cmp):
            return Compare(
                expr.op,
                self._scalar(expr.left, prelude),
                self._scalar(expr.right, prelude),
            )
        if isinstance(expr, MapRef):
            keys = tuple(self._scalar(a, prelude) for a in expr.args)
            return Lookup(Slot(expr.name), keys)
        if isinstance(expr, Exists):
            acc = self._scalar_aggregate(expr.body, prelude)
            return Compare("!=", Name(acc), Const(0))
        if isinstance(expr, AggSum):
            return Name(self._scalar_aggregate(expr, prelude))
        raise CodegenError(f"unsupported scalar expression {expr!r}")

    def _scalar_aggregate(self, expr: Expr, prelude: list[IRStmt]) -> str:
        """Lower a nested aggregate into accumulator loops.

        The loops land in ``prelude`` (before the statement that uses the
        value); the accumulator temp's name is returned.
        """
        acc = self.namer.fresh("acc")
        prelude.append(Assign(acc, Const(0)))
        body = expr.body if isinstance(expr, AggSum) else expr
        saved_bound = set(self.bound)
        saved_sink = self.sink
        self.sink = _Sink("scalar-acc", saved_sink.target, (), acc=acc)
        try:
            for coeff, factors in monomials(body):
                prefix = [] if coeff == 1 else [AConst(coeff)]
                prelude.extend(self._product(prefix + list(factors), []))
                self.bound = set(saved_bound)
        finally:
            self.sink = saved_sink
        return acc


def _prod(terms: list[IRExpr]) -> IRExpr:
    if not terms:
        return Const(1)
    if len(terms) == 1:
        return terms[0]
    return Prod(tuple(terms))


# ---------------------------------------------------------------------------
# Trigger- and program-level lowering
# ---------------------------------------------------------------------------


def lower_statement(
    statement: Statement,
    params: tuple[str, ...],
    sink: _Sink,
    namer: _Namer,
) -> Block:
    """Lower one compiled statement to a :class:`Block`."""
    stmts = _StatementLowering(statement, params, sink, namer).lower()
    return Block(
        comments=(repr(statement),),
        targets=(statement.target,),
        stmts=tuple(stmts),
        sources=(statement,),
    )


def _finalize_blocks(
    finalizers: dict,
    targets,
    pending_of,
) -> list[IRStmt]:
    """One :class:`Finalize` block per (occurrence target, auxiliary spec).

    ``pending_of(occ)`` names the per-batch delta accumulators for the
    occurrence map — pending buffers (per-event bodies, left intact by the
    flush) or keyed batch accumulators.  An empty tuple requests a full
    rebuild of the auxiliary map instead.
    """
    blocks: list[IRStmt] = []
    for occ in targets:
        for spec in finalizers.get(occ, ()):
            blocks.append(
                Block(
                    comments=(
                        f"finalize {spec.kind} cache {spec.aux} from {occ}",
                    ),
                    targets=(spec.aux,),
                    stmts=(
                        Finalize(
                            target=Slot(spec.aux),
                            source=Slot(occ),
                            kind=spec.kind,
                            group_arity=spec.group_arity,
                            pending=tuple(pending_of(occ)),
                        ),
                    ),
                    sources=(),
                )
            )
    return blocks


def lower_trigger(
    trigger: Trigger,
    namer: Optional[_Namer] = None,
    finalizers: Optional[dict] = None,
) -> TriggerIR:
    """The per-event trigger body (with two-phase buffering when needed)."""
    namer = namer or _Namer()
    finalizers = finalizers or {}
    written = sorted({s.target for s in trigger.statements})
    finalized = [name for name in written if name in finalizers]
    # Finalized occurrence maps always buffer: the pending buffer doubles
    # as the Finalize step's delta (the flush reads but keeps it).
    buffered = needs_buffering(trigger.statements) or bool(finalized)
    body: list[IRStmt] = []
    if buffered:
        body.extend(BufferDecl(pending_buffer(name)) for name in written)
    for statement in trigger.statements:
        kind = "buffered" if buffered else "direct"
        sink = _Sink(kind, statement.target, statement.args)
        body.append(lower_statement(statement, trigger.params, sink, namer))
    if buffered:
        body.extend(FlushBuffer(pending_buffer(name), Slot(name)) for name in written)
    body.extend(
        _finalize_blocks(
            finalizers, finalized, lambda occ: (pending_buffer(occ),)
        )
    )
    return TriggerIR(
        relation=trigger.relation,
        sign=trigger.sign,
        name=trigger.name,
        params=trigger.params,
        body=tuple(body),
    )


# ---------------------------------------------------------------------------
# Second-order batch planning (delta-of-delta absorption)
# ---------------------------------------------------------------------------


class SecondOrderPlan:
    """How a self-reading trigger absorbs a whole batch.

    ``base`` are the statements whose per-event delta is batch-independent
    (:func:`repro.algebra.delta.batch_delta_order` 1 on their targets):
    they run in the row loop with first-order accumulation.  ``restate``
    maps the order-2 targets — whose deltas shift as the batch applies —
    to once-per-batch *recompute* statements derived from the target's
    defining query, rewritten over already-maintained maps.  The
    second-order deltas telescope across the batch, so clearing the target
    and re-evaluating its definition against the post-batch base maps
    yields exactly the per-event end state (gated on exact-integer ring
    values so float addition order cannot diverge).  ``order`` sequences
    the restatements so one recompute may read another's fresh value.
    """

    def __init__(
        self,
        base: list[Statement],
        restate: dict[str, list[Statement]],
        order: list[str],
    ) -> None:
        self.base = base
        self.restate = restate
        self.order = order


def _recompute_statements(
    map_def, registry: MapRegistry
) -> Optional[list[Statement]]:
    """Statements re-evaluating a map's definition over maintained maps.

    Every base-relation atom and materialisable aggregate of the defining
    query must resolve to a map the program *already* maintains (the
    registry is seeded read-only; any attempt to create a new map rejects
    the plan).  Returns one ``target[keys] += monomial`` statement per
    monomial of the definition body, or ``None`` when the definition
    cannot be restated from existing maps.
    """
    defn = map_def.defn
    if not isinstance(defn, AggSum):
        return None
    materializer = Materializer(registry, bound=(), derived_maps=True)
    statements: list[Statement] = []
    for coeff, factors in monomials(defn.body):
        bound: set[str] = set()
        parts: list[Expr] = [] if coeff == 1 else [AConst(coeff)]
        for factor in factors:
            parts.append(materializer.rewrite(factor, frozenset(bound)))
            bound.update(output_vars(factor))
        rhs = alg_mul(*parts)
        if registry.pending or contains_relation(rhs):
            return None
        statement = Statement(
            target=map_def.name,
            args=tuple(Var(key) for key in map_def.keys),
            rhs=rhs,
            loop_vars=tuple(map_def.keys),
        )
        try:
            validate_statement(statement)
        except CompilationError:
            return None
        statements.append(statement)
    return statements


def plan_second_order(
    trigger: Trigger, program: CompiledProgram
) -> Optional[SecondOrderPlan]:
    """Derive the second-order batch plan for a self-reading trigger.

    Per target, the delta-of-delta of its defining query with respect to
    two formal events of this trigger's ``(relation, sign)`` decides the
    sink: a vanishing second-order delta means the per-row deltas sum
    (first-order accumulation in the row loop); a non-vanishing one means
    the target is *restated* once per batch from its definition.  The plan
    is rejected — falling back to the per-row loop — when any of the
    soundness gates fails:

    * every written map must have provably exact (integer) ring values, so
      the re-ordered additions stay bit-identical to per-event execution;
    * first-order statements must read no map the trigger writes (their
      inputs are constant across the batch);
    * every restated definition must be expressible over maps the program
      already maintains, must not read its own target, and the restate
      dependencies must be acyclic.
    """
    from repro.algebra.delta import Event, batch_delta_order
    from repro.ir.optimize import exact_value_maps

    if not trigger.statements:
        return None
    written = {s.target for s in trigger.statements}
    exact = exact_value_maps(program)
    if not written <= exact:
        return None
    event = Event(trigger.relation, trigger.sign, trigger.params)
    restate_targets = sorted(
        name
        for name in written
        if batch_delta_order(program.maps[name].defn, event) >= 2
    )
    if not restate_targets:
        return None
    base = [s for s in trigger.statements if s.target not in restate_targets]
    if any(s.reads() & written for s in base):
        return None

    registry = MapRegistry.seeded(program.maps)
    restate: dict[str, list[Statement]] = {}
    restate_reads: dict[str, set[str]] = {}
    for name in restate_targets:
        statements = _recompute_statements(program.maps[name], registry)
        if statements is None:
            return None
        reads = set().union(*(s.reads() for s in statements)) if statements else set()
        if name in reads:
            return None
        restate[name] = statements
        restate_reads[name] = reads & set(restate_targets)

    # Topologically order the restatements (reader after read).
    order: list[str] = []
    placed: set[str] = set()
    remaining = list(restate_targets)
    while remaining:
        ready = [n for n in remaining if restate_reads[n] <= placed]
        if not ready:
            return None  # mutually recursive restatements
        order.extend(ready)
        placed.update(ready)
        remaining = [n for n in remaining if n not in placed]
    return SecondOrderPlan(base, restate, order)


def _accumulates(
    statement: Statement,
    trigger: Trigger,
    patterns: dict[str, set[tuple[int, ...]]],
) -> bool:
    """Whether a batch-independent statement accumulates its batch delta
    locally before touching the target map.

    Always worthwhile for scalar targets (a local add per row).  Keyed
    targets accumulate when keys are expected to repeat across the batch
    (fewer key positions than event parameters — group-by style) or when
    the target maintains secondary indexes (hoists index maintenance out
    of the row loop); occurrence-style maps keyed by the whole event tuple
    apply directly.
    """
    if not statement.args:
        return True
    if patterns.get(statement.target):
        return True
    return len(statement.args) < len(trigger.params)


def _lower_accumulated(
    statements: list[Statement],
    trigger: Trigger,
    patterns: dict[str, set[tuple[int, ...]]],
    namer: _Namer,
    sinks: dict[int, str],
    finalizers: Optional[dict] = None,
) -> list[IRStmt]:
    """The accumulate-then-merge row loop over ``statements``.

    Statements whose batch delta is worth accumulating get a trigger-local
    accumulator (scalar or keyed) merged into the program map once after
    the loop; the rest apply directly per row.  ``sinks`` receives the
    chosen sink per statement position (reporting).  Statements writing a
    finalized occurrence map always accumulate — the keyed accumulators
    double as the appended :class:`Finalize` steps' batch deltas.
    """
    finalizers = finalizers or {}
    accs: dict[int, str] = {}
    for position, statement in enumerate(statements):
        if statement.target in finalizers or _accumulates(
            statement, trigger, patterns
        ):
            accs[position] = f"__b{position}"
    body: list[IRStmt] = []
    for position, statement in enumerate(statements):
        acc = accs.get(position)
        if acc is None:
            continue
        body.append(
            Assign(acc, Const(0))
            if not statement.args
            else LocalMapDecl(acc, arity=len(statement.args))
        )
    row_blocks: list[IRStmt] = []
    for position, statement in enumerate(statements):
        acc = accs.get(position)
        if acc is None:
            sink = _Sink("direct", statement.target, statement.args)
            sinks[position] = "direct"
        elif not statement.args:
            sink = _Sink("scalar-acc", statement.target, statement.args, acc=acc)
            sinks[position] = "accumulator"
        else:
            sink = _Sink("keyed-acc", statement.target, statement.args, acc=acc)
            sinks[position] = "accumulator"
        row_blocks.append(lower_statement(statement, trigger.params, sink, namer))
    body.append(ForEachRow("__cols", trigger.params, tuple(row_blocks)))
    for position, statement in enumerate(statements):
        acc = accs.get(position)
        if acc is None:
            continue
        if not statement.args:
            body.append(
                Block(
                    comments=(),
                    targets=(statement.target,),
                    stmts=(
                        IfCond(
                            Compare("!=", Name(acc), Const(0)),
                            (AddTo(Slot(statement.target), (), Name(acc)),),
                        ),
                    ),
                    sources=(statement,),
                )
            )
        else:
            body.append(
                Block(
                    comments=(),
                    targets=(statement.target,),
                    stmts=(MergeInto(Slot(statement.target), Slot(acc, local=True)),),
                    sources=(statement,),
                )
            )
    pending_accs: dict[str, list[str]] = {}
    for position, statement in enumerate(statements):
        if statement.target in finalizers and position in accs:
            pending_accs.setdefault(statement.target, []).append(accs[position])
    body.extend(
        _finalize_blocks(
            finalizers, sorted(pending_accs), lambda occ: pending_accs[occ]
        )
    )
    return body


def _lower_second_order(
    trigger: Trigger,
    plan: SecondOrderPlan,
    patterns: dict[str, set[tuple[int, ...]]],
    namer: _Namer,
    finalizers: Optional[dict] = None,
) -> tuple[tuple[IRStmt, ...], tuple[tuple[str, str], ...]]:
    """The accumulate-then-flush batch body of a second-order plan.

    First-order (base) statements run in the row loop with batch-delta
    accumulation; then every order-2 target is restated once — cleared and
    re-evaluated from its definition over the post-batch base maps (the
    telescoped second-order correction).  All clears precede all
    recomputes so one restatement may read another's fresh value, and so
    the recompute loops stay fusable.
    """
    base_sinks: dict[int, str] = {}
    body = _lower_accumulated(plan.base, trigger, patterns, namer, base_sinks)
    for target in plan.order:
        body.append(
            Block(
                comments=(f"second-order flush: restate {target}",),
                targets=(target,),
                stmts=(Clear(Slot(target)),),
                sources=(),
            )
        )
    for target in plan.order:
        for statement in plan.restate[target]:
            sink = _Sink("direct", statement.target, statement.args)
            body.append(lower_statement(statement, (), sink, namer))

    # Restated occurrence maps have no per-batch delta accumulator, so
    # their auxiliary caches are rebuilt from the post-batch state.
    finalizers = finalizers or {}
    finalized = sorted(
        {s.target for s in trigger.statements if s.target in finalizers}
    )
    body.extend(_finalize_blocks(finalizers, finalized, lambda occ: ()))

    base_order = {id(s): base_sinks[i] for i, s in enumerate(plan.base)}
    report = tuple(
        (repr(statement), base_order.get(id(statement), "second-order"))
        for statement in trigger.statements
    )
    return tuple(body), report


def lower_trigger_batch(
    trigger: Trigger,
    per_event: TriggerIR,
    patterns: dict[str, set[tuple[int, ...]]],
    namer: Optional[_Namer] = None,
    program: Optional[CompiledProgram] = None,
    second_order: bool = True,
) -> tuple[TriggerIR, tuple[tuple[str, str], ...]]:
    """The batch trigger body, derived from the same statement lowering.

    Returns the trigger IR plus the per-statement sink report.  Three
    shapes, by how the trigger's deltas behave across a batch:

    * *independent* triggers (no statement reads a map the trigger
      writes) accumulate first-order batch deltas in locals flushed once
      after the row loop;
    * *self-reading* triggers whose delta-of-delta analysis admits a
      :class:`SecondOrderPlan` accumulate their first-order statements and
      restate the order-2 targets once per batch;
    * everything else runs the per-event body once per row (the fallback,
      reported as ``per-row``/``buffered``).
    """
    namer = namer or _Namer()
    name = f"{trigger.name}_batch"
    finalizers = program.finalizers if program is not None else {}
    if not trigger.statements:
        return (
            TriggerIR(trigger.relation, trigger.sign, name, trigger.params, ()),
            (),
        )

    written = {s.target for s in trigger.statements}
    independent = not any(s.reads() & written for s in trigger.statements)

    if not independent and second_order and program is not None:
        plan = plan_second_order(trigger, program)
        if plan is not None:
            body, report = _lower_second_order(
                trigger, plan, patterns, namer, finalizers
            )
            return (
                TriggerIR(trigger.relation, trigger.sign, name, trigger.params, body),
                report,
            )

    if independent:
        sinks: dict[int, str] = {}
        accumulated = _lower_accumulated(
            trigger.statements, trigger, patterns, namer, sinks, finalizers
        )
        if any(kind == "accumulator" for kind in sinks.values()):
            report = tuple(
                (repr(s), sinks[i]) for i, s in enumerate(trigger.statements)
            )
            return (
                TriggerIR(
                    trigger.relation,
                    trigger.sign,
                    name,
                    trigger.params,
                    tuple(accumulated),
                ),
                report,
            )

    # Reuse the (already optimised) per-event blocks row by row.
    fallback = "buffered" if needs_buffering(trigger.statements) else "per-row"
    report = tuple((repr(s), fallback) for s in trigger.statements)
    return (
        TriggerIR(
            trigger.relation,
            trigger.sign,
            name,
            trigger.params,
            (ForEachRow("__cols", trigger.params, per_event.body),),
        ),
        report,
    )


def collect_patterns_ir(triggers) -> dict[str, set[tuple[int, ...]]]:
    """Access patterns needing secondary indexes, from the lowered loops.

    A pattern is the sorted tuple of key positions a partially-bound map
    loop filters on — real DBToaster's in/out patterns.  Loops whose
    filters reference the key tuple itself (repeated loop variables) scan.
    """
    patterns: dict[str, set[tuple[int, ...]]] = {}
    for trigger_ir in triggers:
        for stmt in walk_stmts(trigger_ir.body):
            if not isinstance(stmt, ForEachMap) or stmt.slot.local:
                continue
            if not stmt.binds or not stmt.filters:
                continue
            if any(isinstance(expr, KeyAt) for _, expr in stmt.filters):
                continue
            patterns.setdefault(stmt.slot.name, set()).add(stmt.pattern)
    return patterns


def lower_program(
    program: CompiledProgram,
    optimize: bool = True,
    passes: Optional[tuple[str, ...]] = None,
    second_order: bool = True,
) -> ProgramIR:
    """Lower (and optionally optimise) a whole compiled program.

    ``second_order=False`` disables the delta-of-delta batch sink (the
    self-reading triggers fall back to the per-row loop) — the ablation
    knob for the higher-order batching experiment.

    The result is cached on the program object: every back end asking for
    the same ``(optimize, passes, second_order)`` configuration shares one
    ProgramIR.
    """
    from repro.compiler.storage import analyze_storage
    from repro.ir.optimize import DEFAULT_PASSES, optimize_program

    if passes is not None:
        wanted = tuple(passes)
    else:
        wanted = DEFAULT_PASSES if optimize else ()
    cache = program.__dict__.setdefault("_ir_cache", {})
    cached = cache.get((wanted, second_order))
    if cached is not None:
        return cached

    storage_plan = analyze_storage(program)
    maps = {
        name: MapDecl(
            name=name,
            arity=map_def.arity,
            keys=map_def.keys,
            role=map_def.role,
            defn=repr(map_def.defn),
            storage=storage_plan.storage_for(name).label,
        )
        for name, map_def in program.maps.items()
    }
    triggers: dict[tuple[str, int], TriggerIR] = {}
    namers: dict[tuple[str, int], _Namer] = {}
    for key, trigger in program.triggers.items():
        namer = _Namer()
        namers[key] = namer
        triggers[key] = lower_trigger(trigger, namer, program.finalizers)

    ir = ProgramIR(maps=maps, triggers=triggers, batch_triggers={}, passes=())
    if wanted:
        ir = optimize_program(ir, program, wanted)

    # Batch variants are derived from the (optimised) per-event bodies so
    # both variants share one loop-level lowering; the acc-based variants
    # re-lower statements with redirected sinks and go through the same
    # pass pipeline.
    patterns = collect_patterns_ir(ir.triggers.values())
    batch: dict[tuple[str, int], TriggerIR] = {}
    sinks: dict[tuple[str, int], tuple[tuple[str, str], ...]] = {}
    for key, trigger in program.triggers.items():
        batch[key], sinks[key] = lower_trigger_batch(
            trigger,
            ir.triggers[key],
            patterns,
            namers[key],
            program=program,
            second_order=second_order,
        )
    ir.batch_triggers = batch
    ir.batch_sinks = sinks
    if wanted:
        ir = optimize_program(ir, program, wanted, batch_only=True)
    cache[(wanted, second_order)] = ir
    return ir
