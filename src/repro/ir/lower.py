"""Lowering: compiled delta statements → imperative trigger IR.

One pass shared by every back end.  Each compiled
:class:`~repro.compiler.program.Statement` (``target[args] += rhs`` with
implied loops) lowers to a :class:`~repro.ir.nodes.Block`: nested map
loops, lift assignments, comparison guards, nested-aggregate accumulator
loops, and a final update whose shape depends on the *sink* — a direct
map apply, a two-phase pending-buffer append (self-reading triggers), or
a batch accumulator (scalar or keyed) for the ``*_batch`` variants.  The
per-event and batch trigger bodies are both derived from this one
statement lowering.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CodegenError
from repro.algebra.expr import (
    Add,
    AggSum,
    Cmp,
    Const as AConst,
    Div,
    Exists,
    Expr,
    Lift,
    MapRef,
    Mul,
    Neg as ANeg,
    Var,
)
from repro.algebra.schema import output_vars
from repro.algebra.simplify import monomials
from repro.compiler.program import (
    CompiledProgram,
    Statement,
    Trigger,
    needs_buffering,
)
from repro.ir.nodes import (
    AddTo,
    AppendTo,
    Assign,
    Accum,
    Block,
    BufferDecl,
    Compare,
    Const,
    FlushBuffer,
    ForEachMap,
    ForEachRow,
    IfCond,
    IRExpr,
    IRStmt,
    KeyAt,
    LocalMapDecl,
    Lookup,
    MapDecl,
    MergeInto,
    Name,
    Neg,
    Prod,
    ProgramIR,
    SafeDiv,
    Slot,
    Sum,
    TriggerIR,
    walk_stmts,
)


def _factors_of(expr: Expr) -> list[Expr]:
    if isinstance(expr, Mul):
        return list(expr.factors)
    return [expr]


def pending_buffer(target: str) -> str:
    """The pending-buffer local for a two-phase (buffered) target map."""
    return f"__pending_{target}"


class _Namer:
    """Per-trigger deterministic gensym source."""

    def __init__(self) -> None:
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"__{prefix}{self._counter}"


class _Sink:
    """How a statement's computed update leaves the loop nest."""

    def __init__(
        self,
        kind: str,  # "direct" | "buffered" | "scalar-acc" | "keyed-acc"
        target: str,
        args: tuple[Expr, ...],
        acc: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.target = target
        self.args = args
        self.acc = acc


class _StatementLowering:
    """Lowers one compiled statement into a list of IR statements.

    A direct port of the recursive product emitter: scalars fold into the
    running term list, comparisons become guards, lifts bind or test,
    map references open loops, and nested aggregates accumulate into
    temporaries emitted before their use site.
    """

    def __init__(
        self,
        statement: Statement,
        params: tuple[str, ...],
        sink: _Sink,
        namer: _Namer,
    ) -> None:
        self.statement = statement
        self.params = tuple(params)
        self.sink = sink
        self.namer = namer
        self.bound: set[str] = set()

    def lower(self) -> list[IRStmt]:
        expanded = monomials(self.statement.rhs)
        if not expanded:
            return []  # identically zero RHS: nothing to do
        if len(expanded) != 1:
            raise CodegenError(
                f"statement RHS must be a single monomial: {self.statement!r}"
            )
        coeff, factors = expanded[0]
        self.bound = set(self.params)
        terms: list[IRExpr] = [] if coeff == 1 else [Const(coeff)]
        return self._product(list(factors), terms)

    # -- the recursive product lowering -----------------------------------

    def _product(self, factors: list[Expr], terms: list[IRExpr]) -> list[IRStmt]:
        out: list[IRStmt] = []
        factors = list(factors)
        terms = list(terms)
        while factors:
            factor = factors[0]
            if isinstance(factor, (AggSum, Exists)):
                break  # handled by the dispatch below (flatten or guard)
            if isinstance(factor, Cmp) and self._is_scalar(factor):
                # Comparisons become guards: cheaper than multiplying 0/1
                # and they short-circuit the rest of the statement.
                left = self._scalar(factor.left, out)
                right = self._scalar(factor.right, out)
                out.append(
                    IfCond(
                        Compare(factor.op, left, right),
                        tuple(self._product(factors[1:], terms)),
                    )
                )
                return out
            if self._is_scalar(factor):
                terms.append(self._scalar(factor, out))
                factors.pop(0)
                continue
            break
        if not factors:
            out.extend(self._update(terms))
            return out

        factor = factors.pop(0)
        rest = factors

        if isinstance(factor, Lift):
            body = self._scalar(factor.body, out)
            if factor.var in self.bound:
                out.append(
                    IfCond(
                        Compare("=", Name(factor.var), body),
                        tuple(self._product(rest, list(terms))),
                    )
                )
                return out
            out.append(Assign(factor.var, body))
            self.bound.add(factor.var)
            out.extend(self._product(rest, list(terms)))
            return out

        if isinstance(factor, MapRef):
            out.extend(self._map_loop(factor, rest, terms))
            return out

        if isinstance(factor, AggSum):
            # Linear position: flatten (grouping is reconstituted by the
            # target accumulation; summed variables are invisible outside).
            out.extend(self._product(_factors_of(factor.body) + rest, list(terms)))
            return out

        if isinstance(factor, Exists):
            inner = factor.body
            unbound = [v for v in output_vars(inner) if v not in self.bound]
            if not unbound:
                # Scalar existence test: accumulate the body value, then
                # guard the rest of the statement on it being non-zero.
                acc = self._scalar_aggregate(inner, out)
                out.append(
                    IfCond(
                        Compare("!=", Name(acc), Const(0)),
                        tuple(self._product(rest, list(terms))),
                    )
                )
                return out
            if isinstance(inner, MapRef):
                out.extend(self._map_loop(inner, rest, terms, cap_value=True))
                return out
            raise CodegenError(f"unsupported Exists structure: {factor!r}")

        raise CodegenError(f"cannot lower factor {factor!r} in {self.statement!r}")

    def _map_loop(
        self,
        ref: MapRef,
        rest: list[Expr],
        terms: list[IRExpr],
        cap_value: bool = False,
    ) -> list[IRStmt]:
        arity = len(ref.args)
        if arity == 0:
            value: IRExpr = Lookup(Slot(ref.name), ())
            term = Compare("!=", value, Const(0)) if cap_value else value
            return self._product(rest, terms + [term])

        filters: list[tuple[int, IRExpr]] = []
        binds: list[tuple[int, str]] = []
        seen_here: dict[str, int] = {}
        for position, arg in enumerate(ref.args):
            if isinstance(arg, AConst):
                filters.append((position, Const(arg.value)))
            elif arg.name in self.bound:
                filters.append((position, Name(arg.name)))
            elif arg.name in seen_here:
                filters.append((position, KeyAt(seen_here[arg.name])))
            else:
                seen_here[arg.name] = position
                binds.append((position, arg.name))

        entry_var = self.namer.fresh("e")
        value_var = self.namer.fresh("v")
        for _, var in binds:
            self.bound.add(var)
        term = (
            Compare("!=", Name(value_var), Const(0))
            if cap_value
            else Name(value_var)
        )
        body = self._product(rest, terms + [term])
        for _, var in binds:
            self.bound.discard(var)
        return [
            ForEachMap(
                Slot(ref.name),
                entry_var,
                value_var,
                tuple(binds),
                tuple(filters),
                tuple(body),
            )
        ]

    def _update(self, terms: list[IRExpr]) -> list[IRStmt]:
        sink = self.sink
        value = _prod(terms)
        if sink.kind == "scalar-acc":
            return [Accum(sink.acc, value)]
        temp = self.namer.fresh("d")
        guard_body: list[IRStmt]
        if sink.kind == "keyed-acc":
            guard_body = [
                AddTo(
                    Slot(sink.acc, local=True),
                    self._key_exprs(),
                    Name(temp),
                    evict=False,
                )
            ]
        elif sink.kind == "buffered":
            guard_body = [
                AppendTo(
                    pending_buffer(sink.target),
                    self._key_exprs(),
                    Name(temp),
                    target=Slot(sink.target),
                )
            ]
        else:
            guard_body = [AddTo(Slot(sink.target), self._key_exprs(), Name(temp))]
        return [
            Assign(temp, value),
            IfCond(Compare("!=", Name(temp), Const(0)), tuple(guard_body)),
        ]

    def _key_exprs(self) -> tuple[IRExpr, ...]:
        scratch: list[IRStmt] = []
        keys = tuple(self._scalar(arg, scratch) for arg in self.sink.args)
        if scratch:
            raise CodegenError(
                f"key expressions of {self.statement!r} must be loop-free"
            )
        return keys

    # -- scalar expressions ------------------------------------------------

    def _is_scalar(self, expr: Expr) -> bool:
        """True when the factor has no unbound outputs (pure value)."""
        if isinstance(expr, (AConst, Var, Cmp, Div)):
            return True
        if isinstance(expr, MapRef):
            return all(isinstance(a, AConst) or a.name in self.bound for a in expr.args)
        if isinstance(expr, Lift):
            return False
        if isinstance(expr, (AggSum, Exists)):
            return all(v in self.bound for v in output_vars(expr))
        if isinstance(expr, (Mul, Add, ANeg)):
            return all(self._is_scalar(c) for c in expr.children())
        return False

    def _scalar(self, expr: Expr, prelude: list[IRStmt]) -> IRExpr:
        """Translate a contextually scalar expression.

        Nested aggregates (AggSum/Exists in value position) need loops:
        those are appended to ``prelude`` and the aggregate becomes a
        reference to the accumulator temp.
        """
        if isinstance(expr, AConst):
            return Const(expr.value)
        if isinstance(expr, Var):
            return Name(expr.name)
        if isinstance(expr, ANeg):
            return Neg(self._scalar(expr.body, prelude))
        if isinstance(expr, Add):
            return Sum(tuple(self._scalar(t, prelude) for t in expr.terms))
        if isinstance(expr, Mul):
            return Prod(tuple(self._scalar(f, prelude) for f in expr.factors))
        if isinstance(expr, Div):
            return SafeDiv(
                self._scalar(expr.left, prelude), self._scalar(expr.right, prelude)
            )
        if isinstance(expr, Cmp):
            return Compare(
                expr.op,
                self._scalar(expr.left, prelude),
                self._scalar(expr.right, prelude),
            )
        if isinstance(expr, MapRef):
            keys = tuple(self._scalar(a, prelude) for a in expr.args)
            return Lookup(Slot(expr.name), keys)
        if isinstance(expr, Exists):
            acc = self._scalar_aggregate(expr.body, prelude)
            return Compare("!=", Name(acc), Const(0))
        if isinstance(expr, AggSum):
            return Name(self._scalar_aggregate(expr, prelude))
        raise CodegenError(f"unsupported scalar expression {expr!r}")

    def _scalar_aggregate(self, expr: Expr, prelude: list[IRStmt]) -> str:
        """Lower a nested aggregate into accumulator loops.

        The loops land in ``prelude`` (before the statement that uses the
        value); the accumulator temp's name is returned.
        """
        acc = self.namer.fresh("acc")
        prelude.append(Assign(acc, Const(0)))
        body = expr.body if isinstance(expr, AggSum) else expr
        saved_bound = set(self.bound)
        saved_sink = self.sink
        self.sink = _Sink("scalar-acc", saved_sink.target, (), acc=acc)
        try:
            for coeff, factors in monomials(body):
                prefix = [] if coeff == 1 else [AConst(coeff)]
                prelude.extend(self._product(prefix + list(factors), []))
                self.bound = set(saved_bound)
        finally:
            self.sink = saved_sink
        return acc


def _prod(terms: list[IRExpr]) -> IRExpr:
    if not terms:
        return Const(1)
    if len(terms) == 1:
        return terms[0]
    return Prod(tuple(terms))


# ---------------------------------------------------------------------------
# Trigger- and program-level lowering
# ---------------------------------------------------------------------------


def lower_statement(
    statement: Statement,
    params: tuple[str, ...],
    sink: _Sink,
    namer: _Namer,
) -> Block:
    """Lower one compiled statement to a :class:`Block`."""
    stmts = _StatementLowering(statement, params, sink, namer).lower()
    return Block(
        comments=(repr(statement),),
        targets=(statement.target,),
        stmts=tuple(stmts),
        sources=(statement,),
    )


def lower_trigger(trigger: Trigger, namer: Optional[_Namer] = None) -> TriggerIR:
    """The per-event trigger body (with two-phase buffering when needed)."""
    namer = namer or _Namer()
    buffered = needs_buffering(trigger.statements)
    written = sorted({s.target for s in trigger.statements})
    body: list[IRStmt] = []
    if buffered:
        body.extend(BufferDecl(pending_buffer(name)) for name in written)
    for statement in trigger.statements:
        kind = "buffered" if buffered else "direct"
        sink = _Sink(kind, statement.target, statement.args)
        body.append(lower_statement(statement, trigger.params, sink, namer))
    if buffered:
        body.extend(FlushBuffer(pending_buffer(name), Slot(name)) for name in written)
    return TriggerIR(
        relation=trigger.relation,
        sign=trigger.sign,
        name=trigger.name,
        params=trigger.params,
        body=tuple(body),
    )


def _accumulates(
    statement: Statement,
    trigger: Trigger,
    patterns: dict[str, set[tuple[int, ...]]],
) -> bool:
    """Whether a batch-independent statement accumulates its batch delta
    locally before touching the target map.

    Always worthwhile for scalar targets (a local add per row).  Keyed
    targets accumulate when keys are expected to repeat across the batch
    (fewer key positions than event parameters — group-by style) or when
    the target maintains secondary indexes (hoists index maintenance out
    of the row loop); occurrence-style maps keyed by the whole event tuple
    apply directly.
    """
    if not statement.args:
        return True
    if patterns.get(statement.target):
        return True
    return len(statement.args) < len(trigger.params)


def lower_trigger_batch(
    trigger: Trigger,
    per_event: TriggerIR,
    patterns: dict[str, set[tuple[int, ...]]],
    namer: Optional[_Namer] = None,
) -> TriggerIR:
    """The batch trigger body, derived from the same statement lowering.

    Independent triggers (no statement reads a map the trigger writes)
    accumulate batch deltas in locals flushed once after the row loop;
    everything else simply runs the per-event body once per row.
    """
    namer = namer or _Namer()
    name = f"{trigger.name}_batch"
    if not trigger.statements:
        return TriggerIR(trigger.relation, trigger.sign, name, trigger.params, ())

    written = {s.target for s in trigger.statements}
    independent = not any(s.reads() & written for s in trigger.statements)
    accs: dict[int, str] = {}
    if independent:
        for position, statement in enumerate(trigger.statements):
            if _accumulates(statement, trigger, patterns):
                accs[position] = f"__b{position}"

    if not accs:
        # Reuse the (already optimised) per-event blocks row by row.
        return TriggerIR(
            trigger.relation,
            trigger.sign,
            name,
            trigger.params,
            (ForEachRow("__rows", trigger.params, per_event.body),),
        )

    body: list[IRStmt] = []
    for position, statement in enumerate(trigger.statements):
        acc = accs.get(position)
        if acc is None:
            continue
        body.append(
            Assign(acc, Const(0))
            if not statement.args
            else LocalMapDecl(acc, arity=len(statement.args))
        )
    row_blocks: list[IRStmt] = []
    for position, statement in enumerate(trigger.statements):
        acc = accs.get(position)
        if acc is None:
            sink = _Sink("direct", statement.target, statement.args)
        elif not statement.args:
            sink = _Sink("scalar-acc", statement.target, statement.args, acc=acc)
        else:
            sink = _Sink("keyed-acc", statement.target, statement.args, acc=acc)
        row_blocks.append(lower_statement(statement, trigger.params, sink, namer))
    body.append(ForEachRow("__rows", trigger.params, tuple(row_blocks)))
    for position, statement in enumerate(trigger.statements):
        acc = accs.get(position)
        if acc is None:
            continue
        if not statement.args:
            body.append(
                Block(
                    comments=(),
                    targets=(statement.target,),
                    stmts=(
                        IfCond(
                            Compare("!=", Name(acc), Const(0)),
                            (AddTo(Slot(statement.target), (), Name(acc)),),
                        ),
                    ),
                    sources=(statement,),
                )
            )
        else:
            body.append(
                Block(
                    comments=(),
                    targets=(statement.target,),
                    stmts=(MergeInto(Slot(statement.target), Slot(acc, local=True)),),
                    sources=(statement,),
                )
            )
    return TriggerIR(trigger.relation, trigger.sign, name, trigger.params, tuple(body))


def collect_patterns_ir(triggers) -> dict[str, set[tuple[int, ...]]]:
    """Access patterns needing secondary indexes, from the lowered loops.

    A pattern is the sorted tuple of key positions a partially-bound map
    loop filters on — real DBToaster's in/out patterns.  Loops whose
    filters reference the key tuple itself (repeated loop variables) scan.
    """
    patterns: dict[str, set[tuple[int, ...]]] = {}
    for trigger_ir in triggers:
        for stmt in walk_stmts(trigger_ir.body):
            if not isinstance(stmt, ForEachMap) or stmt.slot.local:
                continue
            if not stmt.binds or not stmt.filters:
                continue
            if any(isinstance(expr, KeyAt) for _, expr in stmt.filters):
                continue
            patterns.setdefault(stmt.slot.name, set()).add(stmt.pattern)
    return patterns


def lower_program(
    program: CompiledProgram,
    optimize: bool = True,
    passes: Optional[tuple[str, ...]] = None,
) -> ProgramIR:
    """Lower (and optionally optimise) a whole compiled program.

    The result is cached on the program object: every back end asking for
    the same ``(optimize, passes)`` configuration shares one ProgramIR.
    """
    from repro.ir.optimize import DEFAULT_PASSES, optimize_program

    if passes is not None:
        wanted = tuple(passes)
    else:
        wanted = DEFAULT_PASSES if optimize else ()
    cache = program.__dict__.setdefault("_ir_cache", {})
    cached = cache.get(wanted)
    if cached is not None:
        return cached

    maps = {
        name: MapDecl(
            name=name,
            arity=map_def.arity,
            keys=map_def.keys,
            role=map_def.role,
            defn=repr(map_def.defn),
        )
        for name, map_def in program.maps.items()
    }
    triggers: dict[tuple[str, int], TriggerIR] = {}
    namers: dict[tuple[str, int], _Namer] = {}
    for key, trigger in program.triggers.items():
        namer = _Namer()
        namers[key] = namer
        triggers[key] = lower_trigger(trigger, namer)

    ir = ProgramIR(maps=maps, triggers=triggers, batch_triggers={}, passes=())
    if wanted:
        ir = optimize_program(ir, program, wanted)

    # Batch variants are derived from the (optimised) per-event bodies so
    # both variants share one loop-level lowering; the acc-based variants
    # re-lower statements with redirected sinks and go through the same
    # pass pipeline.
    patterns = collect_patterns_ir(ir.triggers.values())
    batch: dict[tuple[str, int], TriggerIR] = {}
    for key, trigger in program.triggers.items():
        batch[key] = lower_trigger_batch(
            trigger, ir.triggers[key], patterns, namers[key]
        )
    ir.batch_triggers = batch
    if wanted:
        ir = optimize_program(ir, program, wanted, batch_only=True)
    cache[wanted] = ir
    return ir
