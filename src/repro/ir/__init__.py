"""The imperative trigger IR: one typed loop-level lowering shared by the
Python generator, the C++ generator and the interpreted executor.

Pipeline position::

    SQL -> calculus -> delta -> materialise -> statements
        -> ir.lower (this package) -> ir.optimize -> { pygen, cppgen, interp }

Real DBToaster lowers through its M3 map-maintenance language the same
way; lowering once means every backend shares loop structure, semantics
fixes land once, and loop-level optimisation (invariant hoisting, loop
fusion, CSE, dead-map elimination) has a home.
"""

from repro.ir.lower import (
    collect_patterns_ir,
    lower_program,
    lower_trigger,
    lower_trigger_batch,
)
from repro.ir.optimize import (
    DEFAULT_PASSES,
    dead_map_names,
    exact_value_maps,
    optimize_program,
)
from repro.ir.lower import plan_second_order
from repro.ir.pretty import batch_sinks_str, ir_stats, program_str, trigger_str
from repro.ir.nodes import ProgramIR, TriggerIR

__all__ = [
    "DEFAULT_PASSES",
    "ProgramIR",
    "TriggerIR",
    "batch_sinks_str",
    "collect_patterns_ir",
    "dead_map_names",
    "exact_value_maps",
    "ir_stats",
    "lower_program",
    "lower_trigger",
    "lower_trigger_batch",
    "optimize_program",
    "plan_second_order",
    "program_str",
    "trigger_str",
]
