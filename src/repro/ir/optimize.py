"""IR optimisation passes: the loop-level rewrites the Expr tree had no
home for.

The pipeline (in application order):

* ``dead-maps`` — drop maintenance of maps nothing reads and no query
  slot exposes (statement-level analysis, so the per-event and batch
  variants stay consistent);
* ``fuse-loops`` — merge statements iterating the same map with the same
  filters into one traversal (vwap's two full scans become one);
* ``merge-guards`` — combine adjacent identical guards;
* ``cse`` — reuse identical pure scalar temps within a straight line;
* ``hoist-invariants`` — move loop-invariant lookups/arithmetic (vwap's
  ``0.25 * total`` threshold) out of the loops that recompute them;
* ``prune-bindings`` — stop binding key positions the loop body never
  reads (mst binds one of five).

Every pass is semantics-preserving *including float bit-identity*: a
rewrite that would reorder additions into a map is only applied when the
map's ring values are provably exact (integer — no FLOAT relations, no
division and no float literals in value position of its definition), the
same discipline the sharding analysis uses for cross-shard sums.

The passes apply to the batch bodies too, including the second-order
accumulate-then-flush shape: the once-per-batch restate scans are emitted
as single-loop blocks so ``fuse-loops`` merges restatements scanning the
same base map into one traversal, and ``hoist-invariants`` lifts their
batch-constant thresholds.  :class:`~repro.ir.nodes.Clear` (the flush's
zeroing write) is *destructive* — unlike additions it never commutes, even
into exact maps — so the reorder analyses refuse any write-write overlap
involving one.
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.expr import Cmp, Const as AConst, Div, Expr, relations_in
from repro.compiler.program import CompiledProgram
from repro.ir.nodes import (
    AddTo,
    AppendTo,
    Assign,
    Accum,
    Block,
    BufferDecl,
    Clear,
    Compare,
    Finalize,
    FlushBuffer,
    ForEachMap,
    ForEachRow,
    IfCond,
    IRExpr,
    IRStmt,
    Lookup,
    MergeInto,
    Name,
    Neg,
    Prod,
    ProgramIR,
    SafeDiv,
    Slot,
    Sum,
    TriggerIR,
    assigned_names,
    expr_names,
    expr_slots,
    expr_has_keyat,
    rename_stmt,
    rewrite_exprs,
    stmt_children,
    stmt_exprs,
    walk_stmts,
)

DEFAULT_PASSES: tuple[str, ...] = (
    "dead-maps",
    "fuse-loops",
    "merge-guards",
    "cse",
    "hoist-invariants",
    "prune-bindings",
)


# ---------------------------------------------------------------------------
# Shared analyses
# ---------------------------------------------------------------------------


def _applied_writes(stmts: Iterable[IRStmt]) -> frozenset[Slot]:
    """Slots whose *contents* change while the statements run.

    Pending-buffer appends are excluded: the map itself is untouched until
    the flush, so reads commute with them.
    """
    out: set[Slot] = set()
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, AddTo):
            out.add(stmt.slot)
        elif isinstance(stmt, (MergeInto, FlushBuffer, Clear, Finalize)):
            out.add(stmt.target)
    return frozenset(out)


def _ordered_writes(stmts: Iterable[IRStmt]) -> frozenset[Slot]:
    """Slots whose per-key addition *order* the statements contribute to
    (applied writes plus pending appends, which apply in append order)."""
    out = set(_applied_writes(stmts))
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, AppendTo):
            out.add(stmt.target)
    return frozenset(out)


def _destructive_writes(stmts: Iterable[IRStmt]) -> frozenset[Slot]:
    """Slots written *non-additively* (Clear): these never commute.

    The exact-integer exemption lets additive writes into one map reorder;
    a Clear absorbs instead of adds (the second-order batch flush clears a
    restated map before re-evaluating its definition), so any write-write
    overlap involving one must keep program order.
    """
    return frozenset(
        stmt.target
        for stmt in walk_stmts(stmts)
        if isinstance(stmt, (Clear, Finalize))
    )


def _reads(stmts: Iterable[IRStmt]) -> frozenset[Slot]:
    out: set[Slot] = set()
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, ForEachMap):
            out.add(stmt.slot)
        elif isinstance(stmt, (MergeInto, Finalize)):
            out.add(stmt.source)
        for expr in stmt_exprs(stmt):
            out.update(expr_slots(expr))
    return frozenset(out)


def _used_names(stmts: Iterable[IRStmt]) -> frozenset[str]:
    out: set[str] = set()
    for stmt in walk_stmts(stmts):
        for expr in stmt_exprs(stmt):
            out.update(expr_names(expr))
    return frozenset(out)


def exact_value_maps(program: CompiledProgram) -> frozenset[str]:
    """Maps whose ring values are provably exact integers.

    Additions into these maps commute bit-identically, so passes may
    reorder them.  A map qualifies when its defining query touches no
    FLOAT relation and its value positions contain no division and no
    float literal (comparison operands are 0/1-producing and don't
    count).
    """
    out: set[str] = set()
    for name, map_def in program.maps.items():
        if map_def.role == "auxiliary":
            # Extremum/distinct caches hold column values and distinct
            # counts, not ring sums; nothing may reorder writes into them.
            continue
        if relations_in(map_def.defn) & set(program.float_relations):
            continue
        if _value_position_inexact(map_def.defn):
            continue
        out.add(name)
    return frozenset(out)


def _value_position_inexact(expr: Expr) -> bool:
    if isinstance(expr, Cmp):
        return False  # comparisons yield 0/1 whatever their operands
    if isinstance(expr, Div):
        return True
    if isinstance(expr, AConst):
        return isinstance(expr.value, float)
    return any(_value_position_inexact(c) for c in expr.children())


def dead_map_names(program: CompiledProgram) -> frozenset[str]:
    """Maps no statement reads and no query slot exposes.

    Computed at the statement level so per-event and batch lowerings see
    the same verdict.
    """
    read: set[str] = set()
    for trigger in program.triggers.values():
        for statement in trigger.statements:
            read.update(statement.reads())
    roots = {name for names in program.slot_maps.values() for name in names}
    # Auxiliary caches are read by the result assembly (not by any
    # statement) and written only by Finalize steps; never dead.
    roots.update(
        name
        for name, map_def in program.maps.items()
        if map_def.role == "auxiliary"
    )
    return frozenset(
        name for name in program.maps if name not in read and name not in roots
    )


# ---------------------------------------------------------------------------
# Pass: dead-map elimination
# ---------------------------------------------------------------------------


def _drop_dead(body: tuple[IRStmt, ...], dead: frozenset[str]) -> tuple[IRStmt, ...]:
    out: list[IRStmt] = []
    for stmt in body:
        if (
            isinstance(stmt, Block)
            and stmt.targets
            and all(t in dead for t in stmt.targets)
        ):
            continue
        if isinstance(stmt, BufferDecl) and stmt.name in {
            f"__pending_{name}" for name in dead
        }:
            continue
        if isinstance(stmt, FlushBuffer) and stmt.target.name in dead:
            continue
        if isinstance(stmt, ForEachRow):
            out.append(
                ForEachRow(stmt.rows_var, stmt.params, _drop_dead(stmt.body, dead))
            )
            continue
        out.append(stmt)
    return tuple(out)


# ---------------------------------------------------------------------------
# Pass: loop fusion
# ---------------------------------------------------------------------------


def _single_loop(stmt: IRStmt):
    """The block's sole top-level statement, when it is one map loop."""
    if (
        isinstance(stmt, Block)
        and len(stmt.stmts) == 1
        and isinstance(stmt.stmts[0], ForEachMap)
    ):
        return stmt.stmts[0]
    return None


def _loops_compatible(a: ForEachMap, b: ForEachMap) -> bool:
    if a.slot != b.slot or a.filters != b.filters:
        return False
    # Neither body may touch the iterated map while it is being scanned.
    if a.slot in _applied_writes(a.body) or a.slot in _applied_writes(b.body):
        return False
    return True


def _may_reorder(
    mover: Block, blocked_by: list[IRStmt], exact: frozenset[str], params: set[str]
) -> bool:
    """May ``mover`` move up, past ``blocked_by``, without changing maps?"""
    mover_stmts = (mover,)
    if not (_used_names(mover_stmts) - assigned_names(mover_stmts)) <= params:
        return False
    m_applied = _applied_writes(mover_stmts)
    m_ordered = _ordered_writes(mover_stmts)
    m_reads = _reads(mover_stmts)
    m_destructive = _destructive_writes(mover_stmts)
    for other in blocked_by:
        o_stmts = (other,)
        overlap = _ordered_writes(o_stmts) & m_ordered
        if any(slot.local or slot.name not in exact for slot in overlap):
            return False
        if overlap & (m_destructive | _destructive_writes(o_stmts)):
            return False
        if _applied_writes(o_stmts) & m_reads:
            return False
        if m_applied & _reads(o_stmts):
            return False
    return True


def _fusable_bodies(a: ForEachMap, b: ForEachMap, exact: frozenset[str]) -> bool:
    """Interleaving the two bodies must not change reads or float sums."""
    if _applied_writes(a.body) & _reads(b.body):
        return False
    if _applied_writes(b.body) & _reads(a.body):
        return False
    overlap = _ordered_writes(a.body) & _ordered_writes(b.body)
    if overlap & (_destructive_writes(a.body) | _destructive_writes(b.body)):
        return False
    return not any(slot.local or slot.name not in exact for slot in overlap)


def _fuse_pair(block_a: Block, block_b: Block) -> Block:
    loop_a = block_a.stmts[0]
    loop_b = block_b.stmts[0]
    mapping = {
        loop_b.entry_var: loop_a.entry_var,
        loop_b.value_var: loop_a.value_var,
    }
    a_binds = dict(loop_a.binds)
    for pos, name in loop_b.binds:
        if pos in a_binds and name != a_binds[pos]:
            mapping[name] = a_binds[pos]
    merged_binds = list(loop_a.binds)
    bound_positions = set(a_binds)
    bound_names = set(a_binds.values())
    for pos, name in loop_b.binds:
        if pos not in bound_positions:
            target_name = mapping.get(name, name)
            merged_binds.append((pos, target_name))
            bound_names.add(target_name)
    renamed_body = tuple(rename_stmt(s, mapping) for s in loop_b.body)
    fused_loop = ForEachMap(
        loop_a.slot,
        loop_a.entry_var,
        loop_a.value_var,
        tuple(sorted(merged_binds)),
        loop_a.filters,
        loop_a.body + renamed_body,
    )
    return Block(
        comments=block_a.comments + block_b.comments,
        targets=block_a.targets + block_b.targets,
        stmts=(fused_loop,),
        sources=block_a.sources + block_b.sources,
    )


def _rename_collides(block_a: Block, block_b: Block) -> bool:
    loop_a = block_a.stmts[0]
    loop_b = block_b.stmts[0]
    a_binds = dict(loop_a.binds)
    for pos, name in loop_b.binds:
        if pos not in a_binds and name in set(a_binds.values()):
            return True
    return False


def _fuse_sequence(
    stmts: tuple[IRStmt, ...], exact: frozenset[str], params: set[str]
) -> tuple[IRStmt, ...]:
    out = [
        ForEachRow(s.rows_var, s.params, _fuse_sequence(s.body, exact, set(s.params)))
        if isinstance(s, ForEachRow)
        else s
        for s in stmts
    ]
    changed = True
    while changed:
        changed = False
        for i, candidate_a in enumerate(out):
            loop_a = _single_loop(candidate_a)
            if loop_a is None:
                continue
            for j in range(i + 1, len(out)):
                candidate_b = out[j]
                loop_b = _single_loop(candidate_b)
                if loop_b is None:
                    continue
                if not _loops_compatible(loop_a, loop_b):
                    continue
                if _rename_collides(candidate_a, candidate_b):
                    continue
                if not _fusable_bodies(loop_a, loop_b, exact):
                    continue
                between = out[i + 1 : j]
                if not _may_reorder(candidate_b, between, exact, params):
                    continue
                out[i] = _fuse_pair(candidate_a, candidate_b)
                del out[j]
                changed = True
                break
            if changed:
                break
    return tuple(out)


# ---------------------------------------------------------------------------
# Pass: merge adjacent identical guards
# ---------------------------------------------------------------------------


def _merge_guards(stmts: tuple[IRStmt, ...]) -> tuple[IRStmt, ...]:
    out: list[IRStmt] = []
    for stmt in stmts:
        stmt = _rebuild_with_body(stmt, _merge_guards)
        previous = out[-1] if out else None
        if (
            isinstance(stmt, IfCond)
            and isinstance(previous, IfCond)
            and previous.cond == stmt.cond
            and not _invalidates_cond(previous.body, stmt.cond)
        ):
            out[-1] = IfCond(previous.cond, previous.body + stmt.body)
        else:
            out.append(stmt)
    return tuple(out)


def _invalidates_cond(body: tuple[IRStmt, ...], cond: IRExpr) -> bool:
    if assigned_names(body) & expr_names(cond):
        return True
    return bool(_applied_writes(body) & expr_slots(cond))


def _rebuild_with_body(stmt: IRStmt, fn) -> IRStmt:
    if isinstance(stmt, IfCond):
        return IfCond(stmt.cond, fn(stmt.body))
    if isinstance(stmt, ForEachMap):
        return ForEachMap(
            stmt.slot,
            stmt.entry_var,
            stmt.value_var,
            stmt.binds,
            stmt.filters,
            fn(stmt.body),
        )
    if isinstance(stmt, ForEachRow):
        return ForEachRow(stmt.rows_var, stmt.params, fn(stmt.body))
    if isinstance(stmt, Block):
        return Block(stmt.comments, stmt.targets, fn(stmt.stmts), stmt.sources)
    return stmt


# ---------------------------------------------------------------------------
# Pass: common-subexpression temps (straight-line, assignment level)
# ---------------------------------------------------------------------------

_CSE_TYPES = (Prod, Sum, SafeDiv, Lookup, Compare, Neg)


def _cse_sequence(
    stmts: tuple[IRStmt, ...], available: dict[IRExpr, str], rename: dict[str, str]
) -> tuple[IRStmt, ...]:
    from repro.ir.nodes import substitute_names

    out: list[IRStmt] = []
    for stmt in stmts:
        stmt = rewrite_exprs(stmt, lambda e: substitute_names(e, rename))
        if (
            isinstance(stmt, Assign)
            and isinstance(stmt.value, _CSE_TYPES)
            and not expr_has_keyat(stmt.value)
        ):
            existing = available.get(stmt.value)
            if existing is not None:
                rename[stmt.name] = existing
                continue
            _drop_renames(rename, {stmt.name})
            _invalidate_name(available, stmt.name)
            available[stmt.value] = stmt.name
        elif isinstance(stmt, (Assign, Accum)):
            # A kept (re)assignment ends any alias involving the name:
            # later reads must see this binding, not a stale temp.
            _drop_renames(rename, {stmt.name})
            _invalidate_name(available, stmt.name)
        written = _applied_writes((stmt,))
        if written:
            _invalidate_slots(available, written)
        if isinstance(stmt, (IfCond, ForEachMap, ForEachRow, Block)):
            inner_killed = assigned_names(stmt_children(stmt))
            scoped = {
                expr: name
                for expr, name in available.items()
                if not (expr_names(expr) & inner_killed)
            }
            stmt = _rebuild_with_body(
                stmt, lambda body: _cse_sequence(body, dict(scoped), dict(rename))
            )
            killed = assigned_names((stmt,))
            _drop_renames(rename, killed)
            for name in killed:
                _invalidate_name(available, name)
        out.append(stmt)
    return tuple(out)


def _drop_renames(rename: dict[str, str], names) -> None:
    """Forget aliases whose source or target name was (re)bound."""
    for key in [k for k, v in rename.items() if k in names or v in names]:
        del rename[key]


def _invalidate_name(available: dict[IRExpr, str], name: str) -> None:
    for expr in [e for e in available if name in expr_names(e)]:
        del available[expr]
    for expr in [e for e, n in available.items() if n == name]:
        del available[expr]


def _invalidate_slots(available: dict[IRExpr, str], slots: frozenset[Slot]) -> None:
    for expr in [e for e in available if expr_slots(e) & slots]:
        del available[expr]


# ---------------------------------------------------------------------------
# Pass: loop-invariant hoisting
# ---------------------------------------------------------------------------

_HOIST_TYPES = (Prod, Sum, SafeDiv, Lookup, Neg)


def _hoist_stmts(stmts: tuple[IRStmt, ...], namer) -> tuple[IRStmt, ...]:
    out: list[IRStmt] = []
    for stmt in stmts:
        if isinstance(stmt, (ForEachMap, ForEachRow)):
            body = _hoist_stmts(stmt_children(stmt), namer)
            loop = _rebuild_with_body(stmt, lambda _body, b=body: b)
            prelude, loop = _hoist_from_loop(loop, namer)
            out.extend(prelude)
            out.append(loop)
        elif isinstance(stmt, (IfCond, Block)):
            out.append(_rebuild_with_body(stmt, lambda body: _hoist_stmts(body, namer)))
        else:
            out.append(stmt)
    return tuple(out)


def _hoist_from_loop(loop: IRStmt, namer):
    """Extract loop-invariant pure subexpressions into temps before the
    loop.  Invariant: no name bound inside the loop, no lookup of a map
    the loop body writes (appends excluded — they apply after the loop)."""
    body = stmt_children(loop)
    inner = set(assigned_names(body))
    if isinstance(loop, ForEachMap):
        inner.add(loop.entry_var)
        inner.add(loop.value_var)
        inner.update(name for _, name in loop.binds)
    else:
        inner.update(loop.params)
    written = _applied_writes(body)
    hoisted: dict[IRExpr, str] = {}

    def invariant(expr: IRExpr) -> bool:
        if expr_names(expr) & inner:
            return False
        if expr_has_keyat(expr):
            return False
        return not (expr_slots(expr) & written)

    def extract(expr: IRExpr) -> IRExpr:
        if isinstance(expr, _HOIST_TYPES) and invariant(expr):
            temp = hoisted.get(expr)
            if temp is None:
                temp = namer.fresh("h")
                hoisted[expr] = temp
            return Name(temp)
        if isinstance(expr, Sum):
            return Sum(tuple(extract(t) for t in expr.terms))
        if isinstance(expr, Prod):
            return Prod(tuple(extract(f) for f in expr.factors))
        if isinstance(expr, Neg):
            return Neg(extract(expr.body))
        if isinstance(expr, SafeDiv):
            return SafeDiv(extract(expr.left), extract(expr.right))
        if isinstance(expr, Compare):
            return Compare(expr.op, extract(expr.left), extract(expr.right))
        if isinstance(expr, Lookup):
            return Lookup(expr.slot, tuple(extract(k) for k in expr.keys), expr.default)
        return expr

    new_body = tuple(_rewrite_exprs_skipping_filters(s, extract) for s in body)
    if not hoisted:
        return (), loop
    prelude = tuple(Assign(name, expr) for expr, name in hoisted.items())
    return prelude, _rebuild_with_body(loop, lambda _body: new_body)


def _rewrite_exprs_skipping_filters(stmt: IRStmt, fn) -> IRStmt:
    """Like :func:`rewrite_exprs` but leaves loop filters untouched (they
    must stay index-probe-compatible Name/Const/KeyAt atoms)."""
    if isinstance(stmt, ForEachMap):
        return ForEachMap(
            stmt.slot,
            stmt.entry_var,
            stmt.value_var,
            stmt.binds,
            stmt.filters,
            tuple(_rewrite_exprs_skipping_filters(s, fn) for s in stmt.body),
        )
    if isinstance(stmt, ForEachRow):
        return ForEachRow(
            stmt.rows_var,
            stmt.params,
            tuple(_rewrite_exprs_skipping_filters(s, fn) for s in stmt.body),
        )
    if isinstance(stmt, IfCond):
        return IfCond(
            fn(stmt.cond),
            tuple(_rewrite_exprs_skipping_filters(s, fn) for s in stmt.body),
        )
    if isinstance(stmt, Block):
        return Block(
            stmt.comments,
            stmt.targets,
            tuple(_rewrite_exprs_skipping_filters(s, fn) for s in stmt.stmts),
            stmt.sources,
        )
    return rewrite_exprs(stmt, fn)


# ---------------------------------------------------------------------------
# Pass: dead key-binding pruning
# ---------------------------------------------------------------------------


def _prune_bindings(stmts: tuple[IRStmt, ...]) -> tuple[IRStmt, ...]:
    out: list[IRStmt] = []
    for stmt in stmts:
        stmt = _rebuild_with_body(stmt, _prune_bindings)
        if isinstance(stmt, ForEachMap):
            used = _used_names(stmt.body)
            kept = tuple((pos, name) for pos, name in stmt.binds if name in used)
            if kept != stmt.binds:
                stmt = ForEachMap(
                    stmt.slot,
                    stmt.entry_var,
                    stmt.value_var,
                    kept,
                    stmt.filters,
                    stmt.body,
                )
        out.append(stmt)
    return tuple(out)


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------


class _HoistNamer:
    """Fresh names for hoisted temps, disjoint from existing locals.

    Batch bodies embed already-hoisted per-event blocks, so new temps
    must avoid every name the body assigns anywhere.
    """

    def __init__(self, reserved=()) -> None:
        self._counter = 0
        self._reserved = set(reserved)

    def fresh(self, prefix: str) -> str:
        while True:
            self._counter += 1
            name = f"__{prefix}{self._counter}"
            if name not in self._reserved:
                self._reserved.add(name)
                return name


def optimize_trigger(
    trigger_ir: TriggerIR,
    passes: tuple[str, ...],
    exact: frozenset[str],
    dead: frozenset[str],
) -> TriggerIR:
    body = trigger_ir.body
    params = set(trigger_ir.params)
    if "dead-maps" in passes and dead:
        body = _drop_dead(body, dead)
    if "fuse-loops" in passes:
        body = _fuse_sequence(body, exact, params)
    for _ in range(2):  # merge-guards and cse enable one another
        if "merge-guards" in passes:
            body = _merge_guards(body)
        if "cse" in passes:
            body = _cse_sequence(body, {}, {})
    if "hoist-invariants" in passes:
        body = _hoist_stmts(body, _HoistNamer(assigned_names(body)))
    if "prune-bindings" in passes:
        body = _prune_bindings(body)
    return TriggerIR(
        trigger_ir.relation,
        trigger_ir.sign,
        trigger_ir.name,
        trigger_ir.params,
        body,
    )


def optimize_program(
    ir: ProgramIR,
    program: CompiledProgram,
    passes: tuple[str, ...],
    batch_only: bool = False,
) -> ProgramIR:
    """Run the pass pipeline over every trigger body.

    ``batch_only`` re-runs the pipeline over the batch variants only (they
    are lowered after the per-event bodies have been optimised).
    """
    exact = exact_value_maps(program)
    dead = dead_map_names(program) if "dead-maps" in passes else frozenset()
    if not batch_only:
        ir.triggers = {
            key: optimize_trigger(trigger_ir, passes, exact, dead)
            for key, trigger_ir in ir.triggers.items()
        }
    ir.batch_triggers = {
        key: optimize_trigger(trigger_ir, passes, exact, dead)
        for key, trigger_ir in ir.batch_triggers.items()
    }
    ir.passes = passes
    return ir
