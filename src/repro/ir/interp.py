"""Direct interpretation of the trigger IR.

The interpreted engine mode walks the same lowered (and optimised) IR the
code generators render, instead of re-deriving loops from the calculus
per event.  It deliberately stays a tree-walker — every event re-traverses
the IR nodes — so the compiled-vs-interpreted ablation still isolates
exactly what code generation removes.

``run_trigger`` executes one trigger body against the engine's maps;
``collect`` mode additionally records every map update a block performed
(the debugger's statement trace).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CodegenError
from repro.ir.nodes import (
    AddTo,
    AppendTo,
    Assign,
    Accum,
    Block,
    BufferDecl,
    Clear,
    Compare,
    Const,
    Finalize,
    FlushBuffer,
    ForEachMap,
    ForEachRow,
    IfCond,
    IRExpr,
    IRStmt,
    KeyAt,
    LocalMapDecl,
    Lookup,
    MergeInto,
    Name,
    Neg,
    Prod,
    SafeDiv,
    Slot,
    Sum,
    TriggerIR,
    walk_stmts,
)


def _eval(expr: IRExpr, env: dict, maps: dict, entry: Optional[tuple]) -> object:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Name):
        return env[expr.name]
    if isinstance(expr, Prod):
        value = _eval(expr.factors[0], env, maps, entry)
        for factor in expr.factors[1:]:
            value = value * _eval(factor, env, maps, entry)
        return value
    if isinstance(expr, Sum):
        value = _eval(expr.terms[0], env, maps, entry)
        for term in expr.terms[1:]:
            value = value + _eval(term, env, maps, entry)
        return value
    if isinstance(expr, Lookup):
        storage = env[expr.slot.name] if expr.slot.local else maps[expr.slot.name]
        key = tuple(_eval(k, env, maps, entry) for k in expr.keys)
        return storage.get(key, expr.default)
    if isinstance(expr, Compare):
        left = _eval(expr.left, env, maps, entry)
        right = _eval(expr.right, env, maps, entry)
        return 1 if _compare(expr.op, left, right) else 0
    if isinstance(expr, Neg):
        return -_eval(expr.body, env, maps, entry)
    if isinstance(expr, SafeDiv):
        num = _eval(expr.left, env, maps, entry)
        den = _eval(expr.right, env, maps, entry)
        return 0 if den == 0 else num / den
    if isinstance(expr, KeyAt):
        return entry[expr.pos]
    raise CodegenError(f"cannot interpret IR expression {expr!r}")


def _compare(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _storage(slot: Slot, env: dict, maps: dict) -> dict:
    return env[slot.name] if slot.local else maps[slot.name]


class _Recorder:
    """Per-block update collection for profiling and the debugger."""

    __slots__ = ("updates",)

    def __init__(self) -> None:
        self.updates: list[tuple[str, tuple, object]] = []

    def record(self, target: str, key: tuple, value: object) -> None:
        self.updates.append((target, key, value))


def run_stmts(
    stmts,
    env: dict,
    maps: dict,
    recorder: Optional[_Recorder] = None,
    entry: Optional[tuple] = None,
) -> None:
    for stmt in stmts:
        run_stmt(stmt, env, maps, recorder, entry)


def run_stmt(
    stmt: IRStmt,
    env: dict,
    maps: dict,
    recorder: Optional[_Recorder],
    entry: Optional[tuple] = None,
) -> None:
    if isinstance(stmt, Block):
        run_stmts(stmt.stmts, env, maps, recorder, entry)
        return
    if isinstance(stmt, Assign):
        env[stmt.name] = _eval(stmt.value, env, maps, entry)
        return
    if isinstance(stmt, Accum):
        env[stmt.name] = env[stmt.name] + _eval(stmt.value, env, maps, entry)
        return
    if isinstance(stmt, IfCond):
        if _eval(stmt.cond, env, maps, entry):
            run_stmts(stmt.body, env, maps, recorder, entry)
        return
    if isinstance(stmt, ForEachMap):
        storage = _storage(stmt.slot, env, maps)
        binds = stmt.binds
        value_var = stmt.value_var
        body = stmt.body
        filters = stmt.filters
        for key, value in storage.items():
            ok = True
            for pos, expr in filters:
                if key[pos] != _eval(expr, env, maps, key):
                    ok = False
                    break
            if not ok:
                continue
            for pos, name in binds:
                env[name] = key[pos]
            env[value_var] = value
            run_stmts(body, env, maps, recorder, key)
        return
    if isinstance(stmt, ForEachRow):
        params = stmt.params
        body = stmt.body
        columns = env[stmt.rows_var]
        if not columns:
            return
        for row in zip(*columns):
            for name, value in zip(params, row):
                env[name] = value
            run_stmts(body, env, maps, recorder, entry)
        return
    if isinstance(stmt, AddTo):
        storage = _storage(stmt.slot, env, maps)
        key = tuple(_eval(k, env, maps, entry) for k in stmt.keys)
        value = _eval(stmt.value, env, maps, entry)
        if stmt.evict and type(storage) is not dict:
            # Columnar storage applies lookup+add+evict in one probe.
            storage.add(key, value)
        else:
            current = storage.get(key, 0) + value
            if stmt.evict and current == 0:
                storage.pop(key, None)
            else:
                storage[key] = current
        if recorder is not None and not stmt.slot.local:
            recorder.record(stmt.slot.name, key, value)
        return
    if isinstance(stmt, AppendTo):
        key = tuple(_eval(k, env, maps, entry) for k in stmt.keys)
        value = _eval(stmt.value, env, maps, entry)
        env[stmt.buffer].append((key, value))
        if recorder is not None:
            recorder.record(stmt.target.name, key, value)
        return
    if isinstance(stmt, BufferDecl):
        env[stmt.name] = []
        return
    if isinstance(stmt, FlushBuffer):
        storage = _storage(stmt.target, env, maps)
        if type(storage) is not dict:
            for key, value in env[stmt.name]:
                storage.add(key, value)
            return
        for key, value in env[stmt.name]:
            current = storage.get(key, 0) + value
            if current == 0:
                storage.pop(key, None)
            else:
                storage[key] = current
        return
    if isinstance(stmt, LocalMapDecl):
        env[stmt.name] = {}
        return
    if isinstance(stmt, MergeInto):
        target = _storage(stmt.target, env, maps)
        source = _storage(stmt.source, env, maps)
        recording = recorder is not None and not stmt.target.local
        if type(target) is not dict and not recording:
            for key, value in source.items():
                target.add(key, value)
            return
        for key, value in source.items():
            current = target.get(key, 0) + value
            if current == 0:
                target.pop(key, None)
            else:
                target[key] = current
            if recording:
                recorder.record(stmt.target.name, key, value)
        return
    if isinstance(stmt, Clear):
        _storage(stmt.target, env, maps).clear()
        return
    if isinstance(stmt, Finalize):
        run_finalize(
            _storage(stmt.target, env, maps),
            _storage(stmt.source, env, maps),
            stmt.kind,
            stmt.group_arity,
            tuple(env[name] for name in stmt.pending),
        )
        return
    raise CodegenError(f"cannot interpret IR statement {stmt!r}")


def _group_best(source, kind: str, group: tuple):
    """Best live value of one group, rescanning the occurrence map."""
    ga = len(group)
    best = None
    for key, count in source.items():
        if count == 0 or key[:ga] != group:
            continue
        value = key[ga]
        if best is None or (value < best if kind == "min" else value > best):
            best = value
    return best


def run_finalize(target, source, kind: str, ga: int, pending: tuple) -> None:
    """Maintain a min/max/distinct auxiliary map from its occurrence map.

    With no ``pending`` deltas the cache is rebuilt from scratch (the
    restate path, and the sharded-merge path).  Otherwise all pending
    accumulators are summed key-wise into *one* delta first — per-
    accumulator application would misread the pre-state when two
    accumulators touch the same key — and each 0↔nonzero multiplicity
    crossing updates the cache; an extremum deletion re-derives the
    group's best from the (post-delta) occurrence entries.
    """
    if not pending:
        target.clear()
        for key, count in source.items():
            if count == 0:
                continue
            group = key[:ga]
            if kind == "distinct":
                target[group] = target.get(group, 0) + 1
            else:
                value = key[ga]
                best = target.get(group)
                if best is None or (value < best if kind == "min" else value > best):
                    target[group] = value
        return
    delta: dict = {}
    for buf in pending:
        pairs = buf.items() if isinstance(buf, dict) else buf
        for key, value in pairs:
            delta[key] = delta.get(key, 0) + value
    for key, change in delta.items():
        if change == 0:
            continue
        post = source.get(key, 0)
        pre = post - change
        if (pre != 0) == (post != 0):
            continue  # no multiplicity crossing: membership unchanged
        group, value = key[:ga], key[ga]
        if kind == "distinct":
            if post != 0:
                target[group] = target.get(group, 0) + 1
            else:
                count = target.get(group, 0) - 1
                if count == 0:
                    target.pop(group, None)
                else:
                    target[group] = count
        elif post != 0:
            best = target.get(group)
            if best is None or (value < best if kind == "min" else value > best):
                target[group] = value
        elif group in target and target[group] == value:
            # The stored extremum left the group: re-derive or evict.
            best = _group_best(source, kind, group)
            if best is None:
                target.pop(group, None)
            else:
                target[group] = best


def run_trigger(
    trigger_ir: TriggerIR,
    values,
    maps: dict,
    profiler=None,
) -> None:
    """Execute one per-event trigger body."""
    env = dict(zip(trigger_ir.params, values))
    if profiler is None:
        run_stmts(trigger_ir.body, env, maps, None)
        return
    for stmt in trigger_ir.body:
        if isinstance(stmt, Block):
            recorder = _Recorder()
            run_stmt(stmt, env, maps, recorder)
            counts: dict[str, int] = {}
            for target, _key, _value in recorder.updates:
                counts[target] = counts.get(target, 0) + 1
            for target in stmt.targets:
                profiler.record_statement(target, counts.get(target, 0))
        else:
            run_stmt(stmt, env, maps, None)


def run_trigger_batch(
    trigger_ir: TriggerIR,
    columns,
    maps: dict,
    profiler=None,
) -> None:
    """Execute one *batch* trigger body over a columnar batch.

    ``columns`` is the struct-of-arrays row set
    (:class:`~repro.runtime.events.EventBatch` layout); the body's
    :class:`ForEachRow` loop iterates it directly, so the interpreter
    absorbs batches with the same first-/second-order accumulation shape
    the compiled back end runs — while still re-traversing the IR nodes
    (the interpretation overhead the ablation isolates).
    """
    env: dict = {"__cols": columns}
    if profiler is None:
        run_stmts(trigger_ir.body, env, maps, None)
        return
    for stmt in trigger_ir.body:
        if isinstance(stmt, (Block, ForEachRow)):
            # Profile the row loop as a whole: its nested blocks' map
            # updates are attributed per target (whole-batch counts, the
            # batch-granularity analogue of per-event statement counts).
            recorder = _Recorder()
            run_stmt(stmt, env, maps, recorder)
            counts: dict[str, int] = {}
            for target, _key, _value in recorder.updates:
                counts[target] = counts.get(target, 0) + 1
            targets: set[str] = set()
            for inner in walk_stmts((stmt,)):
                if isinstance(inner, Block):
                    targets.update(inner.targets)
            for target in sorted(targets):
                profiler.record_statement(target, counts.get(target, 0))
        else:
            run_stmt(stmt, env, maps, None)


def run_trigger_collect(
    trigger_ir: TriggerIR, values, maps: dict
) -> list[tuple[Block, list[tuple[str, tuple, object]]]]:
    """Execute a trigger, returning per-block update traces (debugger)."""
    env = dict(zip(trigger_ir.params, values))
    traces: list[tuple[Block, list[tuple[str, tuple, object]]]] = []
    for stmt in trigger_ir.body:
        if isinstance(stmt, Block):
            recorder = _Recorder()
            run_stmt(stmt, env, maps, recorder)
            traces.append((stmt, recorder.updates))
        else:
            run_stmt(stmt, env, maps, None)
    return traces
