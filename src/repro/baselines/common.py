"""Uniform construction of every engine in the bakeoff."""

from __future__ import annotations

from typing import Optional

from repro.errors import EventError
from repro.compiler import CompileOptions, compile_queries
from repro.algebra.translate import translate_sql
from repro.sql.catalog import Catalog
from repro.runtime.engine import DeltaEngine
from repro.baselines.ivm import FirstOrderIVMEngine
from repro.baselines.reeval import ReevalEngine
from repro.baselines.streamops import StreamOpEngine

#: kind -> human-readable description (the bakeoff table's row labels).
ENGINE_KINDS = {
    "dbtoaster": "DBToaster (recursive compilation, generated code)",
    "dbtoaster_interp": "DBToaster maps with interpreted triggers (ablation)",
    "ivm": "Classical first-order IVM (delta queries over base state)",
    "streamops": "Interpreted incremental operator network (STREAM model)",
    "reeval": "Full re-evaluation per update (conventional DBMS model)",
    "reeval_lazy": "Full re-evaluation on read only (favourable DBMS variant)",
}


def make_engine(
    kind: str,
    queries: dict[str, str],
    catalog: Catalog,
    engine_kwargs: Optional[dict] = None,
):
    """Build one bakeoff engine over the same standing queries.

    All returned engines expose ``process`` / ``process_batch`` /
    ``process_stream`` / ``insert`` / ``delete`` / ``results`` /
    ``total_entries``, so per-event and batched comparisons run the same
    driver code against every system.  ``engine_kwargs`` pass through to
    the DBToaster :class:`~repro.runtime.engine.DeltaEngine` kinds only
    (e.g. ``{"optimize": False}`` for the IR-ablation benchmarks, or
    ``{"mode": "native"}`` to put the "dbtoaster" kind on the C column
    kernel lane).
    """
    if kind == "dbtoaster":
        kwargs = dict(engine_kwargs or {})
        mode = kwargs.pop("mode", "compiled")
        return _delta_engine(queries, catalog, mode=mode, **kwargs)
    if kind == "dbtoaster_interp":
        return _delta_engine(
            queries, catalog, mode="interpreted", **(engine_kwargs or {})
        )
    if kind == "ivm":
        return FirstOrderIVMEngine(queries, catalog)
    if kind == "streamops":
        return StreamOpEngine(queries, catalog)
    if kind == "reeval":
        return ReevalEngine(queries, catalog, refresh="eager")
    if kind == "reeval_lazy":
        return ReevalEngine(queries, catalog, refresh="lazy")
    raise EventError(f"unknown engine kind {kind!r}; choose from {sorted(ENGINE_KINDS)}")


def _delta_engine(
    queries: dict[str, str],
    catalog: Catalog,
    mode: str,
    options: Optional[CompileOptions] = None,
    **engine_kwargs,
) -> DeltaEngine:
    translated = [
        translate_sql(sql, catalog, name=name) for name, sql in queries.items()
    ]
    program = compile_queries(translated, catalog, options)
    return DeltaEngine(program, mode=mode, **engine_kwargs)
