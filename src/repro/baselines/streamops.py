"""An interpreted incremental operator network (the STREAM stand-in).

Queries run as a left-deep pipeline of stateful operators: per-table filter
operators feed binary join operators that *materialise both inputs* (the
classic symmetric hash join of stream engines), and a grouped aggregate
operator sits at the sink.  Deltas propagate tuple-at-a-time through the
interpreted network.

Two properties faithfully model the systems the paper compares against:

* every join materialises its intermediate result (memory grows with
  intermediate sizes — the contrast for the memory experiment), and
* correlated subqueries / nested aggregates are rejected
  (:class:`UnsupportedQueryError`) — order-book queries like VWAP are
  exactly where the paper notes its approach "stands alone".
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import EventError, ReproError
from repro.sql.ast import (
    AggregateCall,
    ColumnRef,
    Comparison,
    SelectQuery,
    Star,
)
from repro.sql.binder import BoundQuery, bind_query
from repro.sql.catalog import Catalog
from repro.sql.parser import parse_query
from repro.interpreter.executor import (
    _Compiler,
    _Scope,
    _eval_item,
    _split_conjuncts,
    _tables_of,
)
from repro.runtime.events import StreamEvent, batches


class UnsupportedQueryError(ReproError):
    """The operator network cannot express this query (e.g. subqueries)."""


class _JoinOp:
    """Symmetric hash join with materialised state on both inputs."""

    __slots__ = ("left_key", "right_key", "left_state", "right_state")

    def __init__(self, left_key, right_key) -> None:
        self.left_key = left_key
        self.right_key = right_key
        self.left_state: dict[tuple, dict[tuple, int]] = {}
        self.right_state: dict[tuple, dict[tuple, int]] = {}

    def on_left(self, row: tuple, mult: int) -> list[tuple[tuple, int]]:
        key = self.left_key(row)
        _bag_update(self.left_state, key, row, mult)
        matches = self.right_state.get(key)
        if not matches:
            return []
        return [(row + other, mult * m) for other, m in matches.items()]

    def on_right(self, row: tuple, mult: int) -> list[tuple[tuple, int]]:
        key = self.right_key(row)
        _bag_update(self.right_state, key, row, mult)
        matches = self.left_state.get(key)
        if not matches:
            return []
        return [(other + row, mult * m) for other, m in matches.items()]

    def state_entries(self) -> int:
        return sum(len(v) for v in self.left_state.values()) + sum(
            len(v) for v in self.right_state.values()
        )


def _bag_update(state, key, row, mult) -> None:
    bucket = state.setdefault(key, {})
    updated = bucket.get(row, 0) + mult
    if updated == 0:
        del bucket[row]
        if not bucket:
            del state[key]
    else:
        bucket[row] = updated


class _AggSink:
    """Grouped aggregation with incremental state."""

    def __init__(self, bound: BoundQuery, group_fns, agg_calls, value_fns):
        self.bound = bound
        self.group_fns = group_fns
        self.agg_calls = agg_calls
        self.value_fns = value_fns
        # group key -> [row_count, [per-aggregate state...]]
        self.groups: dict[tuple, list] = {}

    def on_delta(self, row: tuple, mult: int) -> None:
        key = tuple(fn(row, ()) for fn in self.group_fns)
        state = self.groups.get(key)
        if state is None:
            state = [0, [self._new_state(c) for c in self.agg_calls]]
            self.groups[key] = state
        state[0] += mult
        for index, call in enumerate(self.agg_calls):
            value = (
                None
                if self.value_fns[index] is None
                else self.value_fns[index](row, ())
            )
            self._update(state[1][index], call, value, mult)
        if state[0] == 0:
            del self.groups[key]

    @staticmethod
    def _new_state(call: AggregateCall):
        if call.func in ("SUM", "COUNT"):
            return [0]
        if call.func == "AVG":
            return [0, 0]
        return [{}]  # MIN/MAX: value -> count multiset

    @staticmethod
    def _update(state, call: AggregateCall, value, mult: int) -> None:
        if call.func == "COUNT":
            state[0] += mult
        elif call.func == "SUM":
            state[0] += value * mult
        elif call.func == "AVG":
            state[0] += value * mult
            state[1] += mult
        else:  # MIN / MAX keep an exact multiset (deletions need it)
            counts = state[0]
            updated = counts.get(value, 0) + mult
            if updated == 0:
                del counts[value]
            else:
                counts[value] = updated

    @staticmethod
    def _finish(state, call: AggregateCall):
        if call.func == "AVG":
            return 0 if state[1] == 0 else state[0] / state[1]
        if call.func in ("MIN", "MAX"):
            if not state[0]:
                return 0
            return min(state[0]) if call.func == "MIN" else max(state[0])
        return state[0]

    def rows(self, query: SelectQuery) -> list[tuple]:
        group_keys = [
            (self.bound.resolve(c).binding, self.bound.resolve(c).column.lower())
            for c in query.group_by
        ]
        results = []
        for key in sorted(self.groups, key=repr):
            _count, states = self.groups[key]
            agg_values = {
                id(call): self._finish(state, call)
                for call, state in zip(self.agg_calls, states)
            }
            row_values = []
            for info, item in zip(self.bound.item_info, query.items):
                if not info.is_aggregate:
                    resolution = self.bound.resolve(item.expr)
                    row_values.append(
                        key[
                            group_keys.index(
                                (resolution.binding, resolution.column.lower())
                            )
                        ]
                    )
                else:
                    row_values.append(_eval_item(item.expr, agg_values))
            results.append(tuple(row_values))
        if not query.group_by and not results:
            # Scalar query over an empty stream still has one (zero) row.
            empty = {
                id(call): self._finish(self._new_state(call), call)
                for call in self.agg_calls
            }
            results.append(
                tuple(_eval_item(item.expr, empty) for item in query.items)
            )
        return results

    def state_entries(self) -> int:
        return len(self.groups)


class _Pipeline:
    """The operator network for one query."""

    def __init__(self, bound: BoundQuery, catalog: Catalog) -> None:
        self.bound = bound
        self.catalog = catalog
        query = bound.query
        self._reject_unsupported(query)

        self.bindings = [t.binding.lower() for t in query.tables]
        self.relations = [catalog.get(t.name).name for t in query.tables]
        self.table_cols = [
            [c.name.lower() for c in catalog.get(t.name).columns]
            for t in query.tables
        ]

        # Composed-row layout: declaration order.
        positions: dict[tuple[str, str], int] = {}
        offset = 0
        for binding, cols in zip(self.bindings, self.table_cols):
            for i, col in enumerate(cols):
                positions[(binding, col)] = offset + i
            offset += len(cols)
        self.scope = _Scope(positions)
        compiler = _Compiler(bound, None)  # type: ignore[arg-type] - no subplans

        conjuncts = _split_conjuncts(query.where)
        binding_set = set(self.bindings)
        self.table_filters: list[list] = [[] for _ in self.bindings]
        join_conjuncts: list[tuple[int, Comparison]] = []
        residual = []
        for conjunct in conjuncts:
            touched = _tables_of(conjunct, bound, binding_set)
            if touched is None:
                raise UnsupportedQueryError(
                    f"operator networks cannot evaluate {conjunct!r}"
                )
            if len(touched) == 1:
                index = self.bindings.index(next(iter(touched)))
                self.table_filters[index].append(conjunct)
                continue
            latest = max(self.bindings.index(b) for b in touched)
            if (
                len(touched) == 2
                and isinstance(conjunct, Comparison)
                and conjunct.op == "="
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                join_conjuncts.append((latest, conjunct))
            else:
                residual.append((latest, conjunct))

        # Per-table filter functions over single-table rows.
        self.filter_fns: list[Optional[Callable]] = []
        for index, binding in enumerate(self.bindings):
            if not self.table_filters[index]:
                self.filter_fns.append(None)
                continue
            local_scope = _Scope(
                {(binding, col): i for i, col in enumerate(self.table_cols[index])}
            )
            predicates = [
                compiler.predicate(c, local_scope)
                for c in self.table_filters[index]
            ]
            self.filter_fns.append(
                lambda row, _p=tuple(predicates): all(f(row, ()) for f in _p)
            )

        # Build the left-deep join ladder: join k combines tables 0..k-1
        # with table k on the equality conjuncts anchored at k.
        self.joins: list[_JoinOp] = []
        prefix_width = [0]
        for cols in self.table_cols:
            prefix_width.append(prefix_width[-1] + len(cols))
        for k in range(1, len(self.bindings)):
            left_positions: list[int] = []
            right_positions: list[int] = []
            for latest, conjunct in join_conjuncts:
                if latest != k:
                    continue
                lres = bound.resolve(conjunct.left)
                rres = bound.resolve(conjunct.right)
                sides = {}
                for res in (lres, rres):
                    table_index = self.bindings.index(res.binding)
                    col_index = self.table_cols[table_index].index(
                        res.column.lower()
                    )
                    if table_index == k:
                        sides["right"] = col_index
                    else:
                        sides["left"] = prefix_width[table_index] + col_index
                if "left" not in sides or "right" not in sides:
                    residual.append((latest, conjunct))
                    continue
                left_positions.append(sides["left"])
                right_positions.append(sides["right"])
            self.joins.append(
                _JoinOp(
                    left_key=lambda row, _p=tuple(left_positions): tuple(
                        row[i] for i in _p
                    ),
                    right_key=lambda row, _p=tuple(right_positions): tuple(
                        row[i] for i in _p
                    ),
                )
            )

        self.residual_fns = [
            compiler.predicate(c, self.scope) for _latest, c in residual
        ]

        group_fns = [compiler.scalar(c, self.scope) for c in query.group_by]
        agg_calls: list[AggregateCall] = []
        for info in bound.item_info:
            agg_calls.extend(info.aggregates)
        value_fns = [
            None
            if isinstance(c.argument, Star)
            else compiler.scalar(c.argument, self.scope)
            for c in agg_calls
        ]
        self.sink = _AggSink(bound, group_fns, agg_calls, value_fns)

    @staticmethod
    def _reject_unsupported(query: SelectQuery) -> None:
        from repro.sql.ast import ExistsExpr, InExpr, ScalarSubquery

        def check(node) -> None:
            if isinstance(node, (ExistsExpr, InExpr, ScalarSubquery)):
                raise UnsupportedQueryError(
                    "stream operator networks do not support subqueries or "
                    "nested aggregates (per the systems the paper compares "
                    "against)"
                )
            for attr in ("left", "right", "operand", "argument"):
                child = getattr(node, attr, None)
                if child is not None:
                    check(child)
            for operand in getattr(node, "operands", ()):
                check(operand)

        if query.where is not None:
            check(query.where)

    # -- delta propagation ---------------------------------------------------

    def on_event(self, event: StreamEvent) -> None:
        for index, relation in enumerate(self.relations):
            if relation != event.relation:
                continue
            row, mult = event.values, event.sign
            if self.filter_fns[index] is not None and not self.filter_fns[index](row):
                continue
            self._propagate(index, row, mult)

    def _propagate(self, table_index: int, row: tuple, mult: int) -> None:
        if len(self.bindings) == 1:
            deltas = [(row, mult)]
        elif table_index == 0:
            deltas = self.joins[0].on_left(row, mult)
            deltas = self._through_ladder(1, deltas)
        else:
            join = self.joins[table_index - 1]
            deltas = join.on_right(row, mult)
            deltas = self._through_ladder(table_index, deltas)
        for out_row, out_mult in deltas:
            if all(f(out_row, ()) for f in self.residual_fns):
                self.sink.on_delta(out_row, out_mult)

    def _through_ladder(self, start: int, deltas) -> list[tuple[tuple, int]]:
        current = deltas
        for join in self.joins[start:]:
            next_deltas: list[tuple[tuple, int]] = []
            for row, mult in current:
                next_deltas.extend(join.on_left(row, mult))
            current = next_deltas
        return current

    def results(self) -> list[tuple]:
        return self.sink.rows(self.bound.query)

    def state_entries(self) -> int:
        return sum(j.state_entries() for j in self.joins) + self.sink.state_entries()


class StreamOpEngine:
    """Standing queries over interpreted incremental operator networks."""

    name = "streamops"

    def __init__(self, queries: dict[str, str], catalog: Catalog) -> None:
        self.catalog = catalog
        self.pipelines = {
            name: _Pipeline(bind_query(parse_query(sql), catalog), catalog)
            for name, sql in queries.items()
        }
        self.events_processed = 0

    def process(self, event: StreamEvent) -> None:
        for pipeline in self.pipelines.values():
            pipeline.on_event(event)
        self.events_processed += 1

    def process_batch(self, relation: str, sign: int, rows) -> int:
        """Batched delivery, tuple-at-a-time execution.

        The operator network is inherently tuple-at-a-time, so batching
        amortises only the delivery loop — faithfully modelling the engines
        the paper compares against.
        """
        count = 0
        for row in rows:
            self.process(StreamEvent(relation, sign, tuple(row)))
            count += 1
        return count

    def process_stream(
        self, events: Iterable, batch_size: Optional[int] = 1024
    ) -> int:
        count = 0
        for batch in batches(events, batch_size):
            self.process_batch(batch.relation, batch.sign, batch.rows)
            count += len(batch.rows)
        return count

    def insert(self, relation: str, *values) -> None:
        self.process(StreamEvent(relation, 1, tuple(values)))

    def delete(self, relation: str, *values) -> None:
        self.process(StreamEvent(relation, -1, tuple(values)))

    def results(self, query_name: Optional[str] = None) -> list[tuple]:
        name = self._resolve_name(query_name)
        return self.pipelines[name].results()

    def result_scalar(self, query_name: Optional[str] = None):
        rows = self.results(query_name)
        if len(rows) != 1 or len(rows[0]) != 1:
            raise EventError("result_scalar requires a scalar single-item query")
        return rows[0][0]

    def total_entries(self) -> int:
        return sum(p.state_entries() for p in self.pipelines.values())

    def _resolve_name(self, query_name: Optional[str]) -> str:
        if query_name is not None:
            if query_name not in self.pipelines:
                raise EventError(f"unknown query {query_name!r}")
            return query_name
        if len(self.pipelines) != 1:
            raise EventError("query_name required with multiple queries")
        return next(iter(self.pipelines))
