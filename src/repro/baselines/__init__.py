"""Baseline engines for the paper's DBMS bakeoff (Section 4.2).

Stand-ins for the systems the demo compares against, per DESIGN.md:

* :class:`~repro.baselines.reeval.ReevalEngine` — re-executes the standing
  query through the volcano plan interpreter on every update (PostgreSQL /
  HSQLDB / commercial DBMS 'A' model);
* :class:`~repro.baselines.ivm.FirstOrderIVMEngine` — classical first-order
  incremental view maintenance: delta queries evaluated over base-relation
  state per event ("today's VM algorithms" from the introduction);
* :class:`~repro.baselines.streamops.StreamOpEngine` — an interpreted
  incremental operator network with materialised join state (Stanford
  STREAM / commercial stream processor 'B' model);
* the DBToaster *interpreted* mode (``DeltaEngine(mode="interpreted")``)
  rounds out the ablation: recursive compilation without code generation.

All engines share the event/result API, so the bakeoff harness treats them
uniformly (see :func:`repro.baselines.common.make_engine`).
"""

from repro.baselines.common import make_engine, ENGINE_KINDS
from repro.baselines.reeval import ReevalEngine
from repro.baselines.ivm import FirstOrderIVMEngine
from repro.baselines.streamops import StreamOpEngine, UnsupportedQueryError

__all__ = [
    "make_engine",
    "ENGINE_KINDS",
    "ReevalEngine",
    "FirstOrderIVMEngine",
    "StreamOpEngine",
    "UnsupportedQueryError",
]
