"""Classical first-order incremental view maintenance.

This is the "today's VM algorithms" comparator from the paper's
introduction: the view's *first-order* delta query is derived once, but it
is evaluated against the (materialised) base relations on every event — no
recursive materialisation of the delta queries themselves.  Implemented by
compiling with ``derived_maps=False``: the only maintained maps are the
roots and the base-relation occurrence maps, so every trigger re-joins base
state, exactly like classical IVM.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler import CompileOptions, compile_queries
from repro.algebra.translate import translate_sql
from repro.sql.catalog import Catalog
from repro.runtime.engine import DeltaEngine


class FirstOrderIVMEngine(DeltaEngine):
    """A :class:`DeltaEngine` restricted to first-order delta processing."""

    name = "ivm_first_order"

    def __init__(
        self,
        queries: dict[str, str],
        catalog: Catalog,
        mode: str = "compiled",
        options: Optional[CompileOptions] = None,
    ) -> None:
        options = options or CompileOptions()
        options.derived_maps = False
        translated = [
            translate_sql(sql, catalog, name=name) for name, sql in queries.items()
        ]
        program = compile_queries(translated, catalog, options)
        super().__init__(program, mode=mode)
