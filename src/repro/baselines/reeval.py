"""Full re-evaluation baseline: the conventional-DBMS model.

A standing query answered by a conventional engine is refreshed by
re-running the whole query; this engine does exactly that through the
volcano plan interpreter after every update (``refresh="eager"``) or on
demand (``refresh="lazy"``, the favourable-to-the-baseline variant used
when benchmarking pure update cost).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import EventError
from repro.sql.binder import BoundQuery, bind_query
from repro.sql.catalog import Catalog
from repro.sql.parser import parse_query
from repro.interpreter.executor import execute_query
from repro.interpreter.relations import Database
from repro.runtime.events import StreamEvent, batches


class ReevalEngine:
    """Re-executes every registered query per update (or per read)."""

    name = "reeval"

    def __init__(
        self,
        queries: dict[str, str],
        catalog: Catalog,
        refresh: str = "eager",
    ) -> None:
        if refresh not in ("eager", "lazy"):
            raise EventError(f"unknown refresh policy {refresh!r}")
        self.catalog = catalog
        self.refresh = refresh
        self.db = Database(catalog)
        self.bound: dict[str, BoundQuery] = {
            name: bind_query(parse_query(sql), catalog)
            for name, sql in queries.items()
        }
        self._cached: dict[str, list[tuple]] = {}
        self.events_processed = 0

    def __deepcopy__(self, memo: dict) -> "ReevalEngine":
        """Snapshot support: bound queries are keyed by AST node identity,
        so they are shared (immutable) rather than copied."""
        clone = ReevalEngine.__new__(ReevalEngine)
        clone.catalog = self.catalog
        clone.refresh = self.refresh
        clone.bound = self.bound
        clone.db = Database(self.catalog)
        for name, table in self.db.tables.items():
            clone.db.tables[name].rows = dict(table.rows)
        clone._cached = dict(self._cached)
        clone.events_processed = self.events_processed
        memo[id(self)] = clone
        return clone

    def process(self, event: StreamEvent) -> None:
        self.db.apply(event)
        self.events_processed += 1
        if self.refresh == "eager":
            self._refresh()

    def process_batch(self, relation: str, sign: int, rows: Sequence[Sequence]) -> int:
        """Apply a run of rows, then refresh once.

        The legitimate batch optimisation for a re-evaluating DBMS: the
        standing query is re-run per *batch* instead of per event, so the
        bakeoff's batched comparisons stay apples-to-apples.
        """
        rows = list(rows)
        for row in rows:
            self.db.apply(StreamEvent(relation, sign, tuple(row)))
        self.events_processed += len(rows)
        if self.refresh == "eager" and rows:
            self._refresh()
        return len(rows)

    def process_stream(
        self, events: Iterable, batch_size: Optional[int] = 1
    ) -> int:
        """Default ``batch_size=1`` preserves this baseline's defining
        semantics — a refresh per update; pass a larger size only for
        explicitly batched comparisons."""
        count = 0
        for batch in batches(events, batch_size):
            self.process_batch(batch.relation, batch.sign, batch.rows)
            count += len(batch.rows)
        return count

    def _refresh(self) -> None:
        for name, bound in self.bound.items():
            self._cached[name] = execute_query(bound, self.db)

    def insert(self, relation: str, *values) -> None:
        self.process(StreamEvent(relation, 1, tuple(values)))

    def delete(self, relation: str, *values) -> None:
        self.process(StreamEvent(relation, -1, tuple(values)))

    def results(self, query_name: Optional[str] = None) -> list[tuple]:
        name = self._resolve_name(query_name)
        if self.refresh == "eager" and name in self._cached:
            return self._cached[name]
        return execute_query(self.bound[name], self.db)

    def result_scalar(self, query_name: Optional[str] = None):
        rows = self.results(query_name)
        if len(rows) != 1 or len(rows[0]) != 1:
            raise EventError("result_scalar requires a scalar single-item query")
        return rows[0][0]

    def total_entries(self) -> int:
        """Live state size: base-table rows (distinct) across relations."""
        return sum(t.distinct_count() for t in self.db.tables.values())

    def _resolve_name(self, query_name: Optional[str]) -> str:
        if query_name is not None:
            if query_name not in self.bound:
                raise EventError(f"unknown query {query_name!r}")
            return query_name
        if len(self.bound) != 1:
            raise EventError("query_name required with multiple queries")
        return next(iter(self.bound))
