"""DBToaster reproduction: recursive SQL delta compilation for main-memory IVM.

The public API in three lines::

    catalog = Catalog.from_script("CREATE STREAM R (A int, B int); ...")
    engine = DeltaEngine(compile_sql("SELECT sum(...) FROM ...", catalog))
    engine.insert("R", 1, 2); engine.results()

See README.md for the full pipeline tour (SQL -> calculus -> delta ->
materialise -> trigger IR -> {pygen, cppgen, interpreter}) and CLI usage.
"""

from repro.sql.catalog import Catalog
from repro.compiler import (
    CompileOptions,
    PartitionSpec,
    StoragePlan,
    analyze_partitioning,
    analyze_storage,
    compile_queries,
    compile_sql,
)
from repro.algebra.translate import translate_sql
from repro.runtime import (
    ColumnarMap,
    DeltaEngine,
    DurableEngine,
    EventBatch,
    ShardedEngine,
    StreamEvent,
    batches,
    insert,
    delete,
    recover_engine,
    update,
)

__version__ = "0.4.0"

__all__ = [
    "Catalog",
    "ColumnarMap",
    "CompileOptions",
    "PartitionSpec",
    "StoragePlan",
    "analyze_partitioning",
    "analyze_storage",
    "compile_queries",
    "compile_sql",
    "translate_sql",
    "DeltaEngine",
    "DurableEngine",
    "EventBatch",
    "ShardedEngine",
    "StreamEvent",
    "batches",
    "insert",
    "delete",
    "recover_engine",
    "update",
    "__version__",
]
