"""Exception hierarchy for the repro (DBToaster reproduction) library.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the engine can catch one root type.  Sub-hierarchies
mirror the pipeline stages: SQL front end, algebraic compilation, code
generation and runtime execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every exception raised by the repro library."""


class SQLError(ReproError):
    """Problem in the SQL front end (lexing, parsing or binding)."""


class LexerError(SQLError):
    """Invalid character sequence in the SQL input."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(SQLError):
    """SQL input does not match the grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(SQLError):
    """Name resolution or type checking failed on a parsed query."""


class CatalogError(SQLError):
    """Unknown or inconsistent schema objects (relations, columns)."""


class AlgebraError(ReproError):
    """Malformed calculus expression or unsupported algebraic operation."""


class SchemaError(AlgebraError):
    """Expression violates the input/output variable discipline."""


class TranslationError(AlgebraError):
    """SQL construct that cannot be translated to the map algebra."""


class CompilationError(ReproError):
    """Recursive delta compilation failed or hit an unsupported shape."""


class CodegenError(ReproError):
    """Code generation produced invalid source or hit an unsupported IR."""


class RuntimeEngineError(ReproError):
    """Errors raised while the compiled engine is processing events."""


class UnknownStreamError(RuntimeEngineError):
    """An event referenced a relation the engine does not know about."""


class EventError(RuntimeEngineError):
    """Malformed event (wrong arity, wrong types, bad operation)."""


class ServingError(RuntimeEngineError):
    """Problem in the view-subscription serving layer (bad protocol
    frame, unknown view, a dropped or misbehaving peer)."""


class DurabilityError(RuntimeEngineError):
    """Problem in the durability layer (WAL, snapshots, recovery)."""


class WalCorruptionError(DurabilityError):
    """A write-ahead log frame or segment failed validation.

    Raised only for *interior* corruption — a bad frame followed by good
    data, which no crash can produce.  A torn tail (the partial frame a
    crash leaves at the end of the log) is expected damage and is
    truncated silently on open instead.
    """


class RecoveryError(DurabilityError):
    """A durable directory cannot be recovered into this engine
    (fingerprint mismatch, unreadable metadata, snapshot/log conflict)."""


class ResumeGapError(DurabilityError):
    """A requested WAL replay position predates the log's oldest
    replayable frame (checkpoint truncation, or an ``ensure_lsn``
    forward gap at the start of a fresh log).

    Raised instead of silently returning an empty or incomplete suffix:
    a reader asking for ``lsn > requested_lsn`` cannot be served from
    this log alone and must fall back to a snapshot (a resuming
    subscriber re-snapshots; recovery needs a valid snapshot covering
    the missing prefix).
    """

    def __init__(self, requested_lsn: int, oldest_lsn: int) -> None:
        super().__init__(
            f"cannot replay from LSN {requested_lsn}: the log's oldest "
            f"replayable frame is LSN {oldest_lsn} (earlier frames were "
            "truncated at a checkpoint or never logged); start from a "
            "snapshot at or below the requested LSN instead"
        )
        self.requested_lsn = requested_lsn
        self.oldest_lsn = oldest_lsn
