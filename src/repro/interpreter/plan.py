"""Iterator-model plan operators.

Every node produces ``(row, multiplicity)`` pairs on demand.  ``env`` is the
stack of outer rows (innermost first) for correlated subquery evaluation;
the planner resolves each correlated column to a (level, position) pair at
plan-build time.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.interpreter.relations import Table

Row = tuple
Env = tuple  # stack of outer rows, innermost first
RowIter = Iterator[tuple[Row, int]]


class PlanNode:
    """Base class: a pull-based row producer."""

    def rows(self, env: Env) -> RowIter:
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        pad = "  " * depth
        lines = [f"{pad}{self.describe()}"]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> Sequence["PlanNode"]:
        return ()


class ScanNode(PlanNode):
    """Full scan of a base table."""

    def __init__(self, table: Table, binding: str) -> None:
        self.table = table
        self.binding = binding

    def rows(self, env: Env) -> RowIter:
        yield from self.table.scan()

    def describe(self) -> str:
        return f"Scan({self.table.relation.name} as {self.binding})"


class FilterNode(PlanNode):
    """Applies a compiled predicate to each row."""

    def __init__(
        self, child: PlanNode, predicate: Callable[[Row, Env], bool], label: str = ""
    ) -> None:
        self.child = child
        self.predicate = predicate
        self.label = label

    def rows(self, env: Env) -> RowIter:
        predicate = self.predicate
        for row, mult in self.child.rows(env):
            if predicate(row, env):
                yield row, mult

    def describe(self) -> str:
        return f"Filter({self.label})" if self.label else "Filter"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


class HashJoinNode(PlanNode):
    """Equi-join; builds a hash table on the right child per execution.

    Rebuilding per execution is intentional: the re-evaluation baseline
    models a DBMS executing the standing query from scratch on each refresh.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: Callable[[Row], tuple],
        right_key: Callable[[Row], tuple],
    ) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key

    def rows(self, env: Env) -> RowIter:
        build: dict[tuple, list[tuple[Row, int]]] = {}
        for row, mult in self.right.rows(env):
            build.setdefault(self.right_key(row), []).append((row, mult))
        for lrow, lmult in self.left.rows(env):
            matches = build.get(self.left_key(lrow))
            if not matches:
                continue
            for rrow, rmult in matches:
                yield lrow + rrow, lmult * rmult

    def describe(self) -> str:
        return "HashJoin"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


class CrossNode(PlanNode):
    """Cartesian product (for disconnected join graphs)."""

    def __init__(self, left: PlanNode, right: PlanNode) -> None:
        self.left = left
        self.right = right

    def rows(self, env: Env) -> RowIter:
        right_rows = list(self.right.rows(env))
        for lrow, lmult in self.left.rows(env):
            for rrow, rmult in right_rows:
                yield lrow + rrow, lmult * rmult

    def describe(self) -> str:
        return "CrossProduct"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)
