"""In-memory multiset tables for the interpreted engines."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import EventError
from repro.sql.catalog import Catalog, Relation
from repro.runtime.events import StreamEvent


class Table:
    """A bag of tuples (tuple -> multiplicity >= 1)."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self.rows: dict[tuple, int] = {}

    def insert(self, values: tuple) -> None:
        if len(values) != self.relation.arity:
            raise EventError(
                f"arity mismatch inserting into {self.relation.name}: {values!r}"
            )
        self.rows[values] = self.rows.get(values, 0) + 1

    def delete(self, values: tuple) -> None:
        current = self.rows.get(values, 0)
        if current <= 0:
            raise EventError(
                f"delete of absent tuple from {self.relation.name}: {values!r}"
            )
        if current == 1:
            del self.rows[values]
        else:
            self.rows[values] = current - 1

    def scan(self) -> Iterator[tuple[tuple, int]]:
        return iter(self.rows.items())

    def __len__(self) -> int:
        return sum(self.rows.values())

    def distinct_count(self) -> int:
        return len(self.rows)


class Database:
    """A set of tables driven by the same event stream as the delta engine."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.tables: dict[str, Table] = {
            relation.name: Table(relation) for relation in catalog
        }

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            try:
                relation = self.catalog.get(name)
            except Exception:
                raise EventError(f"unknown relation {name!r}") from None
            return self.tables[relation.name]

    def apply(self, event: StreamEvent) -> None:
        table = self.table(event.relation)
        if event.sign == 1:
            table.insert(event.values)
        else:
            table.delete(event.values)

    def apply_stream(self, events: Iterable[StreamEvent]) -> int:
        count = 0
        for event in events:
            self.apply(event)
            count += 1
        return count

    def load(self, relation: str, rows: Iterable[Sequence]) -> int:
        table = self.table(relation)
        count = 0
        for row in rows:
            table.insert(tuple(row))
            count += 1
        return count

    def as_gmrs(self) -> dict[str, dict[tuple, int]]:
        """The database as GMRs, for the calculus evaluator."""
        return {name: table.rows for name, table in self.tables.items()}

    def total_rows(self) -> int:
        return sum(len(table) for table in self.tables.values())
