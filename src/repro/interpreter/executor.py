"""Planner + executor: bound SQL -> operator plan -> result rows.

The planner mirrors what a conventional DBMS does for the paper's standing
queries: scans with pushed-down single-table filters, greedy hash-join
ordering over the equijoin graph, residual predicates (including correlated
subqueries, evaluated per row by running a subplan) and a final group-by
aggregation.  ``execute_query`` runs the whole thing from scratch — the
re-evaluation cost the delta engines avoid.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import CompilationError
from repro.sql.ast import (
    AggregateCall,
    Arith,
    BetweenExpr,
    BoolOp,
    ColumnRef,
    Comparison,
    ExistsExpr,
    InExpr,
    Literal,
    Not,
    ScalarSubquery,
    SelectQuery,
    Star,
    UnaryMinus,
)
from repro.sql.binder import BoundQuery
from repro.interpreter.plan import (
    CrossNode,
    FilterNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
)
from repro.interpreter.relations import Database

Row = tuple
Env = tuple
ValueFn = Callable[[Row, Env], object]


class _Scope:
    """Column -> row-position resolution for one query level."""

    def __init__(self, positions: dict[tuple[str, str], int], parent=None):
        self.positions = positions
        self.parent = parent

    def locate(self, binding: str, column: str, depth: int) -> tuple[int, int]:
        """Return (level, position): level 0 = current row, 1 = outer, ..."""
        scope, level = self, 0
        for _ in range(depth):
            scope = scope.parent
            level += 1
            if scope is None:
                raise CompilationError(f"no outer scope for {binding}.{column}")
        return level, scope.positions[(binding, column.lower())]


def _column_fn(level: int, position: int) -> ValueFn:
    if level == 0:
        return lambda row, env: row[position]
    index = level - 1
    return lambda row, env, _i=index, _p=position: env[_i][_p]


class _Compiler:
    """Compiles bound SQL expressions into row closures."""

    def __init__(self, bound: BoundQuery, db: Database) -> None:
        self.bound = bound
        self.db = db

    # -- scalars -----------------------------------------------------------

    def scalar(self, expr, scope: _Scope) -> ValueFn:
        if isinstance(expr, Literal):
            value = expr.value
            return lambda row, env: value
        if isinstance(expr, ColumnRef):
            resolution = self.bound.resolve(expr)
            level, position = scope.locate(
                resolution.binding, resolution.column, resolution.depth
            )
            return _column_fn(level, position)
        if isinstance(expr, UnaryMinus):
            inner = self.scalar(expr.operand, scope)
            return lambda row, env: -inner(row, env)
        if isinstance(expr, Arith):
            left = self.scalar(expr.left, scope)
            right = self.scalar(expr.right, scope)
            op = expr.op
            if op == "+":
                return lambda row, env: left(row, env) + right(row, env)
            if op == "-":
                return lambda row, env: left(row, env) - right(row, env)
            if op == "*":
                return lambda row, env: left(row, env) * right(row, env)
            if op == "/":
                def divide(row, env):
                    denominator = right(row, env)
                    return 0 if denominator == 0 else left(row, env) / denominator

                return divide
            raise CompilationError(f"unknown arithmetic operator {op!r}")
        if isinstance(expr, ScalarSubquery):
            return self._scalar_subquery(expr.query, scope)
        raise CompilationError(f"unsupported scalar expression {expr!r}")

    # -- predicates ----------------------------------------------------------

    def predicate(self, expr, scope: _Scope) -> ValueFn:
        if isinstance(expr, Comparison):
            left = self.scalar(expr.left, scope)
            right = self.scalar(expr.right, scope)
            op = expr.op
            table = {
                "=": lambda a, b: a == b,
                "!=": lambda a, b: a != b,
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }
            compare = table[op]
            return lambda row, env: compare(left(row, env), right(row, env))
        if isinstance(expr, BetweenExpr):
            operand = self.scalar(expr.operand, scope)
            low = self.scalar(expr.low, scope)
            high = self.scalar(expr.high, scope)
            return lambda row, env: low(row, env) <= operand(row, env) <= high(row, env)
        if isinstance(expr, BoolOp):
            operands = [self.predicate(o, scope) for o in expr.operands]
            if expr.op == "AND":
                return lambda row, env: all(o(row, env) for o in operands)
            return lambda row, env: any(o(row, env) for o in operands)
        if isinstance(expr, Not):
            inner = self.predicate(expr.operand, scope)
            return lambda row, env: not inner(row, env)
        if isinstance(expr, ExistsExpr):
            subplan, _, _ = _build_from_where(self.bound, self.db, expr.query, scope)
            return lambda row, env: _any_row(subplan, (row, *env))
        if isinstance(expr, InExpr):
            needle = self.scalar(expr.needle, scope)
            subplan, sub_scope, _ = _build_from_where(
                self.bound, self.db, expr.query, scope
            )
            member = self.scalar(expr.query.items[0].expr, sub_scope)

            def contains(row, env):
                target = needle(row, env)
                inner_env = (row, *env)
                for sub_row, mult in subplan.rows(inner_env):
                    if mult > 0 and member(sub_row, inner_env) == target:
                        return True
                return False

            return contains
        raise CompilationError(f"unsupported predicate {expr!r}")

    def _scalar_subquery(self, query: SelectQuery, scope: _Scope) -> ValueFn:
        subplan, sub_scope, _ = _build_from_where(self.bound, self.db, query, scope)
        agg = query.items[0].expr
        if not isinstance(agg, AggregateCall) or agg.func not in ("SUM", "COUNT"):
            raise CompilationError(
                "scalar subqueries must be a single sum/count aggregate"
            )
        if isinstance(agg.argument, Star):
            value_fn: Optional[ValueFn] = None
        else:
            value_fn = self.scalar(agg.argument, sub_scope)

        def aggregate(row, env):
            inner_env = (row, *env)
            total = 0
            for sub_row, mult in subplan.rows(inner_env):
                if value_fn is None:
                    total += mult
                else:
                    total += value_fn(sub_row, inner_env) * mult
            return total

        return aggregate


def _any_row(plan: PlanNode, env: Env) -> bool:
    for _row, mult in plan.rows(env):
        if mult > 0:
            return True
    return False


def _split_conjuncts(expr) -> list:
    if expr is None:
        return []
    if isinstance(expr, BoolOp) and expr.op == "AND":
        out = []
        for operand in expr.operands:
            out.extend(_split_conjuncts(operand))
        return out
    return [expr]


def _tables_of(expr, bound: BoundQuery, bindings: set[str]) -> Optional[set[str]]:
    """Current-scope bindings an expression touches; None if it has
    subqueries or outer references (not safe for pushdown/join keys)."""
    touched: set[str] = set()
    safe = True

    def visit(node) -> None:
        nonlocal safe
        if isinstance(node, ColumnRef):
            resolution = bound.resolutions.get(id(node))
            if resolution is None or resolution.depth != 0:
                safe = False
            elif resolution.binding in bindings:
                touched.add(resolution.binding)
            else:
                safe = False
        elif isinstance(node, (ScalarSubquery, ExistsExpr, InExpr)):
            safe = False
        elif isinstance(node, (Arith, Comparison)):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryMinus):
            visit(node.operand)
        elif isinstance(node, BetweenExpr):
            visit(node.operand)
            visit(node.low)
            visit(node.high)
        elif isinstance(node, BoolOp):
            for operand in node.operands:
                visit(operand)
        elif isinstance(node, Not):
            visit(node.operand)

    visit(expr)
    return touched if safe else None


def _build_from_where(
    bound: BoundQuery,
    db: Database,
    query: SelectQuery,
    outer_scope: Optional[_Scope],
):
    """Build the join+filter plan for one query level.

    Returns ``(plan, scope, compiler)``.
    """
    compiler = _Compiler(bound, db)
    bindings = [t.binding.lower() for t in query.tables]
    binding_set = set(bindings)

    # Per-table scans and column positions.
    positions: dict[tuple[str, str], int] = {}
    table_columns: dict[str, list[str]] = {}
    offset = 0
    for table_ref in query.tables:
        relation = bound.catalog.get(table_ref.name)
        binding = table_ref.binding.lower()
        cols = [c.name.lower() for c in relation.columns]
        table_columns[binding] = cols
        for i, col in enumerate(cols):
            positions[(binding, col)] = offset + i
        offset += len(cols)
    scope = _Scope(positions, parent=outer_scope)

    conjuncts = _split_conjuncts(query.where)
    single_table: dict[str, list] = {b: [] for b in bindings}
    equijoins: list[tuple[str, str, ColumnRef, ColumnRef]] = []
    residual: list = []
    for conjunct in conjuncts:
        touched = _tables_of(conjunct, bound, binding_set)
        if touched is None:
            residual.append(conjunct)
        elif len(touched) == 1:
            single_table[next(iter(touched))].append(conjunct)
        elif (
            len(touched) == 2
            and isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            lres = bound.resolve(conjunct.left)
            rres = bound.resolve(conjunct.right)
            equijoins.append(
                (lres.binding, rres.binding, conjunct.left, conjunct.right)
            )
        else:
            residual.append(conjunct)

    # Scans with pushed-down filters, each with a *local* scope so the
    # predicate sees the single table's row layout.
    plans: dict[str, PlanNode] = {}
    plan_schema: dict[str, list[str]] = {}  # binding -> ordered binding list
    for table_ref in query.tables:
        binding = table_ref.binding.lower()
        node: PlanNode = ScanNode(db.table(table_ref.name), binding)
        if single_table[binding]:
            local_positions = {
                (binding, col): i for i, col in enumerate(table_columns[binding])
            }
            local_scope = _Scope(local_positions, parent=outer_scope)
            predicates = [
                compiler.predicate(c, local_scope) for c in single_table[binding]
            ]

            def combined(row, env, _preds=tuple(predicates)):
                return all(p(row, env) for p in _preds)

            node = FilterNode(node, combined, label=f"{binding} filters")
        plans[binding] = node
        plan_schema[binding] = [binding]

    # Greedy hash-join composition over the equijoin graph.
    def component_of(binding: str) -> str:
        # The representative is the first binding in the composed plan.
        for representative, members in plan_schema.items():
            if binding in members:
                return representative
        raise CompilationError(f"lost binding {binding}")

    def layout_positions(members: list[str]) -> dict[tuple[str, str], int]:
        out: dict[tuple[str, str], int] = {}
        offset = 0
        for member in members:
            for i, col in enumerate(table_columns[member]):
                out[(member, col)] = offset + i
            offset += len(table_columns[member])
        return out

    for lbind, rbind, lref, rref in equijoins:
        lrep, rrep = component_of(lbind), component_of(rbind)
        if lrep == rrep:
            # Both sides already joined: apply as a filter on the component.
            members = plan_schema[lrep]
            comp_scope = _Scope(layout_positions(members), parent=outer_scope)
            lres, rres = bound.resolve(lref), bound.resolve(rref)
            lpos = comp_scope.positions[(lres.binding, lres.column.lower())]
            rpos = comp_scope.positions[(rres.binding, rres.column.lower())]
            plans[lrep] = FilterNode(
                plans[lrep],
                lambda row, env, _l=lpos, _r=rpos: row[_l] == row[_r],
                label="join-cycle",
            )
            continue
        lres, rres = bound.resolve(lref), bound.resolve(rref)
        lmembers, rmembers = plan_schema[lrep], plan_schema[rrep]
        lpos = layout_positions(lmembers)[(lres.binding, lres.column.lower())]
        rpos = layout_positions(rmembers)[(rres.binding, rres.column.lower())]
        joined = HashJoinNode(
            plans[lrep],
            plans[rrep],
            left_key=lambda row, _p=lpos: (row[_p],),
            right_key=lambda row, _p=rpos: (row[_p],),
        )
        plans[lrep] = joined
        plan_schema[lrep] = lmembers + rmembers
        del plans[rrep]
        del plan_schema[rrep]

    # Cross products for any disconnected components, in binding order.
    representatives = list(plans)
    plan = plans[representatives[0]]
    members = plan_schema[representatives[0]]
    for representative in representatives[1:]:
        plan = CrossNode(plan, plans[representative])
        members = members + plan_schema[representative]

    # The final row layout may differ from declaration order; rebuild the
    # scope to match the actual composed layout.
    scope = _Scope(layout_positions(members), parent=outer_scope)

    if residual:
        predicates = [compiler.predicate(c, scope) for c in residual]

        def all_residual(row, env, _preds=tuple(predicates)):
            return all(p(row, env) for p in _preds)

        plan = FilterNode(plan, all_residual, label="residual")

    return plan, scope, compiler


def execute_query(bound: BoundQuery, db: Database) -> list[tuple]:
    """Run a bound query from scratch; rows match the delta engines' shape
    (one value per select item, groups sorted by repr)."""
    query = bound.query
    plan, scope, compiler = _build_from_where(bound, db, query, None)

    group_fns = [
        compiler.scalar(col, scope) for col in query.group_by
    ]

    # One accumulator per distinct aggregate call (by identity).
    agg_calls: list[AggregateCall] = []
    for info in bound.item_info:
        agg_calls.extend(info.aggregates)
    value_fns: list[Optional[ValueFn]] = []
    for call in agg_calls:
        if isinstance(call.argument, Star):
            value_fns.append(None)
        else:
            value_fns.append(compiler.scalar(call.argument, scope))

    groups: dict[tuple, list] = {}
    for row, mult in plan.rows(()):
        key = tuple(fn(row, ()) for fn in group_fns)
        state = groups.get(key)
        if state is None:
            state = [_new_agg_state(call) for call in agg_calls]
            groups[key] = state
        for index, call in enumerate(agg_calls):
            _update_agg_state(
                state[index],
                call,
                None if value_fns[index] is None else value_fns[index](row, ()),
                mult,
            )

    if not query.group_by and not groups:
        groups[()] = [_new_agg_state(call) for call in agg_calls]

    results = []
    # Group columns are identified by (binding, column): two group-by
    # columns may share a name (e.g. n1.n_name and n2.n_name).
    group_keys = [
        (bound.resolve(col).binding, bound.resolve(col).column.lower())
        for col in query.group_by
    ]
    for key in sorted(groups, key=repr):
        agg_values = {
            id(call): _finish_agg_state(state, call)
            for call, state in zip(agg_calls, groups[key])
        }
        row_values = []
        for info, item in zip(bound.item_info, query.items):
            if not info.is_aggregate:
                resolution = bound.resolve(item.expr)
                index = group_keys.index(
                    (resolution.binding, resolution.column.lower())
                )
                row_values.append(key[index])
            else:
                row_values.append(_eval_item(item.expr, agg_values))
        results.append(tuple(row_values))
    return results


def _new_agg_state(call: AggregateCall):
    if call.func in ("SUM", "COUNT"):
        return [0]
    if call.func == "AVG":
        return [0, 0]
    return [None]  # MIN / MAX


def _update_agg_state(state, call: AggregateCall, value, mult: int) -> None:
    if call.func == "COUNT":
        state[0] += mult
    elif call.func == "SUM":
        state[0] += value * mult
    elif call.func == "AVG":
        state[0] += value * mult
        state[1] += mult
    elif call.func == "MIN":
        if state[0] is None or value < state[0]:
            state[0] = value
    elif call.func == "MAX":
        if state[0] is None or value > state[0]:
            state[0] = value


def _finish_agg_state(state, call: AggregateCall):
    if call.func == "AVG":
        return 0 if state[1] == 0 else state[0] / state[1]
    if call.func in ("MIN", "MAX"):
        return 0 if state[0] is None else state[0]
    return state[0]


def _eval_item(expr, agg_values: dict[int, object]):
    if isinstance(expr, AggregateCall):
        return agg_values[id(expr)]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, UnaryMinus):
        return -_eval_item(expr.operand, agg_values)
    if isinstance(expr, Arith):
        left = _eval_item(expr.left, agg_values)
        right = _eval_item(expr.right, agg_values)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return 0 if right == 0 else left / right
    raise CompilationError(f"unsupported select item {expr!r}")
