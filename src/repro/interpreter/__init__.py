"""A volcano-style (iterator model) query interpreter.

This subsystem is the stand-in for the conventional engines of the paper's
bakeoff (PostgreSQL, HSQLDB, commercial DBMS 'A'): queries execute through a
plan of composable operator objects that pull rows from their children —
the "query plan interpreter ... stored in dynamic data structures" whose
overheads the paper's compilation eliminates.  It is also an independent
implementation of SQL semantics used to cross-check the calculus evaluator.
"""

from repro.interpreter.relations import Database, Table
from repro.interpreter.executor import execute_query

__all__ = ["Database", "Table", "execute_query"]
